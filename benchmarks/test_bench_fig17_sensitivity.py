"""Figure 17 — parameter sensitivity: early stop, parallelism, sync interval.

The paper reports MCTS runtime, mapping runtime and interface quality while
varying one parameter at a time (columns of Figure 17), for the Explore,
Filter and Covid logs.  The reduced sweep here uses Explore (a "simple" log)
and Covid (a complex one) and checks the paper's observations:

* increasing the early-stop threshold or the synchronization interval grows
  MCTS runtime without materially improving quality (PI2 finds the optimal
  Difftree quickly), and
* quality stays within the 85–100% band across all settings.
"""

import pytest
from conftest import bench_config, print_table, run_workload

from repro.cost import interface_quality

WORKLOADS_UNDER_TEST = ["explore", "covid"]

EARLY_STOPS = [8, 24]
WORKERS = [1, 2]
SYNC_INTERVALS = [4, 12]


@pytest.fixture(scope="module")
def sensitivity_results(bench_catalog):
    results = {}
    for name in WORKLOADS_UNDER_TEST:
        for es in EARLY_STOPS:
            config = bench_config(early_stop=es)
            results[(name, "early_stop", es)] = run_workload(name, bench_catalog, config)
        for p in WORKERS:
            config = bench_config(workers=p)
            results[(name, "workers", p)] = run_workload(name, bench_catalog, config)
        for s in SYNC_INTERVALS:
            config = bench_config(sync_interval=s)
            results[(name, "sync_interval", s)] = run_workload(name, bench_catalog, config)
    return results


def test_fig17_parameter_sensitivity(benchmark, bench_catalog, sensitivity_results):
    best_cost = {
        name: min(run.cost for (wl, _, _), run in sensitivity_results.items() if wl == name)
        for name in WORKLOADS_UNDER_TEST
    }

    rows = []
    for (name, parameter, value), run in sorted(sensitivity_results.items()):
        quality = interface_quality(run.cost, best_cost[name])
        rows.append(
            [
                name,
                parameter,
                value,
                f"{run.search_seconds:.2f}s",
                f"{run.mapping_seconds:.2f}s",
                f"{quality:.3f}",
            ]
        )
    print_table(
        "Figure 17: parameter sensitivity (MCTS time, mapping time, quality)",
        ["workload", "parameter", "value", "mcts", "mapping", "quality"],
        rows,
    )

    for name in WORKLOADS_UNDER_TEST:
        qualities = [
            interface_quality(run.cost, best_cost[name])
            for (wl, _, _), run in sensitivity_results.items()
            if wl == name
        ]
        # the paper's quality axis spans 85%–100%
        assert min(qualities) >= 0.80, name

        # larger early-stop budgets must not *reduce* quality
        q_small = interface_quality(
            sensitivity_results[(name, "early_stop", EARLY_STOPS[0])].cost,
            best_cost[name],
        )
        q_large = interface_quality(
            sensitivity_results[(name, "early_stop", EARLY_STOPS[-1])].cost,
            best_cost[name],
        )
        assert q_large >= q_small - 0.05

        # …and typically grow the MCTS runtime (allow equality for early exits)
        t_small = sensitivity_results[(name, "early_stop", EARLY_STOPS[0])].search_seconds
        t_large = sensitivity_results[(name, "early_stop", EARLY_STOPS[-1])].search_seconds
        assert t_large >= 0.5 * t_small

    # benchmark a single MCTS-heavy configuration (covid, es=24)
    config = bench_config(early_stop=24)
    result = benchmark.pedantic(
        run_workload, args=("covid", bench_catalog, config), rounds=1, iterations=1
    )
    assert result.interface.is_complete()
