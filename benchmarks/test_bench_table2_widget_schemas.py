"""Table 2 — widget schemas and constraints.

Regenerates the paper's Table 2 from the implemented widget library and
benchmarks widget-candidate generation for a refactored Difftree.
"""

from conftest import print_table

from repro.database import Executor
from repro.difftree import initial_difftrees, merge_difftrees
from repro.mapping import WIDGET_TYPES, candidate_widgets
from repro.transform import TransformEngine


def table2_rows():
    rows = []
    for widget in WIDGET_TYPES:
        constraint = "-"
        if widget.name == "range_slider":
            constraint = "s <= e"
        rows.append([widget.name, str(widget.schema), constraint])
    return rows


def test_table2_widget_library(benchmark, bench_catalog):
    rows = table2_rows()
    print_table("Table 2: widget schemas and constraints", ["widget", "schema", "constraint"], rows)

    by_name = {row[0]: row for row in rows}
    # the paper's documented subset
    assert by_name["radio"][1] == "<_>"
    assert by_name["toggle"][1] == "<_?>"
    assert by_name["checkbox"][1] == "<_*>"
    assert by_name["slider"][1] == "<num>"
    assert by_name["range_slider"][1] == "<num, num>"
    assert by_name["range_slider"][2] == "s <= e"

    # benchmark: widget candidate generation over the Section-2 Difftree
    executor = Executor(bench_catalog)
    engine = TransformEngine(bench_catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [
            merge_difftrees(
                initial_difftrees(
                    [
                        "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
                        "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
                        "SELECT a, count(*) FROM T GROUP BY a",
                    ]
                )
            )
        ]
    )
    tree = trees[0]
    nodes = tree.dynamic_nodes()

    def generate_all():
        return [candidate_widgets(tree, node, bench_catalog) for node in nodes]

    results = benchmark(generate_all)
    assert any(cands for cands in results)
