"""Table 1 — visualization schemas, FD constraints, and supported interactions.

Regenerates the rows of the paper's Table 1 from the implemented visualization
library, and benchmarks candidate-visualization generation (the inner loop of
searchV in Algorithm 1).
"""

from conftest import print_table

from repro.difftree import initial_difftrees
from repro.mapping import VIS_TYPES, candidate_visualizations


def table1_rows():
    rows = []
    for vis in VIS_TYPES:
        if vis.accepts_any_schema:
            schema = "any schema"
        else:
            parts = []
            for var in vis.variables:
                kinds = "|".join(var.kinds)
                parts.append(f"{var.name}:{kinds}{'?' if var.optional else ''}")
            schema = "<" + ", ".join(parts) + ">"
        fds = "; ".join(
            f"({', '.join(det)})→{dep}" for det, dep in vis.fds
        ) or "-"
        rows.append([vis.name, schema, fds, ", ".join(vis.interactions)])
    return rows


def test_table1_visualization_library(benchmark, bench_catalog):
    from repro.database import Executor

    executor = Executor(bench_catalog)
    rows = table1_rows()
    print_table(
        "Table 1: visualization schemas, FDs and interactions",
        ["vis", "schema", "FDs", "interactions"],
        rows,
    )

    # paper Table 1 checks: four chart types with the documented properties
    by_name = {row[0]: row for row in rows}
    assert set(by_name) == {"table", "point", "bar", "line"}
    assert by_name["table"][1] == "any schema"
    assert "x:C" in by_name["bar"][1] and "(x, color)→y" in by_name["bar"][2]
    assert "pan" in by_name["point"][3] and "brush-x" in by_name["point"][3]
    assert "pan" in by_name["line"][3] and "brush" not in by_name["line"][3]

    # benchmark: candidate generation for a grouped query's result schema
    tree = initial_difftrees(
        ["SELECT origin, count(*) FROM Cars GROUP BY origin"]
    )[0]
    schema = tree.result_schema(executor)

    candidates = benchmark(candidate_visualizations, schema, bench_catalog)
    assert any(c.vis_type.name == "bar" for c in candidates)
