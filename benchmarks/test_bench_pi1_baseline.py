"""Figure 1 comparison — PI2 vs the PI1 baseline (widgets-only interfaces).

The paper motivates PI2 by contrasting it with PI1 (Zhang et al. 2019), which
emits an unordered set of widgets and cannot express visualization
interactions, multi-view coordination or layouts.  This benchmark runs both
systems on the Explore and Section-2 logs and prints the comparison.
"""

import pytest
from conftest import bench_config, print_table, run_workload

from repro.baselines import pi1_generate
from repro.difftree.builder import parse_queries
from repro.workloads import WORKLOADS

SECTION2 = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
    "SELECT a, count(*) FROM T GROUP BY a",
]


@pytest.fixture(scope="module")
def comparison(bench_catalog):
    config = bench_config()
    pi2_explore = run_workload("explore", bench_catalog, config)
    pi1_explore = pi1_generate(list(WORKLOADS["explore"].queries), catalog=bench_catalog)
    return pi2_explore, pi1_explore


def test_pi1_vs_pi2(benchmark, bench_catalog, comparison):
    pi2_explore, pi1_explore = comparison

    rows = [
        [
            "PI1",
            "-",
            len(pi1_explore.widgets),
            "no",
            "no",
            ",".join(sorted(pi1_explore.widget_kinds())) or "-",
        ],
        [
            "PI2",
            pi2_explore.views,
            len(pi2_explore.interface.widgets),
            "yes" if pi2_explore.interactions else "no",
            "yes",
            ",".join(pi2_explore.interactions) or "-",
        ],
    ]
    print_table(
        "PI1 vs PI2 on the Explore log (Figure 1)",
        ["system", "views", "widgets", "vis interactions", "layout", "interactions"],
        rows,
    )

    # PI1: flat widget set, no visualizations, no layout
    assert pi1_explore.widgets
    assert not pi1_explore.supports_visualizations
    assert not pi1_explore.supports_layout
    assert pi1_explore.tree.expresses_all()

    # PI2: renders the results and replaces widgets with chart interactions
    assert pi2_explore.interface.num_views() >= 1
    assert pi2_explore.interactions, "PI2 should map the range predicates to pan/zoom"
    assert pi2_explore.interface.layout is not None

    # on the Section-2 log both systems express every query, but only PI2
    # renders the result and lays the interface out
    pi1_section2 = pi1_generate(SECTION2, catalog=bench_catalog)
    assert pi1_section2.tree.expresses_all()
    assert pi1_section2.manipulation_cost(parse_queries(SECTION2)) > 0

    # benchmark the PI1 baseline itself (alignment + widget mapping)
    result = benchmark(pi1_generate, SECTION2, catalog=bench_catalog)
    assert result.widgets
