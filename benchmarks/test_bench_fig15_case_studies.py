"""Figure 15 — case studies: SDSS search, Google's covid vis, sales dashboard.

Regenerates the three case-study interfaces (Listings 5–7) and checks the
structural properties the paper highlights:

* SDSS (15a): a table view for the 9-attribute star query plus a scatterplot
  of star locations, with chart interactions updating the selection.
* Covid (15b): views for the cases / deaths series with widgets for the state
  and date-interval parameters.
* Sales (15c): the nested-HAVING analysis and the per-branch series are both
  expressible — something Metabase / Tableau cannot author.
"""

import pytest
from conftest import bench_config, print_table, run_workload

from repro.database import Executor
from repro.interface import InterfaceRuntime
from repro.workloads import WORKLOADS

CASE_STUDIES = ["sdss", "covid", "sales"]


@pytest.fixture(scope="module")
def case_runs(bench_catalog):
    config = bench_config()
    return {name: run_workload(name, bench_catalog, config) for name in CASE_STUDIES}


def test_fig15_case_studies(benchmark, bench_catalog, case_runs):
    rows = []
    for name in CASE_STUDIES:
        run = case_runs[name]
        vis_names = [v.vis.vis_type.name for v in run.interface.views]
        rows.append(
            [
                name,
                f"{run.total_seconds:.1f}s",
                run.views,
                ",".join(sorted(set(vis_names))),
                ",".join(run.widgets) or "-",
                ",".join(run.interactions) or "-",
            ]
        )
    print_table(
        "Figure 15: case studies",
        ["case study", "time", "views", "charts", "widgets", "interactions"],
        rows,
    )

    executor = Executor(bench_catalog)

    # 15a: SDSS — table + chart, interactive rather than a static form
    sdss = case_runs["sdss"].interface
    assert sdss.num_views() >= 2
    assert "table" in {v.vis.vis_type.name for v in sdss.views}
    assert sdss.is_complete()

    # 15b: covid — the metric split (cases vs deaths) and the state / interval
    # parameters are all expressible; every input query can be replayed
    covid = case_runs["covid"].interface
    assert covid.is_complete()
    runtime = InterfaceRuntime(covid, executor)
    expressed = sum(
        runtime.replay_query(i) for i in range(len(WORKLOADS["covid"].queries))
    )
    assert expressed >= len(WORKLOADS["covid"].queries) - 1

    # 15c: sales — the nested HAVING queries and the branch/product series
    sales = case_runs["sales"].interface
    assert sales.num_views() >= 2
    assert sales.is_complete()
    runtime = InterfaceRuntime(sales, executor)
    assert runtime.replay_query(0)  # the max-total-per-city query runs end to end

    # benchmark one case-study generation (sales, the heaviest of the three)
    config = bench_config()
    result = benchmark.pedantic(
        run_workload, args=("sales", bench_catalog, config), rounds=1, iterations=1
    )
    assert result.interface.is_complete()
