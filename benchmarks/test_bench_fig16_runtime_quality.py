"""Figure 16 — runtime / quality trade-off across search configurations.

The paper sweeps early-stop, synchronization interval and parallelism over all
seven logs and plots end-to-end runtime against interface quality (c*/c, where
c* is the lowest cost observed for a log across all conditions).  This
benchmark runs a reduced sweep (three configurations × three representative
logs), prints the scatter the paper plots, and asserts the qualitative claims:

* the "simpler" logs (Explore) reach quality 1.0 in well under the time of the
  complex ones, and
* for every log some configuration reaches quality ≥ 0.85.
"""

import pytest
from conftest import bench_config, print_table, run_workload

from repro.cost import interface_quality

SWEEP_WORKLOADS = ["explore", "abstract", "sales"]

#: (label, early_stop, workers, sync_interval)
CONFIGURATIONS = [
    ("es=8,p=1,s=4", 8, 1, 4),
    ("es=16,p=1,s=8", 16, 1, 8),
    ("es=16,p=2,s=8", 16, 2, 8),
]


@pytest.fixture(scope="module")
def sweep_results(bench_catalog):
    results = {}
    for name in SWEEP_WORKLOADS:
        for label, es, p, s in CONFIGURATIONS:
            config = bench_config(early_stop=es, workers=p, sync_interval=s)
            results[(name, label)] = run_workload(name, bench_catalog, config)
    return results


def test_fig16_runtime_quality_tradeoff(benchmark, bench_catalog, sweep_results):
    best_cost = {
        name: min(
            run.cost for (wl, _), run in sweep_results.items() if wl == name
        )
        for name in SWEEP_WORKLOADS
    }

    rows = []
    qualities = {}
    for (name, label), run in sorted(sweep_results.items()):
        quality = interface_quality(run.cost, best_cost[name])
        qualities.setdefault(name, []).append(quality)
        rows.append(
            [
                name,
                label,
                f"{run.total_seconds:.2f}s",
                f"{run.search_seconds:.2f}s",
                f"{run.mapping_seconds:.2f}s",
                f"{run.cost:.1f}",
                f"{quality:.3f}",
            ]
        )
    print_table(
        "Figure 16: runtime vs interface quality",
        ["workload", "config", "total", "mcts", "mapping", "cost", "quality"],
        rows,
    )

    # every workload reaches quality >= 0.85 under some configuration
    for name in SWEEP_WORKLOADS:
        assert max(qualities[name]) >= 0.85, name

    # the simple Explore log is optimal under every configuration and fast
    assert all(q == pytest.approx(1.0) for q in qualities["explore"])
    explore_time = max(
        run.total_seconds
        for (name, _), run in sweep_results.items()
        if name == "explore"
    )
    sales_time = max(
        run.total_seconds
        for (name, _), run in sweep_results.items()
        if name == "sales"
    )
    assert explore_time <= sales_time * 2.0  # simple logs are not the bottleneck

    # benchmark a single representative configuration end to end
    config = bench_config(early_stop=8, workers=1, sync_interval=4)
    result = benchmark.pedantic(
        run_workload, args=("abstract", bench_catalog, config), rounds=1, iterations=1
    )
    assert result.interface.is_complete()
