"""Figure 14 — interfaces covering Yi et al.'s interaction taxonomy.

The paper's expressiveness evaluation (Section 7.1): the Explore, Abstract,
Connect and Filter query logs (Listings 1–4) produce interfaces that together
cover the data-oriented interaction categories (select, explore, abstract,
filter, connect).  This benchmark regenerates all four interfaces, prints the
per-workload classification, asserts the joint coverage, and benchmarks the
Explore generation end to end.
"""

import pytest
from conftest import bench_config, print_table, run_workload

from repro.taxonomy import DATA_CATEGORIES, classify_interface
from repro.workloads import WORKLOADS

FIG14_WORKLOADS = ["explore", "abstract", "connect", "filter"]


@pytest.fixture(scope="module")
def fig14_runs(bench_catalog):
    config = bench_config()
    return {
        name: run_workload(name, bench_catalog, config) for name in FIG14_WORKLOADS
    }


def test_fig14_taxonomy_coverage(benchmark, bench_catalog, fig14_runs):
    reports = {
        name: classify_interface(run.interface) for name, run in fig14_runs.items()
    }

    rows = []
    for name in FIG14_WORKLOADS:
        run = fig14_runs[name]
        rows.append(
            [
                name,
                f"{run.total_seconds:.1f}s",
                run.views,
                ",".join(run.interactions) or "-",
                ",".join(run.widgets) or "-",
                ",".join(sorted(reports[name].categories)),
            ]
        )
    print_table(
        "Figure 14: taxonomy coverage per workload",
        ["workload", "time", "views", "interactions", "widgets", "Yi categories"],
        rows,
    )

    # every generated interface expresses at least selection
    for name, report in reports.items():
        assert "select" in report.categories, name

    # the explore interface supports pan/zoom style exploration (Fig 14a)
    assert reports["explore"].covers("explore")
    assert fig14_runs["explore"].interface.num_views() == 1

    # the filter log yields a coordinated multi-view interface (Fig 14d)
    assert fig14_runs["filter"].interface.num_views() >= 3

    # jointly, the four interfaces cover all data-oriented categories except
    # (at most) one — encode/reconfigure are out of scope as in the paper
    covered = set().union(*(r.categories for r in reports.values()))
    assert len(set(DATA_CATEGORIES) - covered) <= 1

    # benchmark the fastest of the four (Explore) end to end
    config = bench_config()
    result = benchmark.pedantic(
        run_workload,
        args=("explore", bench_catalog, config),
        rounds=1,
        iterations=1,
    )
    assert result.interface.is_complete()
