"""Columnar engine scaling — vectorized plans vs the row-based plan executor.

The MCTS reward loop's query traffic is dominated by small filter, aggregate
and join queries; the columnar engine runs the *same* compiled plans as the
row executor but iterates whole columns in tight loops instead of building a
Python tuple and an environment per row.  This benchmark runs three workload
shapes (pushed-down range filters, grouped aggregation, hash join + filter)
at catalogue scales 1–4 with both engines and checks that

* every query returns identical results (rows and order) on both engines at
  every scale, and
* columnar execution is at least 3× faster than the row-based planned
  executor on the aggregate-heavy workload at catalogue scale 4.

Plans are warmed through a shared cache before timing, so the numbers compare
pure execution — planning cost is identical (and shared) on both sides.
"""

import time

from conftest import print_table

from repro.database import Executor, PlanCache
from repro.database.datasets import standard_catalog

SCALES = [1.0, 2.0, 4.0]
SPEEDUP_SCALE = 4.0
REQUIRED_SPEEDUP = 3.0

#: the three traffic shapes the reward loop generates, heaviest first
WORKLOAD_SHAPES = {
    "filter": [
        "SELECT hour, delay, dist FROM flights "
        "WHERE delay BTWN 0 & 50 AND dist BTWN 400 & 800",
        "SELECT date, price FROM sp500 "
        "WHERE date > '2001-01-01' AND date < '2003-01-01'",
        "SELECT hp, mpg, origin FROM Cars WHERE hp BTWN 60 & 90 AND mpg BTWN 16 & 30",
    ],
    "aggregate": [
        "SELECT hour, count(*) FROM flights "
        "WHERE delay BTWN 0 & 50 AND dist BTWN 400 & 800 GROUP BY hour",
        "SELECT dist, count(*), avg(delay) FROM flights GROUP BY dist",
        "SELECT city, product, sum(total) FROM sales GROUP BY city, product",
        "SELECT count(*), avg(delay), min(dist), max(dist) FROM flights "
        "WHERE hour BTWN 6 & 18",
    ],
    "join": [
        "SELECT gal.objID, gal.u, s.z, s.ra FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra BTWN 213.1 & 214.0",
        "SELECT gal.objID, count(*) FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID GROUP BY gal.objID",
    ],
}


def _executors(catalog):
    """Row-planned and columnar executors sharing one warm plan cache."""
    plans = PlanCache()
    row = Executor(catalog, enable_cache=False, columnar=False, plan_cache=plans)
    col = Executor(catalog, enable_cache=False, columnar=True, plan_cache=plans)
    return row, col


def _time_queries(executor: Executor, queries, repeats: int = 3) -> float:
    """Best-of-N wall time of one pass over ``queries`` (plans stay warm)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for sql in queries:
            executor.execute_sql(sql)
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_speedup_over_row_planned_executor():
    rows = []
    agg_speedups = {}
    for scale in SCALES:
        catalog = standard_catalog(seed=42, scale=scale)
        row, col = _executors(catalog)
        for shape, queries in WORKLOAD_SHAPES.items():
            # equivalence at every scale: identical rows in identical order
            for sql in queries:
                expected = row.execute_sql(sql)
                actual = col.execute_sql(sql)
                assert expected.rows == actual.rows, (scale, sql)
                assert expected.column_names() == actual.column_names()

            row_t = _time_queries(row, queries)
            col_t = _time_queries(col, queries)
            speedup = row_t / max(col_t, 1e-9)
            if shape == "aggregate":
                agg_speedups[scale] = speedup
            rows.append(
                [
                    f"x{scale:g}",
                    shape,
                    f"{row_t * 1000:.1f}ms",
                    f"{col_t * 1000:.1f}ms",
                    f"{speedup:.1f}x",
                ]
            )

    print_table(
        "Columnar scaling: vectorized plans vs row-based plans (same plan cache)",
        ["scale", "workload", "row plans", "columnar", "speedup"],
        rows,
    )

    assert agg_speedups[SPEEDUP_SCALE] >= REQUIRED_SPEEDUP, (
        f"columnar execution only {agg_speedups[SPEEDUP_SCALE]:.1f}x faster than "
        f"row-based plans on the aggregate workload at scale {SPEEDUP_SCALE:g} "
        f"(required ≥ {REQUIRED_SPEEDUP:g}x)"
    )


def test_columnar_stats_show_vectorized_execution():
    catalog = standard_catalog(seed=42, scale=1.0)
    _, col = _executors(catalog)
    for queries in WORKLOAD_SHAPES.values():
        for sql in queries:
            col.execute_sql(sql)
    total = sum(len(q) for q in WORKLOAD_SHAPES.values())
    assert col.stats.columnar_executions == total
    assert col.stats.columnar_fallbacks == 0
    assert col.stats.hash_joins_executed >= 2


def test_shared_plan_cache_amortises_planning_across_executors():
    """Ten executors over one catalogue compile each query exactly once."""
    catalog = standard_catalog(seed=42, scale=1.0)
    plans = PlanCache()
    queries = WORKLOAD_SHAPES["aggregate"]
    compiled = 0
    for _ in range(10):
        ex = Executor(catalog, enable_cache=False, plan_cache=plans)
        for sql in queries:
            ex.execute_sql(sql)
        compiled += ex.stats.plans_compiled
    assert compiled == len(queries)
    assert plans.info()["hits"] == 9 * len(queries)
