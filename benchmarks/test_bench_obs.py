"""Observability overhead gate: disabled-tracing cost must stay under 2%.

ISSUE 9's tracer promises a no-op fast path: with tracing disabled (the
default for every pipeline run), each instrumented ``with span(...)`` site
must cost no more than a dict lookup and a shared no-op context manager.
This benchmark turns that promise into a CI gate:

* micro-benchmark the per-site cost of a **disabled** span (best of N
  rounds, amortized over a large loop);
* run the end-to-end pipeline untraced and count, via a traced re-run, how
  many span sites the run actually passes through;
* assert that ``disabled_span_cost x span_sites`` is **< 2%** of the
  untraced pipeline wall-clock.

The traced re-run doubles as the sample artifact: its events and metrics
are exported as a Chrome ``trace_event`` file (``trace.json`` at the repo
root, next to the ``BENCH_*.json`` artifacts) so every CI run uploads a
Perfetto-loadable trace of the real pipeline.  The measured numbers go to
``BENCH_obs.json``.
"""

from __future__ import annotations

import time

from conftest import BENCH_ROOT, BENCH_SCALE, bench_config, write_bench_json

from repro.database.datasets import standard_catalog
from repro.core.pipeline import generate_for_workload
from repro.obs import TRACER, span, write_chrome_trace
from repro.workloads import WORKLOADS

WORKLOAD = "filter"
MICRO_ITERATIONS = 200_000
MICRO_ROUNDS = 3
MAX_OVERHEAD_FRACTION = 0.02

TRACE_SAMPLE_PATH = BENCH_ROOT / "trace.json"


def _disabled_span_cost() -> float:
    """Best-of-N amortized seconds per disabled ``with span(...)`` site."""
    assert not TRACER.enabled
    best = float("inf")
    for _ in range(MICRO_ROUNDS):
        start = time.perf_counter()
        for _ in range(MICRO_ITERATIONS):
            with span("bench.noop", worker=0):
                pass
        best = min(best, (time.perf_counter() - start) / MICRO_ITERATIONS)
    return best


def _run_pipeline(catalog):
    start = time.perf_counter()
    result = generate_for_workload(
        WORKLOADS[WORKLOAD], catalog=catalog, config=bench_config()
    )
    return result, time.perf_counter() - start


def test_disabled_tracing_overhead_under_two_percent():
    TRACER.disable()
    TRACER.clear()
    per_span_disabled = _disabled_span_cost()

    # untraced reference run: what every production invocation pays
    untraced, untraced_seconds = _run_pipeline(
        standard_catalog(seed=42, scale=BENCH_SCALE)
    )

    # traced re-run: counts the span sites the run actually crosses and
    # doubles as the sample trace.json CI artifact
    TRACER.enable()
    try:
        traced, traced_seconds = _run_pipeline(
            standard_catalog(seed=42, scale=BENCH_SCALE)
        )
        events = TRACER.take_events()
    finally:
        TRACER.disable()
        TRACER.clear()

    span_sites = len(events)
    subsystems = sorted({event.category for event in events})
    overhead_seconds = per_span_disabled * span_sites
    overhead_fraction = overhead_seconds / max(untraced_seconds, 1e-9)

    write_chrome_trace(
        TRACE_SAMPLE_PATH,
        events,
        metrics=traced.metrics,
        metadata={"workload": WORKLOAD, "catalog_scale": BENCH_SCALE},
    )
    print(f"wrote {TRACE_SAMPLE_PATH.name} ({span_sites} spans)")
    print(
        f"disabled span: {per_span_disabled * 1e9:.0f}ns/site x {span_sites} "
        f"sites = {overhead_seconds * 1e3:.2f}ms over {untraced_seconds:.2f}s "
        f"({overhead_fraction:.3%}, gate {MAX_OVERHEAD_FRACTION:.0%}); "
        f"traced run {traced_seconds:.2f}s"
    )

    write_bench_json(
        "obs",
        {
            "benchmark": "obs_overhead",
            "workload": WORKLOAD,
            "catalog_scale": BENCH_SCALE,
            "disabled_span_seconds": per_span_disabled,
            "span_sites": span_sites,
            "subsystems": subsystems,
            "untraced_seconds": untraced_seconds,
            "traced_seconds": traced_seconds,
            "overhead_seconds": overhead_seconds,
            "overhead_fraction": overhead_fraction,
        },
        required={"max_overhead_fraction": MAX_OVERHEAD_FRACTION},
    )

    # tracing must not change the output, only record it
    assert traced.interface.to_dict() == untraced.interface.to_dict()
    # the sample trace must cover the pipeline end to end
    assert len(subsystems) >= 5, subsystems
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled-tracing overhead {overhead_fraction:.3%} exceeds "
        f"{MAX_OVERHEAD_FRACTION:.0%}: {per_span_disabled * 1e9:.0f}ns/site "
        f"across {span_sites} sites on a {untraced_seconds:.2f}s run"
    )
