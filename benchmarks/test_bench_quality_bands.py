"""Appendix (Figures 18–19) — non-optimal interfaces above 85% quality are
nearly as good as the optimal one.

Algorithm 1 returns the top-k candidate interfaces; the paper's appendix shows
that candidates whose quality (c*/c) is ≥ 0.85 differ from the optimum only in
minor ways (an extra toggle, an extra static chart).  This benchmark inspects
the candidate list for the Abstract and Sales logs, prints the quality band of
each candidate, and checks that near-optimal candidates exist and remain
complete interfaces.
"""

import pytest
from conftest import bench_config, print_table

from repro.core.pipeline import generate_for_workload
from repro.cost import interface_quality
from repro.workloads import WORKLOADS

LOGS = ["abstract", "sales"]


@pytest.fixture(scope="module")
def candidate_lists(bench_catalog):
    config = bench_config()
    results = {}
    for name in LOGS:
        result = generate_for_workload(
            WORKLOADS[name], catalog=bench_catalog, config=config
        )
        results[name] = result.candidates
    return results


def test_quality_bands_of_candidates(benchmark, bench_catalog, candidate_lists):
    rows = []
    for name, candidates in candidate_lists.items():
        best_cost = candidates[0].cost.total
        for rank, interface in enumerate(candidates[:5]):
            quality = interface_quality(interface.cost.total, best_cost)
            rows.append(
                [
                    name,
                    rank,
                    f"{interface.cost.total:.1f}",
                    f"{quality:.3f}",
                    interface.num_views(),
                    len(interface.widgets),
                    len(interface.interactions),
                ]
            )
    print_table(
        "Appendix: quality of the top-k candidate interfaces",
        ["workload", "rank", "cost", "quality", "views", "widgets", "interactions"],
        rows,
    )

    for name, candidates in candidate_lists.items():
        # the top candidate defines quality 1.0 and is a complete interface
        assert candidates[0].is_complete()
        qualities = [
            interface_quality(c.cost.total, candidates[0].cost.total)
            for c in candidates
        ]
        assert qualities[0] == pytest.approx(1.0)
        # near-optimal (>= 0.85) alternatives exist and are also complete
        near_optimal = [
            c
            for c, q in zip(candidates, qualities)
            if q >= 0.85
        ]
        assert near_optimal, name
        assert all(c.is_complete() for c in near_optimal)

    # benchmark the candidate enumeration for the abstract log
    config = bench_config()
    result = benchmark.pedantic(
        generate_for_workload,
        args=(WORKLOADS["abstract"],),
        kwargs={"catalog": bench_catalog, "config": config},
        rounds=1,
        iterations=1,
    )
    assert len(result.candidates) >= 1
