"""Generation-time summary — "PI2 generated interfaces in 2–19 s, median 6 s".

Runs the full pipeline on all seven evaluation logs with the default-ish
configuration, prints the per-log generation times, and checks the shape of
the distribution: every log finishes within an interactive-authoring budget
and the spread between the simplest and the hardest log is comparable to the
paper's (≈10×).
"""

import statistics

import pytest
from conftest import bench_config, print_table, run_workload

from repro.workloads import WORKLOADS

ALL_WORKLOADS = sorted(WORKLOADS)


@pytest.fixture(scope="module")
def all_runs(bench_catalog):
    config = bench_config()
    return {name: run_workload(name, bench_catalog, config) for name in ALL_WORKLOADS}


def test_generation_time_summary(benchmark, bench_catalog, all_runs):
    rows = []
    for name in ALL_WORKLOADS:
        run = all_runs[name]
        rows.append(
            [
                name,
                len(WORKLOADS[name].queries),
                f"{run.total_seconds:.2f}s",
                f"{run.search_seconds:.2f}s",
                f"{run.mapping_seconds:.2f}s",
                run.views,
                ",".join(run.interactions) or "-",
            ]
        )
    times = [run.total_seconds for run in all_runs.values()]
    rows.append(
        [
            "median",
            "-",
            f"{statistics.median(times):.2f}s",
            "-",
            "-",
            "-",
            "-",
        ]
    )
    print_table(
        "Generation times per workload (paper: 2–19 s, median 6 s)",
        ["workload", "queries", "total", "mcts", "mapping", "views", "interactions"],
        rows,
    )

    # every interface is complete and every workload finishes within an
    # interactive authoring budget on this substrate
    for name, run in all_runs.items():
        assert run.interface.is_complete(), name
        assert run.total_seconds < 120, name

    # the paper's qualitative shape: the hardest log costs an order of
    # magnitude more than the easiest, and the median sits well below the max
    assert statistics.median(times) <= max(times)
    assert max(times) / max(min(times), 1e-3) >= 2.0

    # benchmark the median-ish workload end to end
    config = bench_config()
    result = benchmark.pedantic(
        run_workload, args=("covid", bench_catalog, config), rounds=1, iterations=1
    )
    assert result.interface.is_complete()
