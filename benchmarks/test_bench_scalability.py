"""Section 7.3 scalability — runtime as the number of input queries grows.

The paper duplicates the Filter log from 9 up to 900 queries and observes
roughly linear runtime growth (a few seconds → ≈2000 s).  The reduced sweep
here scales the Filter log ×1, ×2 and ×4 (9 → 36 queries) and checks that the
growth stays clearly sub-quadratic, printing the series the paper plots.
"""

import time

import pytest
from conftest import BENCH_SCALE, bench_config, print_table

from repro.core.pipeline import generate_interface
from repro.workloads import WORKLOADS, scale_workload

QUERY_COUNTS = [9, 18, 36]


@pytest.fixture(scope="module")
def scalability_results(bench_catalog):
    config = bench_config(early_stop=8, max_iterations=24)
    results = []
    for count in QUERY_COUNTS:
        workload = scale_workload(WORKLOADS["filter"], count, seed=5)
        start = time.perf_counter()
        result = generate_interface(
            list(workload.queries), catalog=bench_catalog, config=config
        )
        elapsed = time.perf_counter() - start
        results.append((count, elapsed, result))
    return results


def test_scalability_roughly_linear(benchmark, bench_catalog, scalability_results):
    rows = [
        [count, f"{elapsed:.1f}s", f"{result.search_seconds:.1f}s",
         f"{result.mapping_seconds:.1f}s", result.interface.num_views()]
        for count, elapsed, result in scalability_results
    ]
    print_table(
        "Scalability: runtime vs number of input queries (Filter log duplicated)",
        ["queries", "total", "mcts", "mapping", "views"],
        rows,
    )

    counts = [c for c, _, _ in scalability_results]
    times = [t for _, t, _ in scalability_results]

    # runtime grows with the log size …
    assert times[-1] >= times[0] * 0.8
    # … but clearly sub-quadratically: quadrupling the queries must cost less
    # than ~10x the time (the paper reports roughly linear growth)
    ratio = times[-1] / max(times[0], 1e-6)
    assert ratio <= (counts[-1] / counts[0]) ** 2, f"superlinear blow-up: {ratio:.1f}x"

    # every scaled interface still expresses its (larger) log
    for _, _, result in scalability_results:
        assert result.interface.is_complete()

    # benchmark the base (9-query) configuration
    config = bench_config(early_stop=8, max_iterations=24)
    result = benchmark.pedantic(
        generate_interface,
        args=(list(WORKLOADS["filter"].queries),),
        kwargs={"catalog": bench_catalog, "config": config},
        rounds=1,
        iterations=1,
    )
    assert result.interface.num_views() >= 3
