"""Parallel-search backend benchmark: wall-clock speedup of true multiprocess
MCTS over the serial round-robin coordinator (ISSUE 4's tentpole).

The harness runs the scalability benchmark's workload (the Filter log scaled
up) through the end-to-end pipeline once per backend, with early stopping
disabled so both backends execute exactly the same per-worker iteration
budget — the backends are trajectory-identical by construction, so the only
difference is scheduling: the serial backend interleaves the workers on one
core, the process backend runs each on its own OS process.

Requirements enforced here (ISSUE 4 acceptance):

* the process backend with 4 workers reaches ≥ 2× the serial backend's
  search wall-clock at equal total iterations — asserted when the machine
  has ≥ 4 usable cores (single-core containers cannot run four processes
  concurrently no matter how the work is scheduled; there the benchmark
  records the measured ratio and only bounds the scheduling overhead);
* both backends report identical search trajectories (states evaluated,
  best reward) — the speedup is pure scheduling, not approximation.

The measured numbers are written to ``BENCH_parallel.json`` at the repo root
(uploaded as a CI artifact) so the perf trajectory is tracked per run.
"""

from __future__ import annotations

import os
import time

from conftest import print_table, write_bench_json

from repro.core.config import PipelineConfig
from repro.core.pipeline import generate_interface
from repro.database import standard_catalog
from repro.mapping.mapper import MapperConfig
from repro.search.config import SearchConfig
from repro.workloads import WORKLOADS, scale_workload

CATALOG_SCALE = 1.0
WORKERS = 4
MAX_ITERATIONS = 48
SYNC_INTERVAL = 12
QUERY_COUNT = 36  # the Filter log, duplicated (scalability benchmark shape)
REQUIRED_SPEEDUP = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _config(backend: str) -> PipelineConfig:
    return PipelineConfig(
        search=SearchConfig(
            max_iterations=MAX_ITERATIONS,
            early_stop=10**6,  # disabled: equal iteration budgets per backend
            workers=WORKERS,
            sync_interval=SYNC_INTERVAL,
            rollout_depth=14,
            reward_mappings=3,
            max_applications=64,
            seed=42,
            backend=backend,
            shared_rewards=True,
        ),
        mapper=MapperConfig(
            top_k=3, max_vis_per_tree=3, max_joint_vis=6, max_searchm_calls=500
        ),
        catalog_scale=CATALOG_SCALE,
        seed=42,
    )


def test_process_backend_speedup():
    workload = scale_workload(WORKLOADS["filter"], QUERY_COUNT, seed=5)
    queries = list(workload.queries)
    runs = {}
    # best of two rounds per backend: the runs are trajectory-identical (the
    # backends are deterministic), so the minimum is pure scheduling noise
    # reduction — shared CI runners jitter enough to matter
    for backend in ("serial", "process"):
        best = None
        for _ in range(2):
            catalog = standard_catalog(seed=42, scale=CATALOG_SCALE)
            start = time.perf_counter()
            result = generate_interface(
                queries, catalog=catalog, config=_config(backend)
            )
            elapsed = time.perf_counter() - start
            if best is None or result.search_seconds < best[0].search_seconds:
                best = (result, elapsed)
        runs[backend] = best

    serial, serial_elapsed = runs["serial"]
    process, process_elapsed = runs["process"]
    speedup = serial.search_seconds / max(process.search_seconds, 1e-9)

    cores = _usable_cores()

    rows = [
        [
            backend,
            f"{run.search_seconds:.2f}s",
            f"{run.total_seconds:.2f}s",
            run.search_stats.states_evaluated,
            run.search_stats.reward_table_hits,
            run.search_stats.sync_rounds,
            f"{run.search_stats.warmup_seconds:.2f}s",
        ]
        for backend, (run, _) in runs.items()
    ]
    print_table(
        f"Parallel search: serial vs process backend "
        f"({WORKERS} workers x {MAX_ITERATIONS} iterations, {cores} cores)",
        ["backend", "search", "total", "evals", "table hits", "syncs", "warmup"],
        rows,
    )
    print(f"search speedup: {speedup:.2f}x (required {REQUIRED_SPEEDUP}x on >=4 cores)")

    # a sub-WORKERS-core machine cannot overlap the worker processes, so the
    # measured ratio is scheduling overhead, not a speedup — publishing it as
    # `speedup` (e.g. 0.92 on a single-core container) misleads downstream
    # perf tracking; report null plus the reason and keep the raw ratio
    # under a name that says what it is
    speedup_enforced = cores >= WORKERS
    payload = {
        "benchmark": "parallel_backends",
        "workload": f"filter x{QUERY_COUNT}",
        "workers": WORKERS,
        "iterations_per_worker": MAX_ITERATIONS,
        "usable_cores": cores,
        "serial_search_seconds": serial.search_seconds,
        "process_search_seconds": process.search_seconds,
        "serial_total_seconds": serial_elapsed,
        "process_total_seconds": process_elapsed,
        "speedup": speedup if speedup_enforced else None,
        "process_warmup_seconds": process.search_stats.warmup_seconds,
        "states_evaluated": {
            "serial": serial.search_stats.states_evaluated,
            "process": process.search_stats.states_evaluated,
        },
        "reward_table_hits": {
            "serial": serial.search_stats.reward_table_hits,
            "process": process.search_stats.reward_table_hits,
        },
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_enforced": speedup_enforced,
    }
    if not speedup_enforced:
        payload["skipped_reason"] = (
            f"only {cores} usable core(s): {WORKERS} process workers cannot "
            f"run concurrently, so a wall-clock speedup is not measurable"
        )
        payload["serial_process_ratio"] = speedup
    write_bench_json(
        "parallel", payload, required={"speedup": REQUIRED_SPEEDUP}
    )

    # the backends are trajectory-identical: equal work, equal best reward
    assert serial.search_stats.states_evaluated == process.search_stats.states_evaluated
    assert serial.best_reward == process.best_reward
    assert serial.search_stats.iterations == process.search_stats.iterations

    if speedup_enforced:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"process backend speedup {speedup:.2f}x below "
            f"{REQUIRED_SPEEDUP}x on a {cores}-core machine"
        )
    else:
        # single-core containers: the schedule cannot overlap, but the
        # process backend must not collapse either (IPC + warm-up overhead
        # stays within ~2x of the serial wall-clock)
        assert speedup >= 0.4, f"process backend overhead blow-up: {speedup:.2f}x"
