"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's per-experiment index).  Absolute numbers differ from the
paper (different hardware, a Python substrate instead of the authors' C++/JS
stack, down-scaled search budgets), but each benchmark prints the same rows /
series the paper reports and asserts that the qualitative shape holds.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import generate_for_workload
from repro.database.datasets import standard_catalog
from repro.mapping.mapper import MapperConfig
from repro.search.config import SearchConfig
from repro.workloads import WORKLOADS

#: Reduced but representative search budgets used by the benchmark sweeps.
BENCH_SCALE = 0.15

#: Format version of the ``BENCH_*.json`` perf-trajectory artifacts; bump
#: when the schema block or the meaning of stamped fields changes.
BENCH_SCHEMA_VERSION = 1

#: Repo root — every ``BENCH_*.json`` lands here so CI's artifact glob
#: (``BENCH_*.json``) picks all of them up without per-benchmark wiring.
BENCH_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(
    bench: str,
    payload: dict,
    *,
    required: dict | None = None,
    units: str = "seconds",
) -> Path:
    """Write ``BENCH_<bench>.json`` with a stamped schema block.

    Replaces the per-benchmark copy-pasted writers: every artifact opens
    with the same ``schema`` header — format version, bench name, the units
    measured values are in, and the thresholds the benchmark asserts
    (``required``) — so downstream perf tracking can parse any artifact
    without knowing which benchmark wrote it.  The measured ``payload``
    follows verbatim.
    """
    target = BENCH_ROOT / f"BENCH_{bench}.json"
    doc = {
        "schema": {
            "version": BENCH_SCHEMA_VERSION,
            "bench": bench,
            "units": units,
            "required": dict(required or {}),
        },
    }
    doc.update(payload)
    target.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {target.name}")
    return target


def bench_config(
    seed: int = 42,
    early_stop: int = 16,
    workers: int = 1,
    sync_interval: int = 8,
    max_iterations: int = 48,
) -> PipelineConfig:
    """A pipeline configuration for benchmark runs (keeps sweeps tractable)."""
    return PipelineConfig(
        search=SearchConfig(
            max_iterations=max_iterations,
            early_stop=early_stop,
            workers=workers,
            sync_interval=sync_interval,
            rollout_depth=12,
            reward_mappings=2,
            seed=seed,
        ),
        mapper=MapperConfig(
            top_k=5,
            max_vis_per_tree=3,
            max_joint_vis=8,
            max_searchm_calls=1500,
        ),
        catalog_scale=BENCH_SCALE,
        seed=seed,
    )


@dataclass
class WorkloadRun:
    """Metrics of one pipeline run, mirroring the paper's reporting."""

    workload: str
    total_seconds: float
    search_seconds: float
    mapping_seconds: float
    cost: float
    views: int
    widgets: tuple
    interactions: tuple
    interface: object = field(repr=False, default=None)


def run_workload(name: str, catalog, config: PipelineConfig) -> WorkloadRun:
    start = time.perf_counter()
    result = generate_for_workload(WORKLOADS[name], catalog=catalog, config=config)
    elapsed = time.perf_counter() - start
    interface = result.interface
    return WorkloadRun(
        workload=name,
        total_seconds=elapsed,
        search_seconds=result.search_seconds,
        mapping_seconds=result.mapping_seconds,
        cost=interface.cost.total,
        views=interface.num_views(),
        widgets=tuple(sorted(interface.widget_kinds())),
        interactions=tuple(sorted(interface.interaction_kinds())),
        interface=interface,
    )


@pytest.fixture(scope="session")
def bench_catalog():
    return standard_catalog(seed=42, scale=BENCH_SCALE)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a result table in a compact fixed-width format."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
