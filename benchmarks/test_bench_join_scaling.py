"""Join scaling — planned hash joins vs the seed cross-join executor.

The MCTS reward loop executes thousands of small SQL queries per interface
generation run, and before the plan layer every join was a cross product
followed by a filter: O(|L|·|R|) per evaluation.  This benchmark runs the
SDSS workload's galaxy ⋈ specObj join (the paper's Listing 5 shape) at
growing catalogue scales with both executors and checks that

* planned execution is at least 5× faster than the interpreter at catalogue
  scale ≥ 4 (at that scale the cross product is ~1M rows per evaluation), and
* both executors return identical results at every scale.
"""

import time

from conftest import print_table

from repro.database import Executor
from repro.database.datasets import standard_catalog

SCALES = [1.0, 2.0, 4.0]
SPEEDUP_SCALE = 4.0
REQUIRED_SPEEDUP = 5.0

JOIN_QUERY = (
    "SELECT gal.objID, gal.u, gal.g, s.z, s.ra, s.dec "
    "FROM galaxy as gal, specObj as s "
    "WHERE s.bestObjID = gal.objID AND s.ra BTWN 213.1 & 214.0 "
    "AND s.dec BTWN -0.9 & -0.1"
)


def _time_query(executor: Executor, repeats: int = 3) -> float:
    """Best-of-N wall time of one uncached join execution."""
    best = float("inf")
    for _ in range(repeats):
        executor.clear_cache()
        start = time.perf_counter()
        executor.execute_sql(JOIN_QUERY)
        best = min(best, time.perf_counter() - start)
    return best


def test_hash_join_speedup_over_cross_join_executor():
    rows = []
    speedups = {}
    for scale in SCALES:
        catalog = standard_catalog(seed=42, scale=scale)
        interpreted = Executor(catalog, enable_cache=False, use_planner=False)
        planned = Executor(catalog, enable_cache=False, use_planner=True)

        # planned execution must stay result-identical at every scale
        expected = interpreted.execute_sql(JOIN_QUERY)
        actual = planned.execute_sql(JOIN_QUERY)
        assert expected.rows == actual.rows
        assert expected.column_names() == actual.column_names()

        interp_t = _time_query(interpreted, repeats=1 if scale >= 4 else 3)
        plan_t = _time_query(planned)
        speedup = interp_t / max(plan_t, 1e-9)
        speedups[scale] = speedup
        rows.append(
            [
                f"x{scale:g}",
                len(catalog.table("galaxy")),
                f"{interp_t * 1000:.1f}ms",
                f"{plan_t * 1000:.1f}ms",
                f"{speedup:.1f}x",
            ]
        )

    print_table(
        "Join scaling: galaxy JOIN specObj, cross-join interpreter vs hash-join plans",
        ["scale", "rows/table", "interpreter", "planned", "speedup"],
        rows,
    )

    assert speedups[SPEEDUP_SCALE] >= REQUIRED_SPEEDUP, (
        f"hash-join plans only {speedups[SPEEDUP_SCALE]:.1f}x faster than the "
        f"cross-join executor at scale {SPEEDUP_SCALE:g} "
        f"(required ≥ {REQUIRED_SPEEDUP:g}x)"
    )


def test_plan_stats_show_hash_join_usage():
    catalog = standard_catalog(seed=42, scale=1.0)
    planned = Executor(catalog, enable_cache=False, use_planner=True)
    planned.execute_sql(JOIN_QUERY)
    assert planned.stats.hash_joins_executed == 1
    assert planned.stats.cross_joins_executed == 0
    assert planned.stats.predicates_pushed >= 2  # the two range conjuncts
