"""Outer-join / nested-loop join scaling — vectorized vs row-based plans.

PR 2's columnar benchmark covered the filter / aggregate / inner-hash-join
shapes; this one covers the joins that used to fall back to the row engine:
LEFT / RIGHT hash joins (typed-NULL padding after the residual filter) and
non-equi ON conditions (block-wise vectorized nested loop).  The workload
runs both engines at catalogue scale 4 and checks that

* every query returns identical results (rows and order) on both engines,
* the columnar engine reports **zero** runtime fallbacks — these operators
  are covered, not tolerated — and
* vectorized execution is at least 3× faster than the row-based planned
  executor over the whole outer-join/nested-loop workload.

Plans are warmed through a shared cache before timing, so the numbers compare
pure execution.  The measured numbers are written to
``BENCH_columnar_joins.json`` at the repo root (uploaded as a CI artifact) so
the perf trajectory is tracked per run.
"""

from __future__ import annotations

import time

from conftest import print_table, write_bench_json

from repro.database import Executor, PlanCache
from repro.database.datasets import standard_catalog

SCALE = 4.0
REQUIRED_SPEEDUP = 3.0

#: the join shapes that previously dropped to the per-row interpreter path
WORKLOAD = {
    "outer-hash": [
        # LEFT with a residual ON conjunct: pad after the residual filter
        "SELECT gal.objID, gal.u, s.ra FROM galaxy as gal "
        "LEFT JOIN specObj as s ON s.bestObjID = gal.objID AND s.ra > 213.8",
        "SELECT gal.objID, s.ra, s.dec FROM galaxy as gal "
        "RIGHT JOIN specObj as s ON s.bestObjID = gal.objID",
        "SELECT t.p, c.hp FROM T as t "
        "LEFT JOIN Cars as c ON t.p = c.id AND c.hp > 150",
    ],
    "nested-loop": [
        # non-equi conditions: block-wise cross product + vector compare
        "SELECT t.p, c.id FROM T as t JOIN Cars as c ON t.p > c.id",
        "SELECT t.a, c.mpg FROM T as t LEFT JOIN Cars as c ON t.a > c.mpg",
        "SELECT t.b, c.hp FROM T as t RIGHT JOIN Cars as c ON t.b >= c.mpg",
    ],
}


def _executors(catalog):
    """Row-planned and columnar executors sharing one warm plan cache."""
    plans = PlanCache()
    row = Executor(catalog, enable_cache=False, columnar=False, plan_cache=plans)
    col = Executor(catalog, enable_cache=False, columnar=True, plan_cache=plans)
    return row, col


def _time_queries(executor: Executor, queries, repeats: int = 3) -> float:
    """Best-of-N wall time of one pass over ``queries`` (plans stay warm)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for sql in queries:
            executor.execute_sql(sql)
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_outer_and_nested_loop_join_speedup():
    catalog = standard_catalog(seed=42, scale=SCALE)
    row, col = _executors(catalog)

    # equivalence first: identical rows in identical order, NULL padding
    # included, on every query
    for queries in WORKLOAD.values():
        for sql in queries:
            expected = row.execute_sql(sql)
            actual = col.execute_sql(sql)
            assert expected.rows == actual.rows, sql
            assert expected.column_names() == actual.column_names()
    # covered, not tolerated: no query may have dropped to the row engine
    assert col.stats.columnar_fallbacks == 0
    assert col.stats.columnar_plan_gated == 0
    assert col.stats.nested_loop_joins_columnar >= len(WORKLOAD["nested-loop"])

    rows = []
    shape_times = {}
    for shape, queries in WORKLOAD.items():
        row_t = _time_queries(row, queries)
        col_t = _time_queries(col, queries)
        shape_times[shape] = (row_t, col_t)
        rows.append(
            [
                shape,
                f"{row_t * 1000:.1f}ms",
                f"{col_t * 1000:.1f}ms",
                f"{row_t / max(col_t, 1e-9):.1f}x",
            ]
        )
    total_row = sum(t for t, _ in shape_times.values())
    total_col = sum(t for _, t in shape_times.values())
    speedup = total_row / max(total_col, 1e-9)
    rows.append(
        [
            "total",
            f"{total_row * 1000:.1f}ms",
            f"{total_col * 1000:.1f}ms",
            f"{speedup:.1f}x",
        ]
    )
    print_table(
        f"Outer-join / nested-loop workload at scale x{SCALE:g}: "
        "row plans vs columnar (same plan cache)",
        ["shape", "row plans", "columnar", "speedup"],
        rows,
    )

    payload = {
        "benchmark": "columnar_joins",
        "catalog_scale": SCALE,
        "queries": {shape: len(qs) for shape, qs in WORKLOAD.items()},
        "row_seconds": {s: t[0] for s, t in shape_times.items()},
        "columnar_seconds": {s: t[1] for s, t in shape_times.items()},
        "total_row_seconds": total_row,
        "total_columnar_seconds": total_col,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "columnar_fallbacks": col.stats.columnar_fallbacks,
        "nested_loop_joins_columnar": col.stats.nested_loop_joins_columnar,
        "hash_joins_columnar": col.stats.hash_joins_executed,
    }
    write_bench_json(
        "columnar_joins", payload, required={"speedup": REQUIRED_SPEEDUP}
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"columnar outer/nested-loop joins only {speedup:.1f}x faster than "
        f"row-based plans at scale {SCALE:g} (required ≥ {REQUIRED_SPEEDUP:g}x)"
    )
