"""Ablation — Algorithm 1's pruning / safety check and the Difftree search.

The paper attributes its runtime improvements (30 s → median 6 s) to a set of
simple optimizations and notes that the per-candidate safety check dominates
when there are many input queries.  This ablation quantifies, on the Filter
log's refactored Difftrees:

* interface-mapping time and result quality with and without the visualization
  interaction safety check, and
* the contribution of the deterministic refactor-to-fixpoint initialisation
  (without it, MCTS needs the full budget to reach comparable states).
"""

import time

import pytest
from conftest import bench_config, print_table

from repro.core.pipeline import generate_for_workload
from repro.cost.model import CostModel
from repro.database import Executor
from repro.difftree import initial_difftrees, merge_difftrees
from repro.difftree.builder import cluster_by_result_schema, parse_queries
from repro.mapping import InterfaceMapper, MapperConfig
from repro.transform import TransformEngine
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def filter_trees(bench_catalog):
    executor = Executor(bench_catalog)
    queries = list(WORKLOADS["filter"].queries)
    engine = TransformEngine(bench_catalog, executor)
    clusters = cluster_by_result_schema(
        initial_difftrees(parse_queries(queries)), executor
    )
    return engine.refactor_to_fixpoint([merge_difftrees(c) for c in clusters]), queries


def _map_with(bench_catalog, trees, queries, **mapper_kwargs):
    executor = Executor(bench_catalog)
    cost_model = CostModel(parse_queries(queries))
    mapper = InterfaceMapper(
        bench_catalog, executor, cost_model, MapperConfig(**mapper_kwargs)
    )
    start = time.perf_counter()
    best = mapper.generate(trees)[0]
    elapsed = time.perf_counter() - start
    return elapsed, best, mapper.stats


def test_ablation_safety_check_and_refactor(benchmark, bench_catalog, filter_trees):
    trees, queries = filter_trees

    time_safe, best_safe, stats_safe = _map_with(
        bench_catalog, trees, queries, check_safety=True, max_searchm_calls=2000
    )
    time_unsafe, best_unsafe, stats_unsafe = _map_with(
        bench_catalog, trees, queries, check_safety=False, max_searchm_calls=2000
    )

    # pipeline with / without the deterministic refactor initialisation
    config_refactor = bench_config(early_stop=8, max_iterations=16)
    config_search_only = config_refactor.replace(initial_refactor=False)
    run_refactor = generate_for_workload(
        WORKLOADS["filter"], catalog=bench_catalog, config=config_refactor
    )
    run_search_only = generate_for_workload(
        WORKLOADS["filter"], catalog=bench_catalog, config=config_search_only
    )

    rows = [
        ["mapping, safety check on", f"{time_safe:.1f}s", f"{best_safe.cost.total:.1f}",
         stats_safe.interfaces_evaluated],
        ["mapping, safety check off", f"{time_unsafe:.1f}s", f"{best_unsafe.cost.total:.1f}",
         stats_unsafe.interfaces_evaluated],
        ["pipeline, refactor init", f"{run_refactor.total_seconds:.1f}s",
         f"{run_refactor.interface.cost.total:.1f}", run_refactor.interface.num_views()],
        ["pipeline, search only", f"{run_search_only.total_seconds:.1f}s",
         f"{run_search_only.interface.cost.total:.1f}", run_search_only.interface.num_views()],
    ]
    print_table(
        "Ablation: safety check and refactor-to-fixpoint initialisation (Filter log)",
        ["condition", "time", "best cost", "evaluated / views"],
        rows,
    )

    # both mapping variants produce complete interfaces; disabling the safety
    # check can only widen the candidate pool (and often speeds mapping up)
    assert best_safe.is_complete() and best_unsafe.is_complete()
    assert best_unsafe.cost.total <= best_safe.cost.total * 1.25

    # both pipeline variants must deliver complete interfaces that express the
    # whole log; the refactor initialisation yields the richer, multi-view
    # interactive design (the search-only variant may fall back to static
    # charts under the reduced benchmark budget)
    assert run_refactor.interface.is_complete()
    assert run_search_only.interface.is_complete()
    assert run_refactor.interface.num_views() >= 3
    assert run_refactor.interface.interaction_kinds() or run_refactor.interface.widgets

    # benchmark the safety-checked mapping step itself
    elapsed, best, _ = benchmark.pedantic(
        _map_with,
        args=(bench_catalog, trees, queries),
        kwargs={"check_safety": True, "max_searchm_calls": 1000},
        rounds=1,
        iterations=1,
    )
    assert best.is_complete()
