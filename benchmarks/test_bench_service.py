"""Persistent-service benchmark: warm-pool amortization of repeat requests.

The scenario ISSUE 8 optimizes: the *same* (catalogue, workload) generation
requested repeatedly — a dashboard regenerated per analyst, per session, per
page load.  A one-shot run pays process spawn, per-process cache warm-up and
the full reward search every time; the service pays them once.  All requests
flow through one :class:`~repro.service.service.GenerationService`:

* request 1 (**cold**): builds the worker pool inside the request — process
  spawn, shared-memory catalogue registration, per-process warm-up, and a
  full search over unexplored states;
* requests 2..N (**warm**): live workers, attached catalogue, warm plan
  cache / mapping memo, and a reward table that already holds every state
  the search will visit.

This amortization is deliberately measurable on a single-core container:
it removes spawn + warm-up + re-exploration, not parallelism, so the ≥3×
requirement is asserted unconditionally (unlike ``BENCH_parallel.json``'s
core-gated speedup).  Determinism is asserted alongside: every request must
produce byte-identical interfaces — the warm path changes cost, never
output.

Results go to ``BENCH_service.json`` at the repo root (uploaded as a CI
artifact) so the perf trajectory is tracked per run.
"""

from __future__ import annotations

import json
import os
import time

from conftest import print_table, write_bench_json

from repro.core.config import PipelineConfig
from repro.core.pipeline import generate_interface
from repro.database import standard_catalog
from repro.mapping.mapper import MapperConfig
from repro.search.config import SearchConfig
from repro.service import GenerationService
from repro.workloads import WORKLOADS, scale_workload

CATALOG_SCALE = 1.5
WORKERS = 2
MAX_ITERATIONS = 48
SYNC_INTERVAL = 12
QUERY_COUNT = 36  # the Filter log, duplicated (scalability benchmark shape)
WARM_REQUESTS = 3
REQUIRED_AMORTIZATION = 3.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _config() -> PipelineConfig:
    return PipelineConfig(
        search=SearchConfig(
            max_iterations=MAX_ITERATIONS,
            early_stop=10**6,  # disabled: equal budgets for cold and warm
            workers=WORKERS,
            sync_interval=SYNC_INTERVAL,
            rollout_depth=16,
            reward_mappings=5,
            max_applications=64,
            seed=42,
            backend="process",
            shared_rewards=True,
        ),
        mapper=MapperConfig(
            top_k=2, max_vis_per_tree=3, max_joint_vis=4, max_searchm_calls=200
        ),
        catalog_scale=CATALOG_SCALE,
        seed=42,
    )


def _signature(result) -> tuple:
    return (
        json.dumps(result.interface.to_dict(), sort_keys=True, default=str),
        result.best_reward,
        result.state.fingerprint(),
    )


def test_warm_pool_amortizes_repeat_generations():
    workload = scale_workload(WORKLOADS["filter"], QUERY_COUNT, seed=5)
    queries = list(workload.queries)

    # reference: the pre-service one-shot path (fresh processes every call)
    oneshot_catalog = standard_catalog(seed=42, scale=CATALOG_SCALE)
    oneshot_start = time.perf_counter()
    oneshot = generate_interface(queries, catalog=oneshot_catalog, config=_config())
    oneshot_seconds = time.perf_counter() - oneshot_start

    requests = []
    signatures = []
    with GenerationService(
        standard_catalog(seed=42, scale=CATALOG_SCALE), config=_config()
    ) as service:
        for _ in range(1 + WARM_REQUESTS):
            start = time.perf_counter()
            result = service.generate(queries)
            elapsed = time.perf_counter() - start
            requests.append((elapsed, result, service.requests[-1]))
            signatures.append(_signature(result))

    cold_seconds, cold_result, cold_stats = requests[0]
    warm_runs = requests[1:]
    warm_seconds = [elapsed for elapsed, _, _ in warm_runs]
    warm_best = min(warm_seconds)
    amortization = cold_seconds / max(warm_best, 1e-9)

    rows = [
        [
            stats.pool,
            f"{elapsed:.3f}s",
            f"{stats.warmup_seconds:.3f}s",
            stats.reward_table_loaded,
            stats.reward_table_hits,
            result.search_stats.states_evaluated,
        ]
        for elapsed, result, stats in requests
    ]
    print_table(
        f"Service repeat generations: filter x{QUERY_COUNT} "
        f"({WORKERS} workers x {MAX_ITERATIONS} iterations)",
        ["pool", "request", "warmup", "loaded", "table hits", "evals"],
        rows,
    )
    print(
        f"cold {cold_seconds:.3f}s vs warm best {warm_best:.3f}s: "
        f"{amortization:.1f}x amortization (required {REQUIRED_AMORTIZATION}x); "
        f"one-shot reference {oneshot_seconds:.3f}s"
    )

    payload = {
        "benchmark": "service_warm_pool",
        "workload": f"filter x{QUERY_COUNT}",
        "workers": WORKERS,
        "iterations_per_worker": MAX_ITERATIONS,
        "usable_cores": _usable_cores(),
        "oneshot_seconds": oneshot_seconds,
        "cold_request_seconds": cold_seconds,
        "warm_request_seconds": warm_seconds,
        "warm_best_seconds": warm_best,
        "amortization": amortization,
        "required_amortization": REQUIRED_AMORTIZATION,
        "cold_warmup_seconds": cold_stats.warmup_seconds,
        "warm_warmup_seconds": [stats.warmup_seconds for _, _, stats in warm_runs],
        "warm_reward_table_loaded": [
            stats.reward_table_loaded for _, _, stats in warm_runs
        ],
        "warm_reward_table_hits": [
            stats.reward_table_hits for _, _, stats in warm_runs
        ],
        "warm_states_evaluated": [
            result.search_stats.states_evaluated for _, result, _ in warm_runs
        ],
    }
    write_bench_json(
        "service", payload, required={"amortization": REQUIRED_AMORTIZATION}
    )

    # ISSUE 8 acceptance: the warm path skips spawn, warm-up and previously
    # explored states entirely — and cannot change the output
    assert cold_stats.pool == "cold"
    assert cold_stats.warmup_seconds > 0.0
    for _, _, stats in warm_runs:
        assert stats.pool == "warm"
        assert stats.warmup_seconds == 0.0
        assert stats.reward_table_loaded > 0
        assert stats.reward_table_hits > 0
    assert len(set(signatures)) == 1, "service requests diverged"
    assert _signature(oneshot) == signatures[0], "service diverged from one-shot"

    assert amortization >= REQUIRED_AMORTIZATION, (
        f"warm-pool amortization {amortization:.2f}x below "
        f"{REQUIRED_AMORTIZATION}x (cold {cold_seconds:.3f}s, "
        f"warm best {warm_best:.3f}s)"
    )
