"""Columnar storage, vectorized execution, and the shared plan cache."""

import pytest

from repro.database import (
    Catalog,
    Column,
    DataType,
    Executor,
    PlanCache,
    SHARED_PLAN_CACHE,
    Table,
    standard_catalog,
)
from repro.database.table import ResultColumn, ResultTable

CATALOG = standard_catalog(seed=7, scale=0.12)


# -- columnar Table ------------------------------------------------------------


def test_table_stores_columns_and_materialises_rows_lazily():
    t = Table("x", [Column("a", DataType.INT), Column("b", DataType.STR)])
    t.insert((1, "p"))
    t.insert((2, "q"))
    assert t.column_data(0) == [1, 2]
    assert t.column_data(1) == ["p", "q"]
    assert t._rows_cache is None  # nothing materialised yet
    assert t.rows == [(1, "p"), (2, "q")]
    assert t._rows_cache is not None
    t.insert((3, "r"))  # insert invalidates the cache
    assert t.rows == [(1, "p"), (2, "q"), (3, "r")]
    assert len(t) == 3
    assert list(iter(t)) == t.rows


def test_table_values_returns_fresh_list():
    t = Table("x", [Column("a", DataType.INT)])
    t.insert((1,))
    values = t.values("a")
    values.append(99)
    assert t.values("a") == [1]


# -- ResultTable ---------------------------------------------------------------


def test_result_table_column_index_is_dict_backed():
    rt = ResultTable(
        [ResultColumn("a", DataType.INT), ResultColumn("b", DataType.INT)],
        [(1, 2)],
    )
    assert rt.column_index("a") == 0
    assert rt.column_index("b") == 1
    assert rt._index == {"a": 0, "b": 1}
    with pytest.raises(KeyError):
        rt.column_index("missing")
    # duplicate names resolve to the first occurrence, like the linear scan did
    dup = ResultTable(
        [ResultColumn("a", DataType.INT), ResultColumn("a", DataType.INT)],
        [(1, 2)],
    )
    assert dup.column_index("a") == 0


def test_result_table_from_columns_materialises_rows_lazily():
    rt = ResultTable.from_columns(
        [ResultColumn("a", DataType.INT), ResultColumn("b", DataType.INT)],
        [[1, 2, 3], [4, 5, 6]],
    )
    assert len(rt) == 3
    assert rt.values("b") == [4, 5, 6]  # column access without materialising
    assert rt._rows_cache is None
    assert rt.rows == [(1, 4), (2, 5), (3, 6)]
    assert rt.to_dicts()[0] == {"a": 1, "b": 4}


def test_result_table_copy_is_defensive():
    rt = ResultTable.from_columns([ResultColumn("a", DataType.INT)], [[1, 2]])
    cp = rt.copy()
    cp.rows.append((99,))
    cp.columns[0].name = "renamed"
    assert rt.rows == [(1,), (2,)]
    assert rt.columns[0].name == "a"


# -- vectorized execution ------------------------------------------------------


def make_pair():
    private = PlanCache()
    row = Executor(
        CATALOG, enable_cache=False, columnar=False, plan_cache=private
    )
    col = Executor(
        CATALOG, enable_cache=False, columnar=True, plan_cache=private
    )
    return row, col


def test_columnar_runs_supported_queries():
    _, col = make_pair()
    col.execute_sql("SELECT hour, count(*) FROM flights GROUP BY hour")
    assert col.stats.columnar_executions == 1
    assert col.stats.columnar_fallbacks == 0


def test_multi_conjunct_filter_chains_selection_vector():
    """Chained pushed predicates gather columns once, not once per conjunct."""
    row, col = make_pair()
    sql = (
        "SELECT id, hp, mpg, disp, origin FROM Cars "
        "WHERE hp > 100 AND mpg > 12 AND disp > 150"
    )
    assert row.execute_sql(sql).rows == col.execute_sql(sql).rows
    assert col.stats.columnar_executions >= 1
    # the per-predicate strategy re-gathers all five columns after each
    # dropping conjunct; the shared selection vector gathers once at the end
    assert col.stats.filter_gathers_saved > 0
    assert row.stats.filter_gathers_saved == 0  # row path is untouched


def test_filter_chain_handles_all_rows_dropped():
    row, col = make_pair()
    sql = "SELECT hp, mpg FROM Cars WHERE hp > 40 AND mpg < -1 AND disp > 50"
    assert row.execute_sql(sql).rows == col.execute_sql(sql).rows
    assert col.execute_sql(sql).rows == []


def test_columnar_result_matches_row_plan_on_join():
    row, col = make_pair()
    sql = (
        "SELECT gal.objID, s.ra FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.0"
    )
    assert row.execute_sql(sql).rows == col.execute_sql(sql).rows
    assert col.stats.hash_joins_executed == 1


def test_outer_hash_join_runs_columnar_with_null_padding():
    row, col = make_pair()
    for sql in (
        "SELECT t.p, s.ra FROM T as t LEFT JOIN specObj as s ON t.p = s.specObjID",
        "SELECT t.p, s.ra FROM T as t RIGHT JOIN specObj as s ON t.p = s.specObjID",
    ):
        expected = row.execute_sql(sql)
        actual = col.execute_sql(sql)
        assert expected.rows == actual.rows, sql
        # unmatched preserved rows really are there, NULL-padded
        assert any(None in r for r in actual.rows), sql
    assert col.stats.columnar_fallbacks == 0
    assert col.stats.hash_joins_executed == 2


def test_non_equi_join_runs_vectorized_nested_loop():
    row, col = make_pair()
    for sql in (
        "SELECT t.p, c.hp FROM T as t JOIN Cars as c ON t.p > c.id",
        "SELECT t.p, c.hp FROM T as t LEFT JOIN Cars as c ON t.p > c.id AND c.hp > 80",
    ):
        assert row.execute_sql(sql).rows == col.execute_sql(sql).rows, sql
    assert col.stats.columnar_fallbacks == 0
    # the counters split the planned nested loops by engine
    assert col.stats.nested_loop_joins_columnar == 2
    assert row.stats.nested_loop_joins_executed == 2


def test_uncorrelated_subquery_predicates_run_columnar():
    row, col = make_pair()
    for sql in (
        "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)",
        "SELECT hour FROM flights WHERE hour IN "
        "(SELECT hour FROM flights WHERE hour < 3) AND delay > 0",
    ):
        assert row.execute_sql(sql).rows == col.execute_sql(sql).rows, sql
    # the whole plan stays vectorized: the subquery is evaluated once through
    # the executor and broadcast (outer + inner executions, no fallbacks)
    assert col.stats.columnar_fallbacks == 0
    assert col.stats.columnar_plan_gated == 0
    assert col.stats.columnar_executions >= 4


def test_correlated_subquery_is_plan_gated_with_reason():
    _, col = make_pair()
    col.execute_sql(
        "SELECT total FROM sales as ss WHERE total >= "
        "(SELECT max(total) FROM sales as s WHERE s.city = ss.city)"
    )
    # routed to the row engine at plan time — never a runtime fallback — and
    # the first unsupported construct is recorded for observability
    assert col.stats.columnar_fallbacks == 0
    assert col.stats.columnar_plan_gated == 1
    assert col.stats.fallback_reasons == {"correlated subquery in WHERE": 1}


def test_workload_sweep_has_zero_columnar_fallbacks():
    """Coverage regression gate: every query of every workload log either
    runs vectorized or is plan-gated for a recorded *correlated-subquery*
    reason — a runtime fallback means an operator lost columnar coverage."""
    from repro.workloads.logs import WORKLOADS

    ex = Executor(CATALOG, enable_cache=False, plan_cache=PlanCache())
    total = 0
    for workload in WORKLOADS.values():
        for sql in workload.queries:
            ex.execute_sql(sql)
            total += 1
    assert ex.stats.columnar_fallbacks == 0
    # only the sales log's correlated-HAVING queries may skip the vectorized
    # engine, and each such routing names its construct
    assert ex.stats.columnar_executions >= total - ex.stats.columnar_plan_gated
    assert set(ex.stats.fallback_reasons) <= {"correlated subquery in HAVING"}


def test_columnar_hash_join_builds_on_smaller_side():
    """Build-side selection must not change results or row order."""
    small = Table.from_rows(
        "small", [Column("k", DataType.INT)], [(2,), (1,), (2,)]
    )
    big = Table.from_rows(
        "big",
        [Column("k", DataType.INT), Column("v", DataType.INT)],
        [(i % 3, i) for i in range(20)],
    )
    catalog = Catalog([small, big])
    private = PlanCache()
    expected = Executor(catalog, enable_cache=False, use_planner=False).execute_sql(
        "SELECT small.k, big.v FROM small, big WHERE small.k = big.k"
    )
    for sql in (
        "SELECT small.k, big.v FROM small, big WHERE small.k = big.k",
        "SELECT big.v, small.k FROM big, small WHERE small.k = big.k",
    ):
        col = Executor(catalog, enable_cache=False, plan_cache=private)
        actual = col.execute_sql(sql)
        oracle = Executor(catalog, enable_cache=False, use_planner=False).execute_sql(sql)
        assert actual.rows == oracle.rows
    assert expected.rows  # sanity: the join is not empty


def test_columnar_results_are_snapshots_of_base_storage():
    """A projected result must not alias the table's column storage: rows
    inserted after the query ran may not appear in an already-built result."""
    t = Table.from_rows("snap", [Column("a", DataType.INT)], [(1,), (2,)])
    catalog = Catalog([t])
    ex = Executor(catalog, enable_cache=False, plan_cache=PlanCache())
    result = ex.execute_sql("SELECT a FROM snap")
    t.insert((3,))
    assert result.values("a") == [1, 2]
    assert result.rows == [(1,), (2,)]


# -- shared plan cache ---------------------------------------------------------


def test_plan_cache_is_shared_across_executors():
    catalog = standard_catalog(seed=11, scale=0.1)
    cache = PlanCache()
    first = Executor(catalog, enable_cache=False, plan_cache=cache)
    second = Executor(catalog, enable_cache=False, plan_cache=cache)
    sql = "SELECT hp FROM Cars WHERE mpg > 20"
    first.execute_sql(sql)
    assert first.stats.plans_compiled == 1
    second.execute_sql(sql)
    # the second executor never compiles: it reuses the first one's plan
    assert second.stats.plans_compiled == 0
    assert second.stats.plan_cache_hits == 1
    assert cache.info()["plans"] == 1


def test_plan_cache_is_partitioned_by_catalog():
    cache = PlanCache()
    cat_a = standard_catalog(seed=11, scale=0.1)
    cat_b = standard_catalog(seed=12, scale=0.1)
    sql = "SELECT hp FROM Cars"
    Executor(cat_a, enable_cache=False, plan_cache=cache).execute_sql(sql)
    ex_b = Executor(cat_b, enable_cache=False, plan_cache=cache)
    ex_b.execute_sql(sql)
    # same fingerprint, different catalogue: must compile its own plan
    assert ex_b.stats.plans_compiled == 1
    assert cache.info()["catalogs"] == 2


def test_plan_cache_entries_die_with_their_catalog():
    cache = PlanCache()
    catalog = standard_catalog(seed=11, scale=0.1)
    Executor(catalog, enable_cache=False, plan_cache=cache).execute_sql(
        "SELECT hp FROM Cars"
    )
    assert cache.size() == 1
    del catalog
    import gc

    gc.collect()
    assert cache.size() == 0


def test_plan_cache_lru_bound():
    cache = PlanCache(max_size_per_catalog=2)
    catalog = standard_catalog(seed=11, scale=0.1)
    ex = Executor(catalog, enable_cache=False, plan_cache=cache)
    ex.execute_sql("SELECT hp FROM Cars")
    ex.execute_sql("SELECT mpg FROM Cars")
    ex.execute_sql("SELECT disp FROM Cars")
    assert cache.size(catalog) == 2


def test_default_executor_uses_process_wide_cache():
    ex = Executor(standard_catalog(seed=13, scale=0.1))
    assert ex.plan_cache is SHARED_PLAN_CACHE


def test_clear_cache_only_drops_own_catalog_plans():
    cache = PlanCache()
    cat_a = standard_catalog(seed=11, scale=0.1)
    cat_b = standard_catalog(seed=12, scale=0.1)
    ex_a = Executor(cat_a, enable_cache=False, plan_cache=cache)
    ex_b = Executor(cat_b, enable_cache=False, plan_cache=cache)
    ex_a.execute_sql("SELECT hp FROM Cars")
    ex_b.execute_sql("SELECT hp FROM Cars")
    ex_a.clear_cache()
    assert cache.size(cat_a) == 0
    assert cache.size(cat_b) == 1
