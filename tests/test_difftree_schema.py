"""Tests for type annotation, node schemas and result schemas (Section 3.2)."""

from repro.database.types import DataType
from repro.difftree import (
    Difftree,
    initial_difftrees,
    merge_difftrees,
    node_schema,
    result_schema_for_queries,
    union_result_schemas,
)
from repro.difftree.nodes import AnyNode, MultiNode, SubsetNode, ValNode, make_opt
from repro.difftree.schema import (
    OptExpr,
    OrExpr,
    RepExpr,
    TupleSchema,
    TypeAnnotator,
    TypeExpr,
    WildcardExpr,
    result_schema_of_result,
)
from repro.difftree.types import PiType
from repro.sqlparser import ast_nodes as A
from repro.sqlparser import parse
from repro.sqlparser.ast_nodes import L, Node


# -- type annotation ---------------------------------------------------------------


def test_literal_and_column_types(catalog):
    ast = parse("SELECT hp FROM Cars WHERE origin = 'USA'")
    annotator = TypeAnnotator(catalog)
    annotator.annotate(ast)
    column = ast.find_first(lambda n: n.label == L.COLUMN and n.value == "origin")
    assert annotator.type_of(column) == PiType.str_()
    assert annotator.attribute_of(column) == "Cars.origin"


def test_equality_specialises_literal_to_attribute_type(catalog):
    ast = parse("SELECT p FROM T WHERE a = 1")
    annotator = TypeAnnotator(catalog)
    annotator.annotate(ast)
    literal = ast.find_first(lambda n: n.label == L.LITERAL_NUM)
    assert annotator.type_of(literal) == PiType.attr("T.a", DataType.INT)


def test_between_specialises_both_bounds(catalog):
    ast = parse("SELECT hp FROM Cars WHERE hp BETWEEN 50 AND 60")
    annotator = TypeAnnotator(catalog)
    annotator.annotate(ast)
    literals = ast.find_label(L.LITERAL_NUM)
    for lit in literals:
        assert annotator.type_of(lit).attribute == "Cars.hp"


def test_alias_qualified_column_resolution(catalog):
    ast = parse("SELECT s.ra FROM specObj as s WHERE s.ra BETWEEN 213 AND 214")
    annotator = TypeAnnotator(catalog)
    annotator.annotate(ast)
    column = ast.find_first(lambda n: n.label == L.COLUMN and n.value == "s.ra")
    assert annotator.attribute_of(column) == "specObj.ra"


def test_function_type_from_catalog(catalog):
    ast = parse("SELECT count(*) FROM T")
    annotator = TypeAnnotator(catalog)
    annotator.annotate(ast)
    func = ast.find_first(lambda n: n.label == L.FUNC)
    assert annotator.type_of(func) == PiType.num()


def test_annotator_without_catalog_defaults():
    ast = parse("SELECT a FROM t WHERE a = 1")
    annotator = TypeAnnotator(None)
    annotator.annotate(ast)
    literal = ast.find_first(lambda n: n.label == L.LITERAL_NUM)
    assert annotator.type_of(literal) == PiType.num()


# -- node schemas --------------------------------------------------------------------


def _annotator(catalog, root):
    annotator = TypeAnnotator(catalog)
    annotator.annotate(root)
    return annotator


def test_any_over_static_literals_has_union_type_schema(catalog):
    ast = parse("SELECT p FROM T WHERE a = 1")
    literal = ast.find_first(lambda n: n.label == L.LITERAL_NUM)
    any_node = AnyNode([literal.copy(), A.literal_num(2)])
    parent = ast.find_first(lambda n: n.label == L.BINOP)
    parent.children[1] = any_node
    schema = node_schema(any_node, _annotator(catalog, ast))
    assert isinstance(schema, TupleSchema) and schema.arity() == 1
    assert isinstance(schema.exprs[0], TypeExpr)
    assert schema.exprs[0].pitype.attribute == "T.a"


def test_any_over_dynamic_children_is_or_schema(catalog):
    inner = ValNode([A.literal_num(1)], pitype=PiType.num())
    any_node = AnyNode([A.binop("=", A.column("a"), inner), A.column("b")])
    schema = node_schema(any_node, _annotator(catalog, any_node))
    assert isinstance(schema.exprs[0], OrExpr)


def test_opt_multi_subset_schemas(catalog):
    pred = A.binop("=", A.column("a"), A.literal_num(1))
    opt = make_opt(pred.copy())
    schema = node_schema(opt, _annotator(catalog, opt))
    assert isinstance(schema.exprs[0], OptExpr)

    multi = MultiNode([A.column("a")])
    schema = node_schema(multi, _annotator(catalog, multi))
    assert isinstance(schema.exprs[0], RepExpr)

    subset = SubsetNode([pred.copy(), A.binop("=", A.column("b"), A.literal_num(2))])
    schema = node_schema(subset, _annotator(catalog, subset))
    assert len(schema.exprs) == 2
    assert all(isinstance(e, OptExpr) for e in schema.exprs)


def test_ancestor_dynamic_node_schema_is_cross_product(catalog):
    ast = parse("SELECT hp FROM Cars WHERE hp BETWEEN 50 AND 60")
    between = ast.find_first(lambda n: n.label == L.BETWEEN)
    between.children[1] = ValNode([A.literal_num(50)], pitype=PiType.attr("Cars.hp", DataType.INT))
    between.children[2] = ValNode([A.literal_num(60)], pitype=PiType.attr("Cars.hp", DataType.INT))
    schema = node_schema(between, _annotator(catalog, ast))
    assert isinstance(schema, TupleSchema) and schema.arity() == 2
    assert all(isinstance(e, TypeExpr) for e in schema.exprs)


def test_schema_compatibility_rules():
    num = TypeExpr(PiType.num())
    attr = TypeExpr(PiType.attr("T.a", DataType.INT))
    wild = WildcardExpr()
    assert attr.compatible_with(num)
    assert not num.compatible_with(attr)
    assert num.compatible_with(wild)
    assert OptExpr(attr).compatible_with(OptExpr(wild))
    assert not OptExpr(attr).compatible_with(num)
    assert RepExpr(num).compatible_with(RepExpr(wild))
    assert TupleSchema((num, num)).compatible_with(TupleSchema((wild, wild)))
    assert not TupleSchema((num,)).compatible_with(TupleSchema((num, num)))
    assert OrExpr((num, attr)).compatible_with(wild)


# -- result schemas --------------------------------------------------------------------


def test_result_schema_of_single_query(executor):
    ast = parse("SELECT hour, count(*) FROM flights GROUP BY hour")
    result = executor.execute(ast)
    schema = result_schema_of_result(result, ast)
    assert schema.arity() == 2
    assert schema.attribute(0).grouped
    assert schema.attribute(1).is_aggregate
    assert schema.attribute(0).sources == ("flights.hour",)


def test_union_result_schema_merges_names_and_types(executor):
    asts = [
        parse("SELECT p, count(*) FROM T GROUP BY p"),
        parse("SELECT a, count(*) FROM T GROUP BY a"),
    ]
    schema = result_schema_for_queries(asts, executor)
    assert schema is not None
    assert set(schema.attribute(0).names) == {"p", "a"}
    assert schema.attribute(0).pitype == PiType.num()


def test_union_incompatible_arity_is_none(executor):
    asts = [
        parse("SELECT p FROM T"),
        parse("SELECT p, a FROM T"),
    ]
    assert result_schema_for_queries(asts, executor) is None


def test_union_incompatible_types_is_none(executor):
    asts = [
        parse("SELECT origin FROM Cars"),
        parse("SELECT hp FROM Cars"),
    ]
    assert result_schema_for_queries(asts, executor) is None


def test_union_result_schemas_empty():
    assert union_result_schemas([]) is None


def test_difftree_result_schema_uses_expressible_queries(executor, section2_asts):
    merged = merge_difftrees(initial_difftrees(section2_asts))
    schema = merged.result_schema(executor)
    assert schema is not None
    assert schema.arity() == 2
    assert str(schema)  # human-readable form renders


def test_unexecutable_query_gives_none_schema(executor):
    bad = Difftree(parse("SELECT missing_col FROM Cars WHERE missing_col = 1"), [
        parse("SELECT missing_col FROM Cars WHERE missing_col = 1")
    ])
    assert bad.result_schema(executor) is None
