"""Tests for the visualization model and visualization mapping (Table 1, §4.1)."""

from repro.difftree import initial_difftrees
from repro.mapping import (
    BAR_VIS,
    LINE_VIS,
    POINT_VIS,
    TABLE_VIS,
    VIS_TYPES,
    VisualizationType,
    VisualVariable,
    attribute_kinds,
    candidate_visualizations,
    register_visualization,
)
from repro.mapping.visualization import CATEGORICAL, QUANTITATIVE


def schema_for(executor, sql):
    tree = initial_difftrees([sql])[0]
    return tree.result_schema(executor)


def test_table1_visualization_schemas():
    """The library reproduces the schemas / FDs / interactions of Table 1."""
    assert TABLE_VIS.accepts_any_schema
    assert TABLE_VIS.interactions == ("click",)

    point_vars = {v.name: v for v in POINT_VIS.variables}
    assert set(point_vars) == {"x", "y", "shape", "size", "color"}
    assert point_vars["x"].kinds == (QUANTITATIVE, CATEGORICAL)
    assert point_vars["y"].kinds == (QUANTITATIVE,)
    assert {"pan", "zoom", "brush-x", "brush-y", "brush-xy", "click", "multi-click"} <= set(
        POINT_VIS.interactions
    )

    bar_vars = {v.name: v for v in BAR_VIS.variables}
    assert bar_vars["x"].kinds == (CATEGORICAL,)
    assert BAR_VIS.fds == ((("x", "color"), "y"),)
    assert set(BAR_VIS.interactions) == {"click", "multi-click", "brush-x"}

    assert LINE_VIS.fds[0][1] == "y"
    assert set(LINE_VIS.interactions) == {"click", "pan", "zoom"}


def test_attribute_kinds_cardinality_rule(executor):
    schema = schema_for(executor, "SELECT origin, hp FROM Cars")
    origin, hp = schema.attributes
    assert attribute_kinds(origin) == {CATEGORICAL}
    assert QUANTITATIVE in attribute_kinds(hp)


def test_group_by_query_maps_to_bar_chart(executor, catalog):
    schema = schema_for(executor, "SELECT origin, count(*) FROM Cars GROUP BY origin")
    candidates = candidate_visualizations(schema, catalog)
    names = [c.vis_type.name for c in candidates]
    assert "bar" in names
    bar = next(c for c in candidates if c.vis_type.name == "bar")
    assert bar.variable_for(0) == "x" and bar.variable_for(1) == "y"
    # a chart is preferred over the table for a 2-column result
    assert candidates[0].vis_type.name != "table"


def test_fd_constraint_rejects_bar_on_ungrouped_data(executor, catalog):
    schema = schema_for(executor, "SELECT origin, hp FROM Cars")
    candidates = candidate_visualizations(schema, catalog)
    assert all(c.vis_type.name != "bar" for c in candidates)


def test_scatterplot_for_two_numeric_columns(executor, catalog):
    schema = schema_for(executor, "SELECT hp, mpg FROM Cars")
    candidates = candidate_visualizations(schema, catalog)
    assert any(c.vis_type.name == "point" for c in candidates)


def test_line_chart_preferred_for_date_series(executor, catalog):
    schema = schema_for(executor, "SELECT date, price FROM sp500")
    candidates = candidate_visualizations(schema, catalog)
    assert candidates[0].vis_type.name == "line"
    assert candidates[0].variable_for(0) == "x"


def test_wide_result_prefers_table(executor, catalog):
    schema = schema_for(
        executor,
        "SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec "
        "FROM galaxy as gal, specObj as s WHERE s.bestObjID = gal.objID",
    )
    candidates = candidate_visualizations(schema, catalog)
    assert candidates[0].vis_type.name == "table"


def test_table_is_always_a_candidate(executor, catalog):
    assert candidate_visualizations(None, catalog)[0].vis_type.name == "table"
    schema = schema_for(executor, "SELECT hp FROM Cars")
    names = [c.vis_type.name for c in candidate_visualizations(schema, catalog)]
    assert "table" in names


def test_each_visual_variable_used_at_most_once(executor, catalog):
    schema = schema_for(executor, "SELECT hp, mpg, origin FROM Cars")
    for mapping in candidate_visualizations(schema, catalog):
        if mapping.vis_type.accepts_any_schema:
            continue
        variables = list(mapping.assignment.values())
        assert len(variables) == len(set(variables))
        # every non-optional variable is mapped
        required = {v.name for v in mapping.vis_type.required_variables()}
        assert required <= set(variables)


def test_primary_key_column_not_rendered(executor, catalog):
    schema = schema_for(executor, "SELECT hp, disp, id FROM Cars")
    candidates = candidate_visualizations(schema, catalog)
    point = next(c for c in candidates if c.vis_type.name == "point")
    id_index = 2
    assert point.variable_for(id_index) is None


def test_describe_and_registration(executor, catalog):
    schema = schema_for(executor, "SELECT hp, mpg FROM Cars")
    mapping = candidate_visualizations(schema, catalog)[0]
    assert "→" in mapping.describe() or mapping.vis_type.name == "table"

    custom = VisualizationType(
        name="heatmap",
        variables=(
            VisualVariable("x", (CATEGORICAL,)),
            VisualVariable("y", (CATEGORICAL,)),
        ),
        interactions=("click",),
    )
    register_visualization(custom)
    try:
        assert custom in VIS_TYPES
    finally:
        VIS_TYPES.remove(custom)
