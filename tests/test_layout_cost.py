"""Tests for the layout tree, Fitts' law model and interface cost model (§4.3, §5)."""

import pytest

from repro.cost import (
    CostModel,
    CostModelConfig,
    FITTS_A,
    FITTS_B,
    centroid_distance,
    fitts_time,
    interface_quality,
)
from repro.difftree.builder import parse_queries
from repro.mapping import (
    HORIZONTAL,
    VERTICAL,
    LayoutLeaf,
    LayoutNode,
    LayoutTree,
    build_layout_tree,
    optimize_layout,
)


# -- Fitts' law ---------------------------------------------------------------


def test_fitts_constants_match_paper():
    assert FITTS_A == 1.0 and FITTS_B == 25.0


def test_fitts_time_monotone_in_distance():
    assert fitts_time(100, 50) < fitts_time(400, 50)
    assert fitts_time(0, 50) == FITTS_A
    assert fitts_time(100, 200) <= fitts_time(100, 20)
    assert fitts_time(100, 0) > 0  # degenerate width guarded


def test_centroid_distance():
    assert centroid_distance((0, 0), (3, 4)) == pytest.approx(5.0)


# -- layout tree -----------------------------------------------------------------


def make_leaves():
    vis = LayoutLeaf("vis", object(), 300, 200, label="chart")
    w1 = LayoutLeaf("widget", object(), 150, 30, label="radio")
    w2 = LayoutLeaf("widget", object(), 150, 40, label="slider")
    return vis, w1, w2


def test_vertical_and_horizontal_boxes():
    vis, w1, w2 = make_leaves()
    node = LayoutNode([w1, w2, vis], direction=VERTICAL)
    tree = LayoutTree(node)
    width, height = tree.compute_boxes()
    assert width == 300
    assert height > 200 + 30 + 40
    node.direction = HORIZONTAL
    width_h, height_h = tree.compute_boxes()
    assert width_h > width
    assert height_h == 200


def test_build_layout_tree_structure_and_positions():
    vis, w1, w2 = make_leaves()
    tree = build_layout_tree([(vis, [w1, w2])])
    assert len(tree.leaves()) == 3
    assert tree.leaf_for(w1.ref) is w1
    assert tree.leaf_for(object()) is None
    # widgets sit in a column to the left of the chart by default
    assert w1.x < vis.x or w1.y != vis.y
    assert "view-0" in tree.describe()


def test_optimize_layout_picks_cheapest_direction():
    vis, w1, w2 = make_leaves()
    tree = build_layout_tree([(vis, [w1, w2])])

    def prefer_wide(layout: LayoutTree) -> float:
        width, height = layout.size()
        return height  # minimising height forces horizontal layouts

    optimized, cost = optimize_layout(tree, prefer_wide)
    assert cost == pytest.approx(optimized.size()[1])
    assert all(
        node.direction == HORIZONTAL for node in optimized.root.internal_nodes()
    ) or optimized.size()[1] <= 300


# -- cost model ----------------------------------------------------------------------


@pytest.fixture()
def explore_interface(catalog, executor, make_mapper):
    from repro.difftree import initial_difftrees, merge_difftrees
    from repro.transform import TransformEngine

    queries = [
        "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 "
        "AND mpg BETWEEN 27 AND 38",
        "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 "
        "AND mpg BETWEEN 16 AND 30",
    ]
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(queries))]
    )
    mapper = make_mapper(queries)
    return mapper, mapper.generate(trees), queries


def test_widget_cost_polynomial():
    model = CostModel([], CostModelConfig(a0=1.0, a1=0.1, a2=0.01))
    from repro.interface.spec import AppliedWidget
    from repro.mapping.widgets import RADIO, WidgetCandidate
    from repro.sqlparser import ast_nodes as A

    few = AppliedWidget(
        WidgetCandidate(RADIO, A.column("a"), frozenset({1}), options=[1, 2]), 0
    )
    many = AppliedWidget(
        WidgetCandidate(RADIO, A.column("a"), frozenset({1}), options=list(range(10))),
        0,
    )
    assert model.widget_manipulation_cost(few) < model.widget_manipulation_cost(many)


def test_interface_cost_breakdown(explore_interface):
    mapper, interfaces, queries = explore_interface
    best = interfaces[0]
    assert best.cost is not None
    assert best.cost.total == pytest.approx(
        best.cost.manipulation + best.cost.navigation + best.cost.layout_penalty
    )
    # the pan-based interface has low manipulation cost
    assert best.cost.manipulation < 10


def test_interactive_interface_beats_static_charts(
    explore_interface, catalog, executor
):
    mapper, interfaces, queries = explore_interface
    from repro.core import best_static_interface
    from repro.core.config import PipelineConfig

    static = best_static_interface(
        queries, catalog=catalog, config=PipelineConfig.fast()
    )
    assert interfaces[0].cost.total < static.cost.total


def test_layout_penalty_applies_above_maximum(explore_interface):
    mapper, interfaces, queries = explore_interface
    best = interfaces[0]
    asts = parse_queries(queries)
    tight = CostModel(asts, CostModelConfig(max_width=50, max_height=50))
    loose = CostModel(asts, CostModelConfig())
    assert tight.layout_penalty(best) > 0
    assert loose.layout_penalty(best) == 0


def test_incomplete_interface_heavily_penalised(explore_interface):
    mapper, interfaces, queries = explore_interface
    best = interfaces[0]
    asts = parse_queries(queries)
    model = CostModel(asts)
    stripped = type(best)(views=best.views, widgets=[], interactions=[])
    assert model.manipulation_cost(stripped) >= 50.0
    assert model.manipulation_cost(stripped, penalize_uncovered=False) < 50.0


def test_interface_quality_metric():
    assert interface_quality(10.0, 10.0) == 1.0
    assert interface_quality(20.0, 10.0) == 0.5
    assert interface_quality(0.0, 10.0) == 1.0
    assert 0.0 <= interface_quality(1e9, 10.0) <= 0.01
