"""The reward memoization subsystem: mapping-fragment memo, reward-cache
seeding, and the order-insensitive planner opt-in.

The load-bearing guarantee is *behavioural transparency*: a memoized pipeline
must produce byte-identical interfaces and rewards to a memo-disabled one,
because the memo only short-circuits deterministic derivations — it never
changes what is derived or in which order candidates are enumerated.
"""

import json

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import generate_for_workload
from repro.database import Executor, standard_catalog
from repro.difftree import initial_difftrees
from repro.mapping import (
    InterfaceMapper,
    MapperConfig,
    MappingMemo,
    SHARED_MAPPING_MEMO,
)
from repro.search import MCTSWorker, SearchConfig, SearchState
from repro.search.config import SearchStats
from repro.transform import TransformEngine
from repro.workloads import WORKLOADS


def _memo_test_config(memoize: bool, seed: int = 5) -> PipelineConfig:
    """A small-budget pipeline configuration with the memo toggled."""
    config = PipelineConfig.fast(seed=seed)
    config.search.max_iterations = 24
    config.search.early_stop = 12
    config.mapper.memoize = memoize
    return config


def _interface_signature(result) -> str:
    return json.dumps(result.interface.to_dict(), sort_keys=True, default=str)


# -- equivalence sweep ---------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_memoized_pipeline_is_byte_identical(workload):
    """Memoized and memo-disabled runs agree on interface spec and reward."""
    signatures = {}
    rewards = {}
    derivations = {}
    for memoize in (True, False):
        catalog = standard_catalog(seed=11, scale=0.12)
        result = generate_for_workload(
            WORKLOADS[workload],
            catalog=catalog,
            config=_memo_test_config(memoize),
        )
        signatures[memoize] = _interface_signature(result)
        rewards[memoize] = result.best_reward
        derivations[memoize] = result.mapper_stats.candidate_derivations
    assert signatures[True] == signatures[False]
    assert rewards[True] == rewards[False]
    # the memoized run must do strictly less derivation work
    assert derivations[True] < derivations[False]


def test_pipeline_reports_mapping_memo_stats():
    catalog = standard_catalog(seed=11, scale=0.12)
    result = generate_for_workload(
        WORKLOADS["explore"], catalog=catalog, config=_memo_test_config(True)
    )
    memo_info = result.search_stats.mapping_memo
    assert memo_info is not None
    assert memo_info["hits"] > 0
    assert result.mapper_stats.memo_hits > 0
    # the shared memo is the process-wide instance
    assert SHARED_MAPPING_MEMO.info()["hits"] >= memo_info["hits"]


# -- invalidation: a one-tree delta keeps other trees' fragments live ----------


def _two_tree_mapper(catalog, executor, memo):
    from repro.cost.model import CostModel
    from repro.difftree.builder import parse_queries

    queries = [
        "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
        "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 90",
    ]
    trees = initial_difftrees(queries)
    cost_model = CostModel(parse_queries(queries))
    mapper = InterfaceMapper(
        catalog, executor, cost_model, MapperConfig(), memo=memo
    )
    return trees, mapper


def test_one_tree_delta_recomputes_only_that_tree():
    import random

    catalog = standard_catalog(seed=7, scale=0.12)
    executor = Executor(catalog)
    memo = MappingMemo()
    trees, mapper = _two_tree_mapper(catalog, executor, memo)
    engine = TransformEngine(catalog, executor, max_applications=16)

    mapper.random_interfaces(trees, count=2, rng=random.Random(3))
    assert memo.size(catalog) > 0

    # apply one rule: some trees change, the rest are carried over unchanged
    old_fps = {t.fingerprint() for t in trees}
    new_trees = None
    for app in engine.applications(trees, random.Random(3)):
        candidate = engine.apply(app)
        if candidate is None:
            continue
        kept = [t for t in candidate if t.fingerprint() in old_fps]
        if kept and len(kept) < len(candidate):
            new_trees = candidate
            break
    assert new_trees is not None, "no partial-delta rule application found"

    # unchanged trees' fragments must still be cached under their keys …
    from repro.mapping import WIDGET_TYPES

    unchanged = [t for t in new_trees if t.fingerprint() in old_fps]
    for tree in unchanged:
        assert memo.contains(
            catalog, ("widgets", tree.mapping_key(), len(WIDGET_TYPES))
        )

    # … so re-evaluating the new state misses only on the changed trees'
    # fragments; a from-scratch mapper over the same state misses on all
    misses_before = memo.misses
    mapper.random_interfaces(new_trees, count=2, rng=random.Random(4))
    fresh_misses = memo.misses - misses_before

    scratch_memo = MappingMemo()
    _, scratch_mapper = _two_tree_mapper(catalog, executor, scratch_memo)
    scratch_mapper.random_interfaces(new_trees, count=2, rng=random.Random(4))
    assert 0 < fresh_misses < scratch_memo.misses
    assert memo.hits > 0


# -- widget-cover DP memoization ----------------------------------------------


def test_widget_cover_dp_tables_are_reused_across_generate_calls():
    """Repeated generate() over id-identical trees adopts the cached F/G
    tables (the final Algorithm-1 phase is incremental too)."""
    import json as _json

    catalog = standard_catalog(seed=7, scale=0.12)
    executor = Executor(catalog)
    memo = MappingMemo()
    trees, mapper = _two_tree_mapper(catalog, executor, memo)

    first = mapper.generate(trees)
    states_first = mapper.stats.widget_cover_states
    assert any(key[0] == "wcover" for key in memo._by_catalog[catalog])

    second = mapper.generate(trees)
    # the DP adopted the cached tables: no G state recomputed from scratch
    assert mapper.stats.widget_cover_states == states_first
    sig = lambda interfaces: [
        _json.dumps(i.to_dict(), sort_keys=True, default=str) for i in interfaces
    ]
    assert sig(first) == sig(second)

    # a memo-disabled mapper recomputes the tables but agrees byte-for-byte
    _, plain_mapper = _two_tree_mapper(catalog, executor, memo=None)
    plain_mapper.config.memoize = False
    plain_mapper.memo = None
    third = plain_mapper.generate(trees)
    assert plain_mapper.stats.widget_cover_states == states_first
    assert sig(first) == sig(third)


def test_widget_cover_memo_entry_pins_its_identity_referents():
    """Regression for the `nondeterministic-key` pragma in
    InterfaceMapper._memoize_widget_cover: the id()-based memo entry is only
    sound because the cached value strongly references the candidate lists
    and the cost model, so their ids cannot be recycled while the entry
    lives.  Pin that structural guarantee."""
    from repro.difftree import merge_difftrees

    catalog = standard_catalog(seed=7, scale=0.12)
    executor = Executor(catalog)
    memo = MappingMemo()
    trees, mapper = _two_tree_mapper(catalog, executor, memo)
    # merge the two T queries into one tree with choice nodes so the cover
    # DP has real widget candidates to key by identity
    trees = [merge_difftrees(trees[:2]), trees[2]]
    mapper.generate(trees)

    entries = [
        value
        for entry_key, value in memo._by_catalog[catalog].items()
        if entry_key[0] == "wcover"
    ]
    assert entries, "generate() stored no widget-cover entry"
    for wcand, cost_model, f_tables, g_tables in entries:
        assert cost_model is mapper.cost_model
        cand_ids = {
            id(cand)
            for cands in wcand.values()
            for _t_idx, cand in cands
        }
        # every id() embedded in the entry's key resolves to an object the
        # entry itself keeps alive
        assert isinstance(f_tables, dict) and isinstance(g_tables, dict)
        assert cand_ids, "entry pinned no candidates"


# -- reward-cache seeding on adopt ---------------------------------------------


QUERIES = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
]


def test_adopt_seeds_reward_cache():
    catalog = standard_catalog(seed=7, scale=0.12)
    executor = Executor(catalog)
    engine = TransformEngine(catalog, executor, max_applications=16)
    calls = []

    def counting_reward(state):
        calls.append(state.trees_fingerprint())
        return -float(state.num_choice_nodes())

    config = SearchConfig(max_iterations=4, early_stop=100, workers=1, seed=2)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, counting_reward, config
    )
    # a state broadcast by another worker, unseen by this one
    other = SearchState(initial_difftrees(["SELECT a, count(*) FROM T GROUP BY a"]))
    assert other.trees_fingerprint() not in worker._reward_cache

    worker.adopt(other, reward=123.0)
    assert worker.stats.rewards_seeded == 1
    assert worker.best_reward == 123.0

    before = len(calls)
    # a subsequent expansion of the same fingerprint must hit, not re-evaluate
    assert worker._evaluate(other) == 123.0
    assert len(calls) == before
    assert worker.stats.reward_cache_hits >= 1


def test_terminal_twin_shares_reward_entry():
    catalog = standard_catalog(seed=7, scale=0.12)
    executor = Executor(catalog)
    engine = TransformEngine(catalog, executor, max_applications=16)
    calls = []

    def counting_reward(state):
        calls.append(state.fingerprint())
        return -1.0

    config = SearchConfig(max_iterations=4, workers=1, seed=2)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, counting_reward, config
    )
    state = SearchState(initial_difftrees(["SELECT a, count(*) FROM T GROUP BY a"]))
    worker._evaluate(state)
    evaluated = len(calls)
    worker._evaluate(state.as_terminal())  # same trees, terminal marker only
    assert len(calls) == evaluated


def test_adopted_seed_does_not_count_as_evaluation():
    catalog = standard_catalog(seed=7, scale=0.12)
    executor = Executor(catalog)
    engine = TransformEngine(catalog, executor, max_applications=16)
    config = SearchConfig(max_iterations=4, workers=1, seed=2)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, lambda s: -1.0, config
    )
    evaluated = worker.stats.states_evaluated
    other = SearchState(initial_difftrees(["SELECT a, count(*) FROM T GROUP BY a"]))
    worker.adopt(other, reward=5.0)
    assert worker.stats.states_evaluated == evaluated
    assert worker.stats.rewards_seeded == 1


# -- order-insensitive reordering opt-in ---------------------------------------


#: the larger table first in FROM order, so the greedy smallest-input-first
#: pass genuinely changes the join order once the opt-in unlocks it
JOIN_SQL = (
    "SELECT T.p, flights.delay FROM flights, T "
    "WHERE flights.hour = T.a AND flights.delay > 3"
)


def test_order_insensitive_extends_reordering_past_orderby_gate():
    catalog = standard_catalog(seed=7, scale=0.12)
    strict = Executor(catalog)
    relaxed = Executor(catalog, order_insensitive=True, stats=strict.stats)

    reordered_before = strict.stats.joins_reordered
    strict_result = strict.execute_sql(JOIN_SQL)
    assert strict.stats.joins_reordered == reordered_before  # ORDER-BY gated

    relaxed_result = relaxed.execute_sql(JOIN_SQL)
    assert relaxed.stats.joins_reordered > reordered_before

    # identical multiset of rows, identical schema — only row order may differ
    assert [c.name for c in strict_result.columns] == [
        c.name for c in relaxed_result.columns
    ]
    assert sorted(map(repr, strict_result.rows)) == sorted(
        map(repr, relaxed_result.rows)
    )


def test_order_insensitive_keeps_limit_queries_gated():
    catalog = standard_catalog(seed=7, scale=0.12)
    relaxed = Executor(catalog, order_insensitive=True)
    strict = Executor(catalog)
    sql = JOIN_SQL + " LIMIT 5"
    before = relaxed.stats.joins_reordered
    relaxed_result = relaxed.execute_sql(sql)
    assert relaxed.stats.joins_reordered == before  # LIMIT blocks the opt-in
    assert relaxed_result.rows == strict.execute_sql(sql).rows


def test_from_subqueries_keep_order_under_outer_limit():
    """A FROM subquery executes as its own statement without a LIMIT of its
    own, but the *outer* LIMIT makes its row order observable as a row-set
    difference — nested statements must always plan with FROM order fixed."""
    catalog = standard_catalog(seed=7, scale=0.12)
    relaxed = Executor(catalog, order_insensitive=True)
    strict = Executor(catalog)
    sql = f"SELECT p, delay FROM ({JOIN_SQL}) sub LIMIT 5"
    assert relaxed.execute_sql(sql).rows == strict.execute_sql(sql).rows


def test_scalar_subqueries_keep_from_order_under_order_insensitive():
    """A scalar subquery's value is its first row: nested statements must not
    reorder even when the executor is order-insensitive."""
    catalog = standard_catalog(seed=7, scale=0.12)
    relaxed = Executor(catalog, order_insensitive=True)
    strict = Executor(catalog)
    # the inner join would reorder at top level (larger table first); as a
    # scalar subquery its first row is observable, so it must keep FROM order
    sql = (
        "SELECT p FROM T WHERE a = "
        "(SELECT T.a FROM flights, T WHERE flights.hour = T.a)"
    )
    assert relaxed.execute_sql(sql).rows == strict.execute_sql(sql).rows
