"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("explore", "filter", "covid", "sales", "sdss"):
        assert name in out


def test_show_workload(capsys):
    assert main(["show", "--workload", "explore"]) == 0
    out = capsys.readouterr().out
    assert "Q1:" in out and "Cars" in out


def test_show_unknown_workload_errors():
    with pytest.raises(KeyError):
        main(["show", "--workload", "does-not-exist"])


def test_generate_requires_queries():
    with pytest.raises(SystemExit):
        main(["generate"])


def test_generate_from_inline_queries(tmp_path, capsys):
    html = tmp_path / "iface.html"
    json_path = tmp_path / "iface.json"
    code = main(
        [
            "generate",
            "--query",
            "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 60",
            "--query",
            "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 60 AND 90",
            "--scale",
            "0.12",
            "--taxonomy",
            "--html",
            str(html),
            "--json",
            str(json_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Interface with" in out
    assert "explore" in out  # taxonomy report printed
    assert html.exists() and html.read_text().startswith("<!DOCTYPE html>")
    payload = json.loads(json_path.read_text())
    assert payload["views"]


def test_generate_from_queries_file(tmp_path, capsys):
    queries_file = tmp_path / "queries.sql"
    queries_file.write_text(
        "-- comment line\n"
        "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p\n"
        "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p\n"
    )
    code = main(
        ["generate", "--queries-file", str(queries_file), "--scale", "0.12"]
    )
    assert code == 0
    assert "Interface with" in capsys.readouterr().out


def test_generate_from_workload(capsys):
    code = main(["generate", "--workload", "explore", "--scale", "0.12"])
    assert code == 0
    out = capsys.readouterr().out
    assert "view 0" in out
    # the search summary surfaces the executor's columnar coverage: the
    # explore workload must run fully vectorized, with zero fallbacks
    assert "columnar: executions=" in out
    assert "fallbacks=0" in out


def test_generate_summary_names_fallback_reason(capsys):
    """A workload with correlated subqueries reports the routing reason."""
    code = main(["generate", "--workload", "sales", "--scale", "0.12"])
    assert code == 0
    out = capsys.readouterr().out
    assert "plan-gated=" in out
    assert "correlated subquery in HAVING" in out


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["generate", "--workload", "explore"])
    assert args.command == "generate" and args.workload == "explore"
    args = parser.parse_args(["list-workloads"])
    assert args.command == "list-workloads"
