"""Tests for the interface spec, headless runtime, exporter, PI1 baseline and
taxonomy classifier."""

import json

import pytest

from repro.baselines import pi1_generate
from repro.difftree import initial_difftrees, merge_difftrees
from repro.difftree.builder import parse_queries
from repro.interface import InterfaceRuntime, export_html, interface_to_html, interface_to_json
from repro.interface.spec import AppliedWidget
from repro.taxonomy import classify_interface
from repro.transform import TransformEngine

EXPLORE = [
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 "
    "AND mpg BETWEEN 27 AND 38",
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 "
    "AND mpg BETWEEN 16 AND 30",
]

SECTION2 = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
    "SELECT a, count(*) FROM T GROUP BY a",
]


@pytest.fixture()
def explore_setup(catalog, executor, make_mapper):
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(EXPLORE))]
    )
    mapper = make_mapper(EXPLORE)
    interface = mapper.best_interface(trees)
    return interface, InterfaceRuntime(interface, executor)


@pytest.fixture()
def section2_setup(catalog, executor, make_mapper):
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(SECTION2))]
    )
    mapper = make_mapper(SECTION2)
    interface = mapper.best_interface(trees)
    return interface, InterfaceRuntime(interface, executor)


# -- interface spec ------------------------------------------------------------


def test_interface_describe_and_to_dict(explore_setup):
    interface, _ = explore_setup
    text = interface.describe()
    assert "view 0" in text and "cost" in text
    payload = interface.to_dict()
    assert payload["views"] and "cost" in payload
    assert interface.size()[0] > 0


def test_interface_mapping_lookup(section2_setup):
    interface, _ = section2_setup
    for node_id in interface.choice_node_ids():
        assert interface.mapping_for(node_id) is not None
    assert interface.mapping_for(10**9) is None


# -- runtime -----------------------------------------------------------------------


def test_initial_refresh_executes_all_views(explore_setup):
    _, runtime = explore_setup
    for state in runtime.view_states:
        assert state.error is None
        assert state.result is not None
        assert state.sql.startswith("SELECT")


def test_replay_every_input_query(explore_setup, section2_setup):
    for interface, runtime in (explore_setup, section2_setup):
        total = len({q.fingerprint() for v in interface.views for q in v.tree.queries})
        for index in range(total):
            assert runtime.replay_query(index), f"query {index} not reproduced"


def test_pan_interaction_updates_predicates(explore_setup, executor):
    interface, runtime = explore_setup
    pans = [i for i in interface.interactions if i.candidate.interaction in ("pan", "zoom")]
    if not pans:
        pytest.skip("interface did not use pan/zoom")
    affected = runtime.trigger_interaction(pans[0], ((100, 150), (15, 25)))
    assert affected == [0]
    sql = runtime.view_states[0].sql
    assert "BETWEEN 100 AND 150" in sql
    assert "BETWEEN 15 AND 25" in sql
    assert runtime.view_states[0].error is None
    assert runtime.event_log[-1].kind == "interaction"


def test_widget_event_changes_projection(section2_setup):
    interface, runtime = section2_setup
    widgets = [
        w
        for w in interface.widgets
        if w.candidate.widget.enumerates_options and len(w.candidate.options) >= 2
    ]
    if not widgets:
        pytest.skip("no enumerating widget in the generated interface")
    widget = widgets[0]
    before = runtime.view_states[widget.view_index].sql
    runtime.set_widget(widget, 1)
    after = runtime.view_states[widget.view_index].sql
    assert before != after or len(widget.candidate.options) == 1


def test_snapshot_round_trips_to_json(explore_setup):
    _, runtime = explore_setup
    snapshot = runtime.snapshot()
    assert json.dumps(snapshot)
    assert snapshot["views"][0]["rows"] >= 0


# -- export -------------------------------------------------------------------------


def test_html_export_contains_views_and_widgets(tmp_path, section2_setup):
    interface, runtime = section2_setup
    html_text = interface_to_html(interface, runtime, title="Section 2 demo")
    assert "<svg" in html_text or "table" in html_text
    assert "Section 2 demo" in html_text
    path = export_html(interface, str(tmp_path / "iface.html"), runtime)
    assert (tmp_path / "iface.html").exists()
    assert path.endswith("iface.html")


def test_json_export_is_valid_json(explore_setup):
    interface, runtime = explore_setup
    payload = json.loads(interface_to_json(interface, runtime))
    assert "views" in payload and "runtime" in payload


# -- PI1 baseline ---------------------------------------------------------------------


def test_pi1_produces_flat_widget_set(catalog):
    result = pi1_generate(SECTION2, catalog=catalog)
    assert result.widgets
    assert not result.supports_visualizations
    assert not result.supports_layout
    assert result.tree.expresses_all()
    assert "PI1" in result.describe()


def test_pi1_manipulation_cost_positive(catalog):
    result = pi1_generate(SECTION2, catalog=catalog)
    asts = parse_queries(SECTION2)
    assert result.manipulation_cost(asts) > 0


def test_pi2_offers_interactions_pi1_cannot(catalog, executor, make_mapper):
    """The Figure-1 comparison: PI2 supports visualization interactions."""
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(EXPLORE))]
    )
    pi2 = make_mapper(EXPLORE).best_interface(trees)
    pi1 = pi1_generate(EXPLORE, catalog=catalog)
    assert pi2.interaction_kinds()          # PI2: pan / zoom / brush
    assert not pi1.supports_visualizations  # PI1: widgets only


# -- taxonomy ----------------------------------------------------------------------------


def test_taxonomy_classification_explore(explore_setup):
    interface, _ = explore_setup
    report = classify_interface(interface)
    assert report.covers("select", "explore")
    assert "explore" in report.describe()


def test_taxonomy_filter_category_from_widgets(section2_setup):
    interface, _ = section2_setup
    report = classify_interface(interface)
    assert "select" in report.categories
    assert report.evidence
