"""Unit tests for database types, tables, statistics, functions and catalog."""

import pytest

from repro.database import (
    CATEGORICAL_CARDINALITY_THRESHOLD,
    Catalog,
    CatalogError,
    Column,
    DataType,
    Table,
    compute_column_statistics,
    function_return_type,
    infer_value_type,
    is_aggregate,
    looks_like_date,
    unify_all,
    unify_types,
)
from repro.database.functions import SCALAR_FUNCTIONS, TODAY, FunctionError
from repro.database.table import ResultColumn, ResultTable


# -- types -------------------------------------------------------------------


def test_infer_value_type():
    assert infer_value_type(1) is DataType.INT
    assert infer_value_type(1.5) is DataType.FLOAT
    assert infer_value_type(True) is DataType.BOOL
    assert infer_value_type("abc") is DataType.STR
    assert infer_value_type("2020-01-31") is DataType.DATE
    assert infer_value_type(None) is DataType.NULL


def test_looks_like_date_rejects_malformed():
    assert looks_like_date("2020-01-31")
    assert not looks_like_date("2020/01/31")
    assert not looks_like_date("20200131")
    assert not looks_like_date("2020-1-3")


def test_unify_types_lattice():
    assert unify_types(DataType.INT, DataType.FLOAT) is DataType.FLOAT
    assert unify_types(DataType.INT, DataType.INT) is DataType.INT
    assert unify_types(DataType.STR, DataType.DATE) is DataType.STR
    assert unify_types(DataType.INT, DataType.STR) is DataType.ANY
    assert unify_types(DataType.NULL, DataType.INT) is DataType.INT
    assert unify_all([DataType.INT, DataType.FLOAT, DataType.INT]) is DataType.FLOAT


# -- tables -------------------------------------------------------------------


def make_table():
    t = Table("t", [Column("a", DataType.INT), Column("b", DataType.STR)])
    t.insert_many([(1, "x"), (2, "y"), (2, "z")])
    return t


def test_table_insert_and_access():
    t = make_table()
    assert len(t) == 3
    assert t.column_names() == ["a", "b"]
    assert t.values("a") == [1, 2, 2]
    assert t.column("b").dtype is DataType.STR


def test_table_rejects_wrong_width():
    t = make_table()
    with pytest.raises(ValueError):
        t.insert((1,))


def test_table_rejects_duplicate_columns():
    with pytest.raises(ValueError):
        Table("bad", [Column("a", DataType.INT), Column("a", DataType.INT)])


def test_table_from_dicts_infers_types():
    t = Table.from_dicts("d", [{"a": 1, "b": "x"}, {"a": 2.5, "b": "y"}])
    assert t.column("a").dtype is DataType.FLOAT
    assert t.column("b").dtype is DataType.STR


def test_result_table_helpers():
    rt = ResultTable(
        [ResultColumn("a", DataType.INT), ResultColumn("b", DataType.STR)],
        [(1, "x"), (2, "x")],
    )
    assert rt.column_names() == ["a", "b"]
    assert rt.values("b") == ["x", "x"]
    assert rt.distinct_count("b") == 1
    assert rt.to_dicts()[0] == {"a": 1, "b": "x"}
    assert len(rt.head(1)) == 1
    with pytest.raises(KeyError):
        rt.column_index("missing")


# -- statistics ------------------------------------------------------------------


def test_column_statistics_basic():
    t = make_table()
    stats = compute_column_statistics(t, "a")
    assert stats.row_count == 3
    assert stats.distinct_count == 2
    assert stats.domain() == (1, 2)
    assert stats.is_categorical_candidate
    assert not stats.is_unique


def test_column_statistics_unique_detection():
    t = Table("u", [Column("id", DataType.INT)])
    t.insert_many([(i,) for i in range(10)])
    stats = compute_column_statistics(t, "id")
    assert stats.is_unique
    assert stats.distinct_count == 10


def test_categorical_threshold_matches_paper():
    assert CATEGORICAL_CARDINALITY_THRESHOLD == 20


# -- functions ------------------------------------------------------------------


def test_scalar_date_arithmetic():
    date = SCALAR_FUNCTIONS["date"]
    assert date("2021-06-30", "-30 days") == "2021-05-31"
    assert date("2021-06-30", "+1 month") == "2021-07-28"
    assert date("2021-06-30", "-1 year") == "2020-06-28"


def test_today_is_deterministic():
    assert SCALAR_FUNCTIONS["today"]() == TODAY.isoformat()


def test_invalid_date_modifier_raises():
    with pytest.raises(FunctionError):
        SCALAR_FUNCTIONS["date"]("2021-06-30", "-3 fortnights")


def test_function_return_types():
    assert function_return_type("count") is DataType.INT
    assert function_return_type("avg") is DataType.FLOAT
    assert function_return_type("date") is DataType.DATE
    assert function_return_type("unknown_fn") is DataType.ANY


def test_is_aggregate():
    assert is_aggregate("sum") and is_aggregate("count distinct")
    assert not is_aggregate("date")


# -- catalog ---------------------------------------------------------------------


def test_catalog_lookup_and_statistics(catalog):
    assert catalog.has_table("Cars") and catalog.has_table("cars")
    table = catalog.table("cars")
    assert table.name == "Cars"
    lo, hi = catalog.domain("Cars.hp")
    assert lo < hi
    assert catalog.cardinality("Cars.origin") == 3
    assert catalog.is_unique("Cars.id")
    assert not catalog.is_unique("Cars.origin")


def test_catalog_attribute_resolution(catalog):
    assert catalog.qualified_name("hp") == "Cars.hp"
    assert catalog.qualified_name("Cars.hp") == "Cars.hp"
    assert catalog.attribute_type("mpg") is DataType.FLOAT
    assert catalog.qualified_name("nonexistent_column") is None
    # alias qualifiers fall back to a bare search restricted to scope
    assert catalog.qualified_name("s.ra", ["specObj"]) == "specObj.ra"


def test_catalog_unknown_table_raises(catalog):
    with pytest.raises(CatalogError):
        catalog.table("not_a_table")


def test_catalog_scoped_resolution(catalog):
    # "z" exists in both galaxy and specObj; scope disambiguates deterministically
    resolved = catalog.resolve_attribute("z", ["galaxy"])
    assert resolved[0] == "galaxy"


def test_empty_catalog():
    cat = Catalog()
    assert cat.table_names() == []
    assert cat.qualified_name("x") is None
