"""Unit tests for the generic AST node structure."""

from repro.sqlparser import ast_nodes as A
from repro.sqlparser.ast_nodes import L, Node
from repro.sqlparser.parser import parse


def test_equality_is_structural():
    a = A.binop("=", A.column("a"), A.literal_num(1))
    b = A.binop("=", A.column("a"), A.literal_num(1))
    c = A.binop("=", A.column("a"), A.literal_num(2))
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


def test_copy_is_deep():
    original = parse("SELECT a FROM t WHERE a = 1")
    clone = original.copy()
    assert clone == original
    clone.children[0].children[0].children[0].value = "zzz"
    assert clone != original


def test_signature_and_fingerprint():
    a = A.binop(">", A.column("a"), A.literal_num(1))
    assert a.signature() == (L.BINOP, ">")
    assert "binop" in a.fingerprint()
    assert a.fingerprint() == a.copy().fingerprint()


def test_walk_is_preorder_and_complete():
    ast = parse("SELECT a, b FROM t WHERE a = 1")
    nodes = list(ast.walk())
    assert nodes[0] is ast
    assert len(nodes) == ast.size()


def test_walk_with_parent_links():
    ast = parse("SELECT a FROM t")
    pairs = list(ast.walk_with_parent())
    assert pairs[0] == (ast, None)
    for node, parent in pairs[1:]:
        assert node in parent.children


def test_find_helpers():
    ast = parse("SELECT a, b FROM t WHERE a = 1 AND b = 2")
    columns = ast.find_label(L.COLUMN)
    assert {c.value for c in columns} == {"a", "b"}
    first_literal = ast.find_first(lambda n: n.label == L.LITERAL_NUM)
    assert first_literal.value == 1


def test_replace_child_by_identity():
    parent = A.and_(A.literal_bool(True), A.literal_bool(False))
    target = parent.children[1]
    parent.replace_child(target, A.literal_bool(True))
    assert parent.children[1].value is True


def test_depth_and_size():
    leaf = A.literal_num(1)
    assert leaf.depth() == 1 and leaf.size() == 1
    tree = A.and_(A.binop("=", A.column("a"), A.literal_num(1)))
    assert tree.depth() == 3
    assert tree.size() == 4


def test_contains_choice_false_for_plain_ast():
    ast = parse("SELECT a FROM t")
    assert not ast.contains_choice()


def test_constructor_helpers_build_expected_labels():
    assert A.select_item(A.column("a"), "x").children[1].label == L.ALIAS
    assert A.table_ref(A.table_name("t"), "s").children[1].value == "s"
    assert A.in_list(A.column("a"), [A.literal_num(1)]).label == L.IN_LIST
    assert A.is_null(A.column("a"), negated=True).value == "NOT"
    assert A.func("SUM", [A.column("x")]).value == "sum"
    assert A.empty().label == L.EMPTY


def test_pretty_output_contains_labels():
    ast = parse("SELECT a FROM t")
    text = ast.pretty()
    assert "select_stmt" in text and "column='a'" in text


def test_node_repr_does_not_crash():
    assert "Node(" in repr(Node(L.COLUMN, "a"))
