"""Fault injection and supervision: the service survives, bytes unchanged.

Every test drives the *real* service stack — pool, process protocol, shared
memory, persistence — under a deterministic fault plan (:mod:`repro.faults`)
and asserts two things:

1. **recovery**: the request completes despite killed / hung workers,
   dropped or duplicated sync messages, corrupted cache bundles and
   vanished shared-memory segments, and :class:`repro.service.RequestStats`
   reports what happened (retries, replaced workers, degradation rung);
2. **byte identity**: the interface produced under faults is exactly the
   one a fault-free run produces — rewards are pure functions of
   (seed, state), so supervision (worker replacement, task replay, the
   degradation ladder down to the serial backend) can change cost, never
   trajectories.

Faults that must fire exactly once across every process and retry carry a
``once=<token file>`` clause; without it a respawned worker replaying the
task would re-fire the fault and recovery could never converge.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import faults
from repro.core.config import PipelineConfig
from repro.core.pipeline import generate_interface
from repro.database import standard_catalog
from repro.difftree.builder import parse_queries
from repro.faults import FaultPlan, WorkerFailure, backoff_delays
from repro.search.backends import BACKEND_ENV_VAR
from repro.service import CacheStore, GenerationService, persistence_key

QUERIES = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
]


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Pin the backend choice and guarantee no fault plan leaks out."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    faults.install_local(None)
    yield
    faults.reset()


def _config(seed: int = 5, **search) -> PipelineConfig:
    config = PipelineConfig.fast(seed=seed)
    config.search.max_iterations = 24
    config.search.early_stop = 12
    config.search.workers = 2
    config.search.backend = "process"
    config.search.shared_rewards = True
    # short enough that injected hangs resolve in seconds, long enough that
    # a loaded CI box never trips it on healthy rounds
    config.search.round_deadline_seconds = 30.0
    for key, value in search.items():
        setattr(config.search, key, value)
    return config


def _catalog():
    return standard_catalog(seed=11, scale=0.12)


def _signature(result) -> tuple:
    return (
        json.dumps(result.interface.to_dict(), sort_keys=True, default=str),
        result.best_reward,
        result.state.fingerprint(),
    )


@pytest.fixture(scope="module")
def baseline_signature():
    """The fault-free answer, computed once on the serial backend (which by
    the repo's cross-backend invariant is byte-identical to process runs)."""
    config = _config()
    config.search.backend = "serial"
    result = generate_interface(QUERIES, catalog=_catalog(), config=config)
    return _signature(result)


def _pooled_run(fault_spec, *, warm: bool, config=None, catalog=None):
    """One pooled request under ``fault_spec``; optionally warm the pool
    with a clean request first (the per-task spec reaches live workers)."""
    config = config or _config()
    catalog = catalog if catalog is not None else _catalog()
    with GenerationService(catalog=catalog, config=config) as service:
        if warm:
            service.generate(QUERIES)
        if fault_spec is not None:
            faults.install(fault_spec)
        try:
            result = service.generate(QUERIES)
        finally:
            faults.reset()
        return result, service.requests[-1]


# -- the fault matrix: recovery + byte identity --------------------------------


@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
def test_killed_worker_is_replaced_and_task_replayed(
    tmp_path, warm, baseline_signature
):
    token = tmp_path / "kill.tok"
    result, stats = _pooled_run(
        f"kill-worker-before-sync:worker=1:once={token}", warm=warm
    )
    assert _signature(result) == baseline_signature
    assert stats.workers_replaced >= 1
    assert stats.retries >= 1
    assert stats.degraded is None  # the pool itself recovered
    assert stats.pool == ("warm" if warm else "cold")
    assert token.exists()  # the fault really fired


def test_hung_worker_trips_round_deadline_and_is_replaced(
    tmp_path, baseline_signature
):
    token = tmp_path / "hang.tok"
    config = _config(round_deadline_seconds=2.0)
    result, stats = _pooled_run(
        f"hang-in-reward-eval:worker=1:seconds=30:once={token}",
        warm=False,
        config=config,
    )
    assert _signature(result) == baseline_signature
    # the sleeper is alive but silent: hang detection must replace it
    assert stats.workers_replaced >= 1
    assert stats.retries >= 1


@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
def test_dropped_sync_message_is_retried_without_replacement(
    tmp_path, warm, baseline_signature
):
    token = tmp_path / "drop.tok"
    config = _config(round_deadline_seconds=2.0)
    result, stats = _pooled_run(
        f"drop-sync-message:worker=0:once={token}", warm=warm, config=config
    )
    assert _signature(result) == baseline_signature
    assert stats.retries >= 1
    # the worker is healthy (it only lost one message): abort + drain must
    # reclaim it without respawning
    assert stats.workers_replaced == 0


def test_duplicated_sync_message_is_discarded_by_sequence_number(
    baseline_signature,
):
    result, stats = _pooled_run("duplicate-sync-message:worker=0", warm=False)
    assert _signature(result) == baseline_signature
    # duplicates are dropped by seq comparison: no failure, no recovery
    assert stats.retries == 0
    assert stats.workers_replaced == 0
    assert stats.degraded is None


def test_unlinked_shm_segment_degrades_to_fresh_pool(baseline_signature):
    result, stats = _pooled_run("unlink-shm-segment", warm=False)
    assert _signature(result) == baseline_signature
    assert stats.degraded == "fresh-pool"


def test_unrecoverable_pool_walks_ladder_down_to_serial(baseline_signature):
    # every worker dies on every attempt and the retry budget is zero: the
    # warm rung fails, the fresh pool fails, the serial rung must answer
    config = _config(task_retries=0)
    result, stats = _pooled_run(
        "kill-worker-before-sync:count=9999", warm=False, config=config
    )
    assert _signature(result) == baseline_signature
    assert stats.degraded == "serial"
    assert stats.backend == "serial"


def test_expired_request_deadline_skips_to_serial(baseline_signature):
    config = _config(request_deadline_seconds=1e-6)
    result, stats = _pooled_run(None, warm=False, config=config)
    assert _signature(result) == baseline_signature
    assert stats.deadline_exceeded
    assert stats.degraded == "serial"


def test_corrupted_cache_bundle_is_rejected_and_run_falls_back_cold(
    tmp_path, baseline_signature
):
    cache_dir = tmp_path / "cache"
    config = _config()
    config.search.backend = "serial"
    config.cache_dir = str(cache_dir)
    catalog = _catalog()

    faults.install("corrupt-persisted-cache")
    try:
        first = generate_interface(QUERIES, catalog=catalog, config=config)
    finally:
        faults.reset()
    # the fault corrupts only the *persisted* payload, never the answer
    assert _signature(first) == baseline_signature

    # the header digest no longer matches the bit-flipped payload: the
    # validator must reject the bundle before unpickling a byte of it
    key = persistence_key(catalog, parse_queries(QUERIES), config)
    store = CacheStore(str(cache_dir))
    assert store.load(key) is None
    assert store.load_rejects == 1

    # and the next run must quietly fall back to a cold — identical — run
    second = generate_interface(QUERIES, catalog=catalog, config=config)
    assert _signature(second) == baseline_signature
    assert second.search_stats.reward_table_loaded == 0


# -- the harness itself --------------------------------------------------------


def test_fault_plan_parses_grammar_and_windows():
    plan = FaultPlan(
        "kill-worker-before-sync:worker=1:hit=2:count=2;"
        "hang-in-reward-eval:seconds=1.5"
    )
    kill, hang = plan.specs
    assert (kill.worker, kill.hit, kill.count) == (1, 2, 2)
    assert hang.seconds == 1.5 and hang.worker is None

    # worker filter: only worker 1 advances the kill counter
    assert plan.fire("kill-worker-before-sync", worker=0) is None
    # hit window [2, 4): first call misses, second and third fire, fourth not
    assert plan.fire("kill-worker-before-sync", worker=1) is None
    assert plan.fire("kill-worker-before-sync", worker=1) is not None
    assert plan.fire("kill-worker-before-sync", worker=1) is not None
    assert plan.fire("kill-worker-before-sync", worker=1) is None
    # any-worker site fires on its first hit
    assert plan.fire("hang-in-reward-eval", worker=3) is not None

    with pytest.raises(ValueError):
        FaultPlan("kill-worker-before-sync:bogus=1")


def test_once_token_admits_exactly_one_claimant(tmp_path):
    token = tmp_path / "once.tok"
    plan_a = FaultPlan(f"drop-sync-message:count=99:once={token}")
    plan_b = FaultPlan(f"drop-sync-message:count=99:once={token}")
    assert plan_a.fire("drop-sync-message") is not None
    # the same plan, a retry in another plan object, or another process
    # (simulated here) must all lose the claim
    assert plan_a.fire("drop-sync-message") is None
    assert plan_b.fire("drop-sync-message") is None


def test_fire_is_inert_without_an_installed_plan():
    faults.install_local(None)
    assert faults.fire("kill-worker-before-sync") is None
    faults.maybe_kill("kill-worker-before-sync")  # must not exit
    faults.maybe_hang("hang-in-reward-eval")  # must not sleep


def test_install_propagates_spec_through_environment_and_tasks():
    faults.install("drop-sync-message:worker=1")
    try:
        assert os.environ[faults.FAULTS_ENV_VAR] == "drop-sync-message:worker=1"
        assert faults.current_spec() == "drop-sync-message:worker=1"
    finally:
        faults.reset()
    assert faults.current_spec() is None
    assert faults.FAULTS_ENV_VAR not in os.environ


def test_backoff_delays_are_jittered_exponential_and_deterministic():
    delays = backoff_delays(4, 0.1, seed=42)
    assert delays == backoff_delays(4, 0.1, seed=42)
    assert delays != backoff_delays(4, 0.1, seed=43)
    assert len(delays) == 4
    for i, delay in enumerate(delays):
        # jitter keeps each delay within [0.5, 1.5) x base * 2^i
        assert 0.05 * 2**i <= delay < 0.15 * 2**i
    assert backoff_delays(0, 0.1, seed=42) == []


def test_worker_failure_carries_its_diagnosis():
    failure = WorkerFailure(2, "hung", "no reply within the round deadline")
    assert failure.worker == 2 and failure.kind == "hung"
    assert "worker 2 hung" in str(failure)
    assert isinstance(failure, RuntimeError)  # pre-supervision catch-alls
