"""The persistent generation service: pool, shared memory, persistence.

The headline guarantee under test: a generation request produces the *same
interface bytes* no matter which service layer answered it — a cold one-shot
process run, a warm pooled request, or a fresh process resuming from a
persisted cache bundle.  Rewards are pure functions of (seed, state), so
every reuse layer changes only cost, never trajectories; the sweep below
pins that over all workload logs.

Alongside the sweep: shared-memory catalogue round-trips (values *and*
Python types byte-exact, nulls included), segment lifecycle (owner unlinks,
attachers never do), cache-file validation (tampered / truncated /
version-bumped / mis-keyed bundles are rejected before unpickling and the
run falls back cold), and the ``REPRO_MP_START`` override contract.
"""

from __future__ import annotations

import json
import math
import pickle

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import generate_for_workload
from repro.database import standard_catalog
from repro.database.catalog import Catalog
from repro.database.plancache import SHARED_PLAN_CACHE
from repro.database.table import Table
from repro.database.types import Column, DataType
from repro.difftree.builder import parse_queries
from repro.mapping.memo import MappingMemo
from repro.search.backends import BACKEND_ENV_VAR
from repro.search.backends.process import MP_START_ENV_VAR, _mp_context
from repro.service import (
    CACHE_VERSION,
    CacheStore,
    GenerationService,
    SharedCatalogRegistry,
    WorkerPool,
    catalog_fingerprint,
    persistence_key,
    workload_fingerprint,
)
from repro.workloads import WORKLOADS

QUERIES = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
]


@pytest.fixture(autouse=True)
def _pin_backend_choice(monkeypatch):
    """These tests compare *specific* service modes; the CI sweep that
    re-runs the suite under ``REPRO_SEARCH_BACKEND=process`` must not
    override the backends they explicitly request."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)


def _service_config(backend: str, seed: int = 5) -> PipelineConfig:
    config = PipelineConfig.fast(seed=seed)
    config.search.max_iterations = 24
    config.search.early_stop = 12
    config.search.backend = backend
    config.search.shared_rewards = True
    return config


def _fresh_catalog() -> Catalog:
    return standard_catalog(seed=11, scale=0.12)


def _signature(result) -> tuple:
    return (
        json.dumps(result.interface.to_dict(), sort_keys=True, default=str),
        result.best_reward,
        result.state.fingerprint(),
    )


# -- determinism across service modes ------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_cold_warm_and_persisted_runs_byte_identical(workload, tmp_path):
    """Cold one-shot vs warm pool vs persisted-cache reload: same bytes."""
    # cold one-shot: fresh processes, no cache directory, no pool
    cold = generate_for_workload(
        WORKLOADS[workload], catalog=_fresh_catalog(), config=_service_config("process")
    )

    # warm pool: one service, two requests over live workers
    with GenerationService(
        _fresh_catalog(), config=_service_config("process")
    ) as service:
        pooled_first = service.generate_workload(workload)
        pooled_second = service.generate_workload(workload)
        assert service.requests[0].pool == "cold"
        assert service.requests[1].pool == "warm"
    warm_stats = pooled_second.search_stats

    # the warm request skips spawn, warm-up and previously explored states
    assert warm_stats.pool == "warm"
    assert warm_stats.warmup_seconds == 0.0
    assert warm_stats.reward_table_loaded > 0
    assert warm_stats.reward_table_hits > 0

    # persisted reload: run 1 writes the bundle, a fresh run 2 resumes from it
    cache_dir = str(tmp_path / "cache")
    persisted_first = generate_for_workload(
        WORKLOADS[workload],
        catalog=_fresh_catalog(),
        config=_service_config("serial").replace(cache_dir=cache_dir),
    )
    persisted_second = generate_for_workload(
        WORKLOADS[workload],
        catalog=_fresh_catalog(),
        config=_service_config("serial").replace(cache_dir=cache_dir),
    )
    assert persisted_first.search_stats.reward_table_loaded == 0
    assert persisted_second.search_stats.reward_table_loaded > 0
    assert (
        persisted_second.search_stats.states_evaluated
        < persisted_first.search_stats.states_evaluated
        or persisted_second.search_stats.reward_table_hits > 0
    )

    signatures = {
        "cold": _signature(cold),
        "pool-first": _signature(pooled_first),
        "pool-warm": _signature(pooled_second),
        "persist-first": _signature(persisted_first),
        "persist-reload": _signature(persisted_second),
    }
    assert len(set(signatures.values())) == 1, signatures


def test_service_in_process_backend_reuses_reward_table():
    """Without a process pool the service still carries the reward table
    across requests for the same (catalogue, workload, config) key."""
    with GenerationService(_fresh_catalog(), config=_service_config("serial")) as svc:
        first = svc.generate(QUERIES)
        second = svc.generate(QUERIES)
    assert svc.requests[0].pool == "cold"
    assert svc.requests[1].pool == "warm"
    assert svc.requests[1].reward_table_loaded > 0
    assert second.search_stats.reward_table_hits > 0
    assert _signature(first) == _signature(second)


def test_service_rejects_requests_after_close():
    service = GenerationService(_fresh_catalog(), config=_service_config("serial"))
    service.close()
    with pytest.raises(RuntimeError, match="closed"):
        service.generate(QUERIES)


# -- cache-file validation -----------------------------------------------------


def _bundle_path(cache_dir):
    files = sorted(cache_dir.glob("*.pi2cache"))
    assert len(files) == 1, files
    return files[0]


def test_tampered_cache_payload_is_rejected_and_run_falls_back_cold(tmp_path):
    cache_dir = tmp_path / "cache"
    config = _service_config("serial").replace(cache_dir=str(cache_dir))
    baseline = generate_for_workload(
        WORKLOADS["filter"], catalog=_fresh_catalog(), config=config
    )
    path = _bundle_path(cache_dir)

    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip one payload byte; the header's sha256 now lies
    path.write_bytes(bytes(blob))

    catalog = _fresh_catalog()
    key = persistence_key(catalog, parse_queries(WORKLOADS["filter"].queries), config)
    store = CacheStore(str(cache_dir))
    assert store.load(key) is None
    assert store.load_rejects == 1

    rerun = generate_for_workload(WORKLOADS["filter"], catalog=catalog, config=config)
    assert rerun.search_stats.reward_table_loaded == 0  # cold fallback
    assert _signature(rerun) == _signature(baseline)


def test_version_mismatched_cache_is_rejected(tmp_path):
    cache_dir = tmp_path / "cache"
    config = _service_config("serial").replace(cache_dir=str(cache_dir))
    generate_for_workload(WORKLOADS["filter"], catalog=_fresh_catalog(), config=config)
    path = _bundle_path(cache_dir)

    # rewrite the header as a future version; payload digest stays valid, so
    # the rejection is the version check alone
    magic = b"PI2CACHE\x00"
    blob = path.read_bytes()
    assert blob.startswith(magic)
    header_end = blob.index(b"\n", len(magic))
    header = json.loads(blob[len(magic):header_end])
    header["version"] = CACHE_VERSION + 1
    path.write_bytes(
        magic
        + json.dumps(header, sort_keys=True).encode("ascii")
        + b"\n"
        + blob[header_end + 1:]
    )

    catalog = _fresh_catalog()
    key = persistence_key(catalog, parse_queries(WORKLOADS["filter"].queries), config)
    assert CacheStore(str(cache_dir)).load(key) is None

    rerun = generate_for_workload(WORKLOADS["filter"], catalog=catalog, config=config)
    assert rerun.search_stats.reward_table_loaded == 0


def test_cache_store_validation_matrix(tmp_path):
    store = CacheStore(str(tmp_path))
    key = "k" * 64
    rewards = {"fp-a": 1.5, "fp-b": -2.0}
    path = store.save(key, rewards=rewards)
    assert path is not None and path.exists()

    bundle = store.load(key)
    assert bundle is not None and bundle.rewards == rewards
    assert store.loads == 1

    # unknown key: no file
    assert store.load("m" * 64) is None

    # a bundle saved under one key must not validate under another, even if
    # someone renames the file onto the other key's path
    other = "n" * 64
    path.rename(store.path_for(other))
    assert store.load(other) is None

    # truncation and garbage
    store.save(key, rewards=rewards)
    target = store.path_for(key)
    blob = target.read_bytes()
    target.write_bytes(blob[: len(blob) // 2])
    assert store.load(key) is None
    target.write_bytes(b"not a cache file at all")
    assert store.load(key) is None
    assert store.load_rejects == 3

    # payloads that unpickle to the wrong shape are rejected after digest
    # checks (defense in depth against a semantically corrupt bundle)
    payload = pickle.dumps({"rewards": {"fp": "not-a-number"}, "plans": [], "memo": []})
    header = json.dumps(
        {
            "version": CACHE_VERSION,
            "key": key,
            "payload_sha256": __import__("hashlib").sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
        },
        sort_keys=True,
    ).encode("ascii")
    target.write_bytes(b"PI2CACHE\x00" + header + b"\n" + payload)
    assert store.load(key) is None


def test_persistence_key_separates_catalog_workload_and_config():
    catalog = _fresh_catalog()
    asts = parse_queries(QUERIES)
    config = _service_config("serial")
    base = persistence_key(catalog, asts, config)

    assert persistence_key(_fresh_catalog(), asts, config) == base  # content-keyed
    assert persistence_key(catalog, parse_queries(QUERIES[:1]), config) != base
    assert persistence_key(catalog, asts, _service_config("serial", seed=6)) != base

    # search-schedule knobs are reward-irrelevant and must not split the key
    rescheduled = _service_config("serial")
    rescheduled.search.workers = 7
    rescheduled.search.max_iterations = 999
    assert persistence_key(catalog, asts, rescheduled) == base

    other = standard_catalog(seed=12, scale=0.12)
    assert persistence_key(other, asts, config) != base


def test_workload_fingerprint_is_order_sensitive():
    asts = parse_queries(QUERIES)
    assert workload_fingerprint(asts) != workload_fingerprint(list(reversed(asts)))


# -- export / import of the plan cache and mapping memo ------------------------


def test_plan_cache_export_import_roundtrip():
    catalog = _fresh_catalog()
    generate_for_workload(
        WORKLOADS["filter"], catalog=catalog, config=_service_config("serial")
    )
    entries = SHARED_PLAN_CACHE.export_entries(catalog)
    assert entries

    twin = _fresh_catalog()
    assert SHARED_PLAN_CACHE.export_entries(twin) == []
    assert SHARED_PLAN_CACHE.import_entries(twin, entries) == len(entries)
    assert [key for key, _ in SHARED_PLAN_CACHE.export_entries(twin)] == [
        key for key, _ in entries
    ]
    # existing entries win over re-imports
    assert SHARED_PLAN_CACHE.import_entries(twin, entries) == 0


def test_mapping_memo_import_drops_non_persistable_kinds():
    memo = MappingMemo()
    catalog = _fresh_catalog()
    good = (("schema", "fp-1"), {"cols": ["a"]})
    smuggled = (("wcover", "anything"), {"oops": True})
    not_a_tuple = ("plain-string-key", {"oops": True})
    assert memo.import_entries(catalog, [good, smuggled, not_a_tuple]) == 1
    exported = memo.export_entries(catalog)
    assert exported == [good]


# -- shared-memory catalogue registry ------------------------------------------


def _values_equal(left: list, right: list) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if isinstance(a, float) and isinstance(b, float):
            if math.isnan(a) and math.isnan(b):
                continue
        if a != b or type(a) is not type(b):
            return False
    return True


def _tricky_catalog() -> Catalog:
    table = Table.from_columns(
        "tricky",
        [
            Column("i", DataType.INT),
            Column("f", DataType.FLOAT),
            Column("b", DataType.BOOL),
            Column("s", DataType.STR),
            Column("mixed", DataType.ANY),
            Column("bigint", DataType.ANY),
            Column("allnull", DataType.ANY),
        ],
        [
            [1, -7, None, 2**62],
            [1.5, float("nan"), float("inf"), None],
            [True, None, False, True],
            ["plain", "", "unicode: héllo ✓", None],
            [1, "two", 3.0, None],  # mixed types force the pickle fallback
            [2**70, 0, 1, 2],  # beyond int64 forces the pickle fallback
            [None, None, None, None],
        ],
    )
    return Catalog([table])


def test_shared_memory_roundtrip_preserves_values_and_types():
    catalog = _tricky_catalog()
    with SharedCatalogRegistry() as registry:
        manifest = registry.register(catalog)
        kinds = {
            m.kind
            for t in manifest.tables
            for m in t.column_manifests
        }
        assert {"i8", "f8", "b1", "str", "pkl"} <= kinds
        attached = SharedCatalogRegistry.attach(manifest)

    (table,) = catalog.tables()
    (copy,) = attached.tables()
    assert copy.name == table.name
    assert [c.name for c in copy.columns] == [c.name for c in table.columns]
    for index in range(len(table.columns)):
        assert _values_equal(copy.column_data(index), table.column_data(index)), (
            table.columns[index].name
        )
    assert catalog_fingerprint(attached) == catalog_fingerprint(catalog)


def test_shared_memory_roundtrip_on_standard_catalog():
    catalog = _fresh_catalog()
    with SharedCatalogRegistry() as registry:
        attached = SharedCatalogRegistry.attach(registry.register(catalog))
    assert catalog_fingerprint(attached) == catalog_fingerprint(catalog)


def test_registry_owns_segment_lifecycle():
    registry = SharedCatalogRegistry()
    catalog = _fresh_catalog()
    manifest = registry.register(catalog)
    # idempotent per content: the twin maps to the same segment
    assert registry.register(_fresh_catalog()) is manifest
    assert len(registry) == 1

    # attachers close their mapping but never unlink: a second attach works
    SharedCatalogRegistry.attach(manifest)
    SharedCatalogRegistry.attach(manifest)

    registry.close()
    registry.close()  # idempotent
    with pytest.raises(FileNotFoundError):
        SharedCatalogRegistry.attach(manifest)


# -- worker pool ---------------------------------------------------------------


def test_worker_pool_survives_repeated_tasks_and_close_is_idempotent():
    pool = WorkerPool(_fresh_catalog(), workers=2)
    try:
        assert not pool.warm
        assert pool.spawn_seconds > 0.0
    finally:
        pool.close()
        pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.run_task({}, None, None)


# -- REPRO_MP_START validation -------------------------------------------------


def test_mp_start_override_rejects_unknown_method(monkeypatch):
    monkeypatch.setenv(MP_START_ENV_VAR, "frok")
    with pytest.raises(ValueError) as excinfo:
        _mp_context()
    message = str(excinfo.value)
    assert "frok" in message
    assert "allowed start methods" in message
    assert "spawn" in message  # every platform supports spawn


def test_mp_start_override_accepts_valid_method(monkeypatch):
    monkeypatch.setenv(MP_START_ENV_VAR, "  SPAWN  ")  # normalized
    assert _mp_context().get_start_method() == "spawn"
    monkeypatch.delenv(MP_START_ENV_VAR)
    assert _mp_context().get_start_method() in {"fork", "spawn"}
