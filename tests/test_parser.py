"""Unit tests for the SQL parser."""

import pytest

from repro.sqlparser import L, ParseError, parse, parse_many, to_sql
from repro.workloads import WORKLOADS


def clause_labels(ast):
    return [c.label for c in ast.children]


def test_basic_select_structure():
    ast = parse("SELECT a, b FROM t")
    assert ast.label == L.SELECT_STMT
    assert clause_labels(ast) == [L.SELECT_CLAUSE, L.FROM_CLAUSE]
    assert len(ast.children[0].children) == 2


def test_select_distinct_flag():
    ast = parse("SELECT DISTINCT a FROM t")
    assert ast.children[0].value == "DISTINCT"


def test_select_star():
    ast = parse("SELECT * FROM t")
    item = ast.children[0].children[0]
    assert item.children[0].label == L.STAR


def test_aliases_with_and_without_as():
    ast = parse("SELECT a AS x, b y FROM t")
    items = ast.children[0].children
    assert items[0].children[1].value == "x"
    assert items[1].children[1].value == "y"


def test_where_is_wrapped_in_conjunction():
    ast = parse("SELECT a FROM t WHERE a = 1")
    where = ast.children[2]
    assert where.label == L.WHERE_CLAUSE
    assert where.children[0].label == L.AND
    assert len(where.children[0].children) == 1


def test_multi_predicate_where_stays_flat():
    ast = parse("SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3")
    conj = ast.children[2].children[0]
    assert conj.label == L.AND
    assert len(conj.children) == 3


def test_btwn_shorthand_equals_between():
    a = parse("SELECT a FROM t WHERE a BTWN 1 & 5")
    b = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
    assert a == b


def test_between_structure():
    ast = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
    predicate = ast.children[2].children[0].children[0]
    assert predicate.label == L.BETWEEN
    assert [c.label for c in predicate.children] == [
        L.COLUMN,
        L.LITERAL_NUM,
        L.LITERAL_NUM,
    ]


def test_in_list_and_in_subquery():
    ast = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
    pred = ast.children[2].children[0].children[0]
    assert pred.label == L.IN_LIST
    assert len(pred.children) == 4

    ast = parse("SELECT a FROM t WHERE a IN (SELECT a FROM s)")
    pred = ast.children[2].children[0].children[0]
    assert pred.label == L.IN_QUERY
    assert pred.children[1].label == L.SUBQUERY


def test_not_in_wraps_not():
    ast = parse("SELECT a FROM t WHERE a NOT IN (1, 2)")
    pred = ast.children[2].children[0].children[0]
    assert pred.label == L.NOT
    assert pred.children[0].label == L.IN_LIST


def test_boolean_select_item_with_alias():
    ast = parse("SELECT id in (1, 2) as color FROM Cars")
    item = ast.children[0].children[0]
    assert item.children[0].label == L.IN_LIST
    assert item.children[1].value == "color"


def test_comma_join_and_aliases():
    ast = parse("SELECT a FROM galaxy as gal, specObj as s")
    from_clause = ast.children[1]
    assert len(from_clause.children) == 2
    assert from_clause.children[0].children[1].value == "gal"


def test_explicit_join_on():
    ast = parse("SELECT a FROM t JOIN s ON t.id = s.id")
    join = ast.children[1].children[0]
    assert join.label == L.JOIN
    assert join.children[2].label == L.JOIN_ON


def test_subquery_in_from():
    ast = parse("SELECT t FROM (SELECT sum(total) as t FROM sales) sub")
    ref = ast.children[1].children[0]
    assert ref.children[0].label == L.SUBQUERY
    assert ref.children[1].value == "sub"


def test_group_by_having_with_scalar_subquery():
    ast = parse(
        "SELECT city, sum(total) FROM sales GROUP BY city "
        "HAVING sum(total) >= (SELECT max(t) FROM s)"
    )
    labels = clause_labels(ast)
    assert L.GROUPBY_CLAUSE in labels and L.HAVING_CLAUSE in labels
    having = ast.children[labels.index(L.HAVING_CLAUSE)]
    comparison = having.children[0].children[0]
    assert comparison.label == L.BINOP
    assert comparison.children[1].label == L.SUBQUERY


def test_order_by_and_limit_offset():
    ast = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
    labels = clause_labels(ast)
    orderby = ast.children[labels.index(L.ORDERBY_CLAUSE)]
    assert orderby.children[0].value == "DESC"
    assert orderby.children[1].value == "ASC"
    limit = ast.children[labels.index(L.LIMIT_CLAUSE)]
    assert len(limit.children) == 2


def test_function_calls_nested():
    ast = parse("SELECT a FROM t WHERE date > date(today(), '-30 days')")
    pred = ast.children[2].children[0].children[0]
    func = pred.children[1]
    assert func.label == L.FUNC and func.value == "date"
    assert func.children[0].label == L.FUNC and func.children[0].value == "today"


def test_count_star_and_count_distinct():
    ast = parse("SELECT count(*), count(DISTINCT a) FROM t")
    items = ast.children[0].children
    assert items[0].children[0].value == "count"
    assert items[0].children[0].children[0].label == L.STAR
    assert items[1].children[0].value == "count distinct"


def test_arithmetic_precedence():
    ast = parse("SELECT a + b * 2 FROM t")
    expr = ast.children[0].children[0].children[0]
    assert expr.value == "+"
    assert expr.children[1].value == "*"


def test_unary_minus_folds_into_literal():
    ast = parse("SELECT a FROM t WHERE dec BETWEEN -0.9 AND -0.2")
    pred = ast.children[2].children[0].children[0]
    assert pred.children[1].value == pytest.approx(-0.9)


def test_case_expression():
    ast = parse("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
    case = ast.children[0].children[0].children[0]
    assert case.label == L.CASE
    assert case.children[0].label == L.WHEN


def test_is_null_and_is_not_null():
    ast = parse("SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
    conj = ast.children[2].children[0]
    assert conj.children[0].label == L.IS_NULL
    assert conj.children[1].value == "NOT"


def test_parse_error_on_garbage():
    with pytest.raises(ParseError):
        parse("SELECT FROM WHERE")


def test_parse_error_on_trailing_tokens():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t extra_tokens here ,")


def test_parse_many_preserves_order():
    asts = parse_many(["SELECT a FROM t", "SELECT b FROM t"])
    assert len(asts) == 2
    assert asts[0].children[0].children[0].children[0].value == "a"


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_all_workload_queries_parse_and_roundtrip(workload):
    """Every paper query parses, renders to SQL, and re-parses to the same AST."""
    for sql in WORKLOADS[workload].queries:
        ast = parse(sql)
        rendered = to_sql(ast)
        assert parse(rendered) == ast
