"""The search-execution backend subsystem.

The load-bearing guarantee: every backend runs the same synchronization
protocol over workers that share no mutable search state during a round, so
serial, thread and process backends produce byte-identical interfaces from
the same configuration — the process backend merely pays (and reports) a
per-process cache warm-up and runs its workers on real OS processes.
"""

import json
import os

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import PipelineWorkerSpec, generate_for_workload
from repro.database import standard_catalog
from repro.difftree import initial_difftrees
from repro.search import (
    ParallelCoordinator,
    RewardTable,
    SearchConfig,
    SearchState,
    get_backend,
    parallel_search,
)
from repro.search.backends import BACKEND_ENV_VAR, dump_state, load_state, resolve_backend_name
from repro.transform import TransformEngine
from repro.workloads import WORKLOADS

QUERIES = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
]


@pytest.fixture(autouse=True)
def _pin_backend_choice(monkeypatch):
    """These tests compare *specific* backends; the CI sweep that re-runs the
    whole suite under ``REPRO_SEARCH_BACKEND=process`` must not override the
    backends they explicitly request."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)


def _backend_config(backend: str, shared_rewards: bool = True, seed: int = 5):
    config = PipelineConfig.fast(seed=seed)
    config.search.max_iterations = 24
    config.search.early_stop = 12
    config.search.backend = backend
    config.search.shared_rewards = shared_rewards
    return config


def _interface_signature(result) -> str:
    return json.dumps(result.interface.to_dict(), sort_keys=True, default=str)


def simple_reward(state: SearchState) -> float:
    return -(2.0 * state.num_trees() + state.num_choice_nodes())


# -- backend equivalence -------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_serial_and_thread_backends_byte_identical(workload):
    """Serial and thread backends agree bit-for-bit on every workload."""
    signatures = {}
    for backend in ("serial", "thread"):
        catalog = standard_catalog(seed=11, scale=0.12)
        result = generate_for_workload(
            WORKLOADS[workload], catalog=catalog, config=_backend_config(backend)
        )
        assert result.search_stats.backend == backend
        signatures[backend] = (
            _interface_signature(result),
            result.best_reward,
            result.state.fingerprint(),
        )
    assert signatures["serial"] == signatures["thread"]


def test_process_backend_matches_serial_without_shared_rewards():
    """With the reward table disabled, process workers retrace serial ones."""
    signatures = {}
    for backend in ("serial", "process"):
        catalog = standard_catalog(seed=11, scale=0.12)
        result = generate_for_workload(
            WORKLOADS["explore"],
            catalog=catalog,
            config=_backend_config(backend, shared_rewards=False),
        )
        assert result.search_stats.backend == backend
        assert result.search_stats.reward_table_hits == 0
        signatures[backend] = (
            _interface_signature(result),
            result.best_reward,
            result.state.fingerprint(),
        )
    assert signatures["serial"] == signatures["process"]


def test_process_backend_determinism_pinned():
    """Re-pinned determinism: same seed + worker count ⇒ same interface,
    shared reward table and all."""
    signatures = []
    for _ in range(2):
        catalog = standard_catalog(seed=11, scale=0.12)
        result = generate_for_workload(
            WORKLOADS["filter"], catalog=catalog, config=_backend_config("process")
        )
        assert result.search_stats.backend == "process"
        signatures.append(
            (
                _interface_signature(result),
                result.best_reward,
                result.state.fingerprint(),
                result.search_stats.states_evaluated,
                result.search_stats.reward_table_hits,
            )
        )
    assert signatures[0] == signatures[1]


def test_shared_rewards_reduce_evaluations():
    """The reward table answers states other workers already evaluated."""
    stats = {}
    for shared in (True, False):
        catalog = standard_catalog(seed=11, scale=0.12)
        config = _backend_config("serial", shared_rewards=shared)
        config.search.workers = 3
        config.search.early_stop = 10_000  # equal iteration budgets
        result = generate_for_workload(
            WORKLOADS["filter"], catalog=catalog, config=config
        )
        stats[shared] = result.search_stats
    assert stats[True].reward_table_hits > 0
    assert stats[False].reward_table_hits == 0
    assert stats[True].states_evaluated < stats[False].states_evaluated
    assert stats[True].reward_table is not None
    # the table holds one entry per *distinct* fingerprint: workers that
    # evaluate the same state in the same round merge to a single reward
    table_rewards = stats[True].reward_table["rewards"]
    assert 0 < table_rewards <= stats[True].states_evaluated


def test_process_backend_reports_warmup_and_sync_rounds():
    catalog = standard_catalog(seed=11, scale=0.12)
    result = generate_for_workload(
        WORKLOADS["explore"], catalog=catalog, config=_backend_config("process")
    )
    stats = result.search_stats
    assert stats.backend == "process"
    assert stats.sync_rounds >= 1
    assert stats.warmup_seconds > 0  # per-process catalogue + cache rebuild
    # the aggregate cache snapshots come from the worker processes (the
    # coordinator's own executor never ran a reward query); compiled plans
    # prove the worker rebuilt and warmed its own cache — hit counts depend
    # on workload shape and on what a forked child inherited, so don't pin
    assert stats.plan_cache is not None and stats.plan_cache["plans"] > 0


# -- backend plumbing ----------------------------------------------------------


def test_resolve_backend_name_env_override(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
    assert resolve_backend_name("serial", has_process_spec=False) == "thread"
    monkeypatch.delenv(BACKEND_ENV_VAR)
    assert resolve_backend_name("thread", has_process_spec=False) == "thread"
    assert resolve_backend_name(None, has_process_spec=False) == "serial"
    # a process request without a picklable spec falls back to serial
    assert resolve_backend_name("process", has_process_spec=False) == "serial"
    assert resolve_backend_name("process", has_process_spec=True) == "process"
    with pytest.raises(ValueError):
        resolve_backend_name("quantum", has_process_spec=False)


def test_process_backend_without_spec_falls_back_to_serial(catalog, executor):
    """Closure-driven searches cannot cross a process boundary."""
    engine = TransformEngine(catalog, executor, max_applications=16)
    config = SearchConfig(
        max_iterations=8, early_stop=8, workers=2, sync_interval=4, seed=3,
        backend="process",
    )
    result = parallel_search(initial_difftrees(QUERIES), engine, simple_reward, config)
    assert result.stats.backend == "serial"


def test_coordinator_exposes_workers_for_local_backends(catalog, executor):
    engine = TransformEngine(catalog, executor, max_applications=16)
    config = SearchConfig(
        max_iterations=8, early_stop=8, workers=2, sync_interval=4, seed=3,
        backend="thread",
    )
    coordinator = ParallelCoordinator(
        initial_difftrees(QUERIES), engine, simple_reward, config
    )
    result = coordinator.run()
    assert len(coordinator.workers) == 2
    assert max(w.best_reward for w in coordinator.workers) == result.best_reward


def test_reward_table_merge_first_writer_wins():
    table = RewardTable()
    accepted = table.merge({"a": 1.0, "b": 2.0})
    assert accepted == {"a": 1.0, "b": 2.0}
    accepted = table.merge({"a": 9.0, "c": 3.0})
    assert accepted == {"c": 3.0}  # "a" keeps the first writer's reward
    hit, reward = table.get("a")
    assert hit and reward == 1.0
    hit, _ = table.get("missing")
    assert not hit
    assert table.size() == 3
    info = table.info()
    assert info["rewards"] == 3 and info["hits"] == 1 and info["misses"] == 1


def test_state_serialization_round_trip():
    trees = initial_difftrees(QUERIES)
    state = SearchState(trees, terminal=True)
    clone = load_state(dump_state(state))
    assert clone.terminal
    assert clone.fingerprint() == state.fingerprint()
    assert [t.fingerprint() for t in clone.trees] == [
        t.fingerprint() for t in state.trees
    ]


def test_pipeline_worker_spec_round_trip():
    import pickle

    from repro.difftree.builder import parse_queries

    catalog = standard_catalog(seed=11, scale=0.12)
    config = _backend_config("process")
    spec = PipelineWorkerSpec(
        catalog=catalog,
        query_asts=parse_queries(list(WORKLOADS["explore"].queries)),
        config=config,
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.setup is None  # the built context never crosses the wire
    engine, reward_fn = clone.build(0, config.search)
    trees = initial_difftrees(list(WORKLOADS["explore"].queries))
    reward = reward_fn(SearchState(trees))
    assert reward != float("inf")
    plan_info, memo_info = clone.cache_info()
    assert plan_info is not None


def test_get_backend_rejects_unknown_names():
    with pytest.raises(ValueError):
        get_backend("carrier-pigeon")
