"""Tests for the paper workload definitions and workload generators."""

import pytest

from repro.sqlparser import parse
from repro.workloads import (
    WORKLOADS,
    get_workload,
    random_range_queries,
    scale_workload,
    workload_names,
)


def test_seven_paper_workloads_present():
    assert set(workload_names()) == {
        "explore",
        "abstract",
        "connect",
        "filter",
        "sdss",
        "covid",
        "sales",
    }


def test_workload_sizes_match_paper_listings():
    assert len(WORKLOADS["explore"].queries) == 2
    assert len(WORKLOADS["abstract"].queries) == 3
    assert len(WORKLOADS["connect"].queries) == 3
    assert len(WORKLOADS["filter"].queries) == 9
    assert len(WORKLOADS["covid"].queries) == 8
    assert len(WORKLOADS["sales"].queries) == 6
    assert len(WORKLOADS["sdss"].queries) == 5


def test_get_workload_errors_on_unknown_name():
    assert get_workload("filter").name == "filter"
    with pytest.raises(KeyError):
        get_workload("nope")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_every_workload_query_parses_and_executes(name, executor):
    for sql in WORKLOADS[name].queries:
        ast = parse(sql)
        result = executor.execute(ast)
        assert result.columns, f"{name}: query produced no columns"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_queries_return_rows(name, executor):
    """Non-empty results are needed for the interaction safety check.

    The shared test catalogue is heavily down-scaled, so highly selective
    queries (narrow SDSS sky regions) may legitimately select nothing; we only
    require that at least half of each log returns data.
    """
    non_empty = 0
    for sql in WORKLOADS[name].queries:
        if len(executor.execute(parse(sql))) > 0:
            non_empty += 1
    assert non_empty >= max(1, len(WORKLOADS[name].queries) // 2)


def test_scale_workload_duplicates_and_perturbs():
    scaled = scale_workload(WORKLOADS["filter"], 45, seed=3)
    assert len(scaled.queries) == 45
    assert scaled.queries[:9] == WORKLOADS["filter"].queries
    # queries with literals get perturbed after the first repetition
    # (query index 10 repeats the original index-1 query, which has literals)
    assert scaled.queries[10] != WORKLOADS["filter"].queries[1]
    for sql in scaled.queries:
        parse(sql)


def test_scale_workload_without_perturbation():
    scaled = scale_workload(WORKLOADS["explore"], 6, perturb=False)
    assert scaled.queries == WORKLOADS["explore"].queries * 3


def test_random_range_queries_are_well_formed(executor):
    queries = random_range_queries("Cars", "hp", 5, 50, 200, seed=1)
    assert len(queries) == 5
    for sql in queries:
        result = executor.execute(parse(sql))
        assert result.column_names() == ["hp"]
