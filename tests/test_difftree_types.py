"""Tests for the PI2 type hierarchy (AST → str → num plus attribute types)."""

from repro.database.types import DataType
from repro.difftree.types import PiType, union_types


def test_primitive_hierarchy_compatibility():
    num, str_, ast = PiType.num(), PiType.str_(), PiType.ast()
    assert num.compatible_with(str_)
    assert num.compatible_with(ast)
    assert str_.compatible_with(ast)
    assert not str_.compatible_with(num)
    assert not ast.compatible_with(num)
    assert num.compatible_with(num)


def test_attribute_type_specialises_primitive():
    hp = PiType.attr("Cars.hp", DataType.INT)
    assert hp.is_attribute and hp.is_numeric
    assert hp.compatible_with(PiType.num())
    assert hp.compatible_with(PiType.str_())
    assert not PiType.num().compatible_with(hp)


def test_distinct_attribute_types_incompatible():
    hp = PiType.attr("Cars.hp", DataType.INT)
    mpg = PiType.attr("Cars.mpg", DataType.FLOAT)
    assert not hp.compatible_with(mpg)
    assert hp.compatible_with(hp)


def test_union_is_least_common_ancestor():
    num, str_ = PiType.num(), PiType.str_()
    assert num.union(num) == num
    assert num.union(str_) == str_
    assert str_.union(num) == str_
    assert num.union(PiType.ast()) == PiType.ast()


def test_union_of_attributes():
    a = PiType.attr("T.a", DataType.INT)
    b = PiType.attr("T.b", DataType.INT)
    assert a.union(a) == a
    assert a.union(b) == PiType.num()
    assert a.union(PiType.num()) == PiType.num()
    s = PiType.attr("Cars.origin", DataType.STR)
    assert a.union(s) == PiType.str_()


def test_union_types_helper():
    assert union_types([]) == PiType.ast()
    assert union_types([PiType.num(), PiType.num()]) == PiType.num()
    assert union_types([PiType.num(), PiType.str_(), PiType.num()]) == PiType.str_()


def test_from_data_type():
    assert PiType.from_data_type(DataType.INT) == PiType.num()
    assert PiType.from_data_type(DataType.DATE) == PiType.str_()
    assert PiType.from_data_type(DataType.ANY) == PiType.ast()


def test_str_rendering():
    assert str(PiType.num()) == "num"
    assert str(PiType.attr("T.a", DataType.INT)) == "T.a"
