"""Property-based tests (hypothesis) for the core data structures and invariants.

Invariants checked:

* SQL rendering round-trips through the parser for randomly generated queries.
* Difftree resolution / matching are inverse operations: any AST produced by
  resolving a Difftree under random bindings is matched by that Difftree, and
  replaying the derivation reproduces the AST exactly.
* The PI2 type union is commutative, associative and idempotent, and
  compatibility is transitive along the primitive chain.
* The executor's WHERE clause semantics: filtering never invents rows and is
  monotone when predicates are relaxed.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.database import DataType
from repro.difftree import match_query, resolve_with_derivation
from repro.difftree.nodes import AnyNode, MultiNode, SubsetNode, ValNode, make_opt
from repro.difftree.resolve import FlatBindingSource, resolve
from repro.difftree.types import PiType, union_types
from repro.sqlparser import ast_nodes as A
from repro.sqlparser import parse, to_sql
from repro.sqlparser.ast_nodes import L, Node

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_IDENTIFIERS = ("a", "b", "p", "hp", "mpg", "origin", "total")
_TABLES = ("T", "Cars", "sales")

literals = st.one_of(
    st.integers(min_value=-100, max_value=1000).map(A.literal_num),
    st.floats(
        min_value=-100, max_value=1000, allow_nan=False, allow_infinity=False
    ).map(lambda v: A.literal_num(round(v, 3))),
    st.sampled_from(["USA", "Japan", "x y", "it's"]).map(A.literal_str),
)

columns = st.sampled_from(_IDENTIFIERS).map(A.column)


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(["binop", "between", "in_list"]))
    column = draw(columns)
    if kind == "binop":
        op = draw(st.sampled_from(["=", ">", "<", ">=", "<=", "<>"]))
        return A.binop(op, column, draw(literals))
    if kind == "between":
        lo = draw(st.integers(min_value=0, max_value=50))
        hi = draw(st.integers(min_value=50, max_value=100))
        return A.between(column, A.literal_num(lo), A.literal_num(hi))
    values = draw(st.lists(literals, min_size=1, max_size=3))
    return A.in_list(column, values)


@st.composite
def select_statements(draw):
    n_items = draw(st.integers(min_value=1, max_value=3))
    items = [A.select_item(draw(columns)) for _ in range(n_items)]
    clauses = [A.select_clause(items, distinct=draw(st.booleans()))]
    clauses.append(A.from_clause([A.table_ref(A.table_name(draw(st.sampled_from(_TABLES))))]))
    if draw(st.booleans()):
        preds = draw(st.lists(predicates(), min_size=1, max_size=3))
        clauses.append(A.where_clause(A.and_(*preds)))
    if draw(st.booleans()):
        clauses.append(A.groupby_clause([draw(columns)]))
    return A.select_stmt(*clauses)


@st.composite
def difftrees_over_predicates(draw):
    """A small Difftree over a WHERE conjunction using every choice-node kind."""
    elements = []
    n = draw(st.integers(min_value=1, max_value=3))
    for _ in range(n):
        kind = draw(st.sampled_from(["plain", "any", "val", "opt"]))
        if kind == "plain":
            elements.append(draw(predicates()))
        elif kind == "any":
            alts = draw(st.lists(predicates(), min_size=2, max_size=3))
            elements.append(AnyNode(alts))
        elif kind == "val":
            column = draw(columns)
            observed = draw(st.lists(
                st.integers(min_value=0, max_value=50).map(A.literal_num),
                min_size=1, max_size=3,
            ))
            elements.append(
                A.binop("=", column, ValNode(observed, pitype=PiType.num()))
            )
        else:
            elements.append(make_opt(draw(predicates())))
    structure = draw(st.sampled_from(["and", "subset", "multi"]))
    if structure == "and":
        return Node(L.AND, None, elements)
    if structure == "subset":
        plain = [e for e in elements if not isinstance(e, AnyNode)]
        if not plain:
            plain = [draw(predicates())]
        return Node(L.AND, None, [SubsetNode(plain, sep=" AND ")])
    template = AnyNode(draw(st.lists(predicates(), min_size=1, max_size=2)))
    return Node(L.AND, None, [MultiNode([template], sep=" AND ")])


@st.composite
def random_bindings(draw, tree):
    """Random parameters for every choice node of a Difftree."""
    params = {}
    for node in tree.walk():
        if isinstance(node, ValNode):
            params[node.node_id] = draw(st.integers(min_value=0, max_value=99))
        elif isinstance(node, MultiNode):
            params[node.node_id] = draw(st.integers(min_value=1, max_value=3))
        elif isinstance(node, SubsetNode):
            k = len(node.children)
            indices = draw(
                st.lists(
                    st.integers(min_value=0, max_value=k - 1),
                    min_size=0,
                    max_size=k,
                    unique=True,
                )
            )
            params[node.node_id] = tuple(sorted(indices))
        elif isinstance(node, AnyNode):
            non_empty = [
                i for i, c in enumerate(node.children) if c.label != L.EMPTY
            ]
            choices = non_empty + (
                [i for i, c in enumerate(node.children) if c.label == L.EMPTY]
            )
            params[node.node_id] = draw(st.sampled_from(choices))
    return params


# ---------------------------------------------------------------------------
# parser / renderer
# ---------------------------------------------------------------------------


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(select_statements())
def test_render_parse_roundtrip(ast):
    """Rendering an AST and parsing it back yields an equivalent AST."""
    sql = to_sql(ast)
    assert parse(sql) == ast


@settings(max_examples=60, deadline=None)
@given(select_statements())
def test_fingerprint_is_stable_under_copy(ast):
    assert ast.copy().fingerprint() == ast.fingerprint()
    assert ast.copy() == ast


# ---------------------------------------------------------------------------
# Difftree resolution / matching inverse property
# ---------------------------------------------------------------------------


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(st.data())
def test_resolve_then_match_roundtrip(data):
    tree = data.draw(difftrees_over_predicates())
    params = data.draw(random_bindings(tree))
    try:
        concrete = resolve(tree, FlatBindingSource(params))
    except Exception:
        # an empty SUBSET inside a single-element AND can produce an empty
        # conjunction, which is not a resolvable AST — skip those draws
        return
    if any(len(n.children) == 0 and n.label == L.AND for n in concrete.walk()):
        return
    derivation = match_query(tree, concrete)
    assert derivation is not None, (
        f"tree cannot express its own resolution: {to_sql(concrete)}"
    )
    replayed = resolve_with_derivation(tree, derivation)
    assert replayed == concrete


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_match_never_accepts_foreign_structure(data):
    tree = data.draw(difftrees_over_predicates())
    foreign = Node(L.OR, None, [A.binop("=", A.column("zz"), A.literal_num(1))])
    assert match_query(tree, foreign) is None


# ---------------------------------------------------------------------------
# type system algebra
# ---------------------------------------------------------------------------

pitypes = st.one_of(
    st.just(PiType.ast()),
    st.just(PiType.str_()),
    st.just(PiType.num()),
    st.sampled_from(["T.a", "T.b", "Cars.hp"]).map(
        lambda q: PiType.attr(q, DataType.INT)
    ),
    st.sampled_from(["Cars.origin", "sales.city"]).map(
        lambda q: PiType.attr(q, DataType.STR)
    ),
)


@settings(max_examples=100, deadline=None)
@given(pitypes, pitypes)
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@settings(max_examples=100, deadline=None)
@given(pitypes, pitypes, pitypes)
def test_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@settings(max_examples=50, deadline=None)
@given(pitypes)
def test_union_idempotent_and_compatible(a):
    assert a.union(a) == a
    assert a.compatible_with(a)
    assert a.compatible_with(PiType.ast())
    assert a.compatible_with(a.union(PiType.str_()) if not a.is_attribute else a)


@settings(max_examples=100, deadline=None)
@given(pitypes, pitypes)
def test_types_are_compatible_with_their_union(a, b):
    union = a.union(b)
    assert a.compatible_with(union)
    assert b.compatible_with(union)


# ---------------------------------------------------------------------------
# executor filter semantics
# ---------------------------------------------------------------------------


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.integers(min_value=40, max_value=120),
    st.integers(min_value=120, max_value=240),
)
def test_where_filter_monotone(executor_module, lo, hi):
    executor = executor_module
    narrow = executor.execute_sql(
        f"SELECT hp FROM Cars WHERE hp BETWEEN {lo} AND {hi}"
    )
    wide = executor.execute_sql(
        f"SELECT hp FROM Cars WHERE hp BETWEEN {lo - 10} AND {hi + 10}"
    )
    everything = executor.execute_sql("SELECT hp FROM Cars")
    assert len(narrow) <= len(wide) <= len(everything)
    assert all(lo <= row[0] <= hi for row in narrow.rows)


# hypothesis needs a non-function-scoped fixture workaround: build one executor
import pytest  # noqa: E402


@pytest.fixture(scope="module")
def executor_module():
    from repro.database import Executor, standard_catalog

    return Executor(standard_catalog(seed=23, scale=0.1))
