"""repro.obs: tracer, metrics registry, views, exporters, and the contracts.

The two load-bearing guarantees, each pinned here:

* **Observability never perturbs results** — interfaces are byte-identical
  with tracing on vs. off across every workload log (the dynamic backstop of
  the ``no-wallclock-in-key`` static rule).
* **Per-worker snapshots merge deterministically** — the process backend
  with 2+ workers reports the same ``DETERMINISTIC_SEARCH_METRICS`` totals
  as the serial backend on pinned seeds.

Plus the completeness contract: every ``SearchStats`` / ``RequestStats``
field is registry-backed or explicitly exempted (mirroring
``test_every_planner_flag_partitions_the_plan_cache``).
"""

import dataclasses
import json

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import generate_for_workload
from repro.database import standard_catalog
from repro.database.planner import PlanStats
from repro.mapping.mapper import MapperStats
from repro.obs import (
    DETERMINISTIC_SEARCH_METRICS,
    MAPPER_STATS_EXEMPT,
    PLAN_STATS_EXEMPT,
    REQUEST_STATS_COUNTERS,
    REQUEST_STATS_EXEMPT,
    REQUEST_STATS_GAUGES,
    SEARCH_STATS_COUNTERS,
    SEARCH_STATS_EXEMPT,
    SEARCH_STATS_GAUGES,
    TRACER,
    MetricsRegistry,
    SpanEvent,
    Tracer,
    cache_hit_rates,
    phase_attribution,
    publish_mapper_stats,
    publish_plan_stats,
    read_trace,
    registry_field_partition,
    span,
    write_chrome_trace,
    write_jsonl,
)
from repro.search.backends import BACKEND_ENV_VAR
from repro.search.config import SearchStats
from repro.service.service import RequestStats
from repro.workloads import WORKLOADS


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    """Each test starts with a disabled, empty tracer and a free backend choice."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


def _backend_config(backend: str, workers: int = 2, seed: int = 5):
    config = PipelineConfig.fast(seed=seed)
    config.search.max_iterations = 24
    config.search.early_stop = 12
    config.search.backend = backend
    config.search.workers = workers
    # reward-table hit timing is scheduling-dependent across processes; the
    # deterministic-totals contract is about trajectory identity
    config.search.shared_rewards = False
    return config


def _interface_signature(result) -> str:
    return json.dumps(result.interface.to_dict(), sort_keys=True, default=str)


# -- tracer ---------------------------------------------------------------------


def test_disabled_tracer_records_nothing_and_allocates_no_span():
    tracer = Tracer()
    tracer.enabled = False
    first = tracer.span("executor.execute")
    second = tracer.span("search.round", round=1)
    # the disabled path returns one shared no-op singleton: zero allocation
    assert first is second
    with first:
        pass
    assert tracer.events() == [] and tracer.dropped == 0


def test_enabled_tracer_records_nested_spans_with_depth():
    tracer = Tracer()
    tracer.enabled = True
    with tracer.span("pipeline.search"):
        with tracer.span("search.round", round=0):
            pass
        with tracer.span("search.sync", round=0):
            pass
    events = tracer.events()
    assert [e.name for e in events] == [
        "search.round",
        "search.sync",
        "pipeline.search",
    ]
    by_name = {e.name: e for e in events}
    assert by_name["pipeline.search"].depth == 0
    assert by_name["search.round"].depth == 1
    assert by_name["search.round"].attrs == {"round": 0}
    assert by_name["pipeline.search"].category == "pipeline"
    outer = by_name["pipeline.search"]
    inner = by_name["search.round"]
    assert outer.duration >= inner.duration >= 0.0
    assert outer.start <= inner.start


def test_take_events_drains_and_extend_adopts():
    tracer = Tracer()
    tracer.enabled = True
    with tracer.span("persist.load"):
        pass
    shipped = tracer.take_events()
    assert len(shipped) == 1 and tracer.events() == []

    coordinator = Tracer()
    coordinator.extend(shipped)
    assert [e.name for e in coordinator.events()] == ["persist.load"]


def test_event_buffer_is_bounded_and_counts_drops():
    tracer = Tracer(max_events=2)
    tracer.enabled = True
    for _ in range(4):
        with tracer.span("executor.execute"):
            pass
    assert len(tracer.events()) == 2
    assert tracer.dropped == 2
    tracer.extend([e for e in tracer.events()])
    assert len(tracer.events()) == 2 and tracer.dropped == 4


# -- metrics registry -----------------------------------------------------------


def test_registry_counter_gauge_histogram_roundtrip():
    registry = MetricsRegistry()
    registry.counter("search.iterations").inc(3)
    registry.counter("search.iterations").inc()
    registry.gauge("search.best_reward").set(-2.5)
    registry.histogram("executor.rows").observe(10)
    registry.histogram("executor.rows").observe(30)
    assert registry.value("search.iterations") == 4
    assert registry.value("search.best_reward") == -2.5
    flat = registry.as_dict()
    assert flat["executor.rows"]["count"] == 2
    assert flat["executor.rows"]["total"] == 40
    assert flat["executor.rows"]["min"] == 10 and flat["executor.rows"]["max"] == 30
    with pytest.raises(TypeError):
        registry.gauge("search.iterations")  # kind mismatch on an existing name


def test_snapshot_merge_is_deterministic_and_gauges_first_writer_win():
    def worker_snapshot(iterations: int, reward: float) -> dict:
        registry = MetricsRegistry()
        registry.counter("search.iterations").inc(iterations)
        registry.gauge("search.best_reward").set(reward)
        return registry.snapshot()

    snapshots = [worker_snapshot(10, -1.0), worker_snapshot(20, -9.0)]
    merged_a = MetricsRegistry()
    for snapshot in snapshots:
        merged_a.merge(snapshot)
    merged_b = MetricsRegistry()
    for snapshot in snapshots:
        merged_b.merge(snapshot)
    # counters add; gauges keep the first writer (worker order), like the
    # reward table's first-writer-wins merge
    assert merged_a.value("search.iterations") == 30
    assert merged_a.value("search.best_reward") == -1.0
    assert merged_a.as_dict() == merged_b.as_dict()
    # snapshots are picklable-plain: only builtin containers and scalars
    assert json.dumps(snapshots[0]) is not None


# -- exporters ------------------------------------------------------------------


def _synthetic_events() -> list[SpanEvent]:
    return [
        SpanEvent("pipeline.plan", 10.0, 1.0, pid=1, tid=1, depth=0),
        SpanEvent("executor.plan", 10.2, 0.4, pid=1, tid=1, depth=1),
        SpanEvent("search.reward", 20.0, 0.5, pid=2, tid=2, depth=0,
                  attrs={"worker": 1}),
    ]


def test_chrome_trace_and_jsonl_roundtrip(tmp_path):
    events = _synthetic_events()
    metrics = {"cache.plan.hits": 3, "cache.plan.misses": 1}
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    write_chrome_trace(chrome, events, metrics=metrics)
    write_jsonl(jsonl, events, metrics=metrics)

    doc = json.loads(chrome.read_text())
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == len(events)
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
    # process metadata names the coordinator (first pid) and workers
    names = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["pid"] for e in names} == {1, 2}
    assert doc["metadata"]["metrics"] == metrics

    for path in (chrome, jsonl):
        read_events, read_metrics = read_trace(path)
        assert [(e.name, e.pid, e.depth) for e in read_events] == [
            (e.name, e.pid, e.depth) for e in events
        ]
        assert read_metrics == metrics


def test_phase_attribution_uses_self_time():
    attribution = phase_attribution(_synthetic_events())
    # executor.plan (0.4s) nests inside pipeline.plan (1.0s): the parent's
    # self time excludes the child, so "plan" totals 1.0, not 1.4
    assert attribution["plan"] == pytest.approx(1.0)
    assert attribution["reward"] == pytest.approx(0.5)
    assert set(attribution) >= {"parse", "plan", "execute", "map", "reward",
                                "sync", "cache", "other"}


def test_cache_hit_rates_rows():
    rows = cache_hit_rates(
        {
            "cache.plan.hits": 3,
            "cache.plan.misses": 1,
            "cache.memo.hits": 0,
            "cache.memo.misses": 0,
            "persist.loads": 1,
            "persist.misses": 1,
        }
    )
    by_name = {row["cache"]: row for row in rows}
    assert by_name["plan"]["rate"] == pytest.approx(0.75)
    assert by_name["memo"]["rate"] is None
    assert by_name["persisted"]["hits"] == 1


# -- completeness: stats dataclasses as registry views --------------------------


def _published_fields(stats_cls, exempt):
    """PlanStats/MapperStats publish every non-exempt field by name."""
    names = {f.name for f in dataclasses.fields(stats_cls)} - set(exempt)
    return {name: name for name in sorted(names)}


@pytest.mark.parametrize(
    "stats_cls,counters,gauges,exempt",
    [
        (SearchStats, SEARCH_STATS_COUNTERS, SEARCH_STATS_GAUGES,
         SEARCH_STATS_EXEMPT),
        (RequestStats, REQUEST_STATS_COUNTERS, REQUEST_STATS_GAUGES,
         REQUEST_STATS_EXEMPT),
        (PlanStats, _published_fields(PlanStats, PLAN_STATS_EXEMPT), {},
         PLAN_STATS_EXEMPT),
        (MapperStats, _published_fields(MapperStats, MAPPER_STATS_EXEMPT), {},
         MAPPER_STATS_EXEMPT),
    ],
    ids=["SearchStats", "RequestStats", "PlanStats", "MapperStats"],
)
def test_every_stats_field_is_registry_backed_or_exempt(
    stats_cls, counters, gauges, exempt
):
    """Adding a stats field without deciding its registry story must fail
    here, not drift silently (the observability mirror of
    ``test_every_planner_flag_partitions_the_plan_cache``)."""
    fields, covered = registry_field_partition(stats_cls, counters, gauges, exempt)
    missing = fields - covered
    stale = covered - fields
    assert not missing, f"unmapped {stats_cls.__name__} fields: {sorted(missing)}"
    assert not stale, f"stale registry mappings: {sorted(stale)}"
    assert not (set(counters) & set(gauges))
    assert not (set(counters) & set(exempt))
    assert not (set(gauges) & set(exempt))


def test_plan_and_mapper_stats_publish_every_field():
    plan_stats = PlanStats()
    plan_stats.plans_compiled = 2
    plan_stats.fallback_reasons["correlated_subquery"] = 3
    registry = MetricsRegistry()
    publish_plan_stats(plan_stats, registry)
    assert registry.value("executor.plans_compiled") == 2
    assert registry.value("executor.fallback.correlated_subquery") == 3

    mapper_stats = MapperStats()
    mapper_stats.memo_hits = 5
    publish_mapper_stats(mapper_stats, registry)
    assert registry.value("mapping.memo_hits") == 5


# -- the two cross-cutting contracts --------------------------------------------


def test_process_and_serial_registry_totals_match_on_pinned_seed():
    """2-worker process run and serial run agree on every deterministic
    search metric: the per-worker snapshots merged at the sync barrier carry
    exactly what the in-process backend accumulates directly."""
    totals = {}
    for backend in ("serial", "process"):
        catalog = standard_catalog(seed=11, scale=0.12)
        result = generate_for_workload(
            WORKLOADS["explore"],
            catalog=catalog,
            config=_backend_config(backend, workers=2),
        )
        assert result.search_stats.backend == backend
        assert result.metrics, "pipeline must publish the run registry"
        totals[backend] = {
            name: result.metrics.get(name) for name in DETERMINISTIC_SEARCH_METRICS
        }
    assert totals["serial"] == totals["process"]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_interfaces_byte_identical_with_tracing_on_and_off(workload):
    """Tracing must be observational only — same interface bytes, same
    fingerprints, with the tracer on or off (every workload log)."""
    signatures = {}
    for tracing in (False, True):
        if tracing:
            TRACER.enable()
        else:
            TRACER.disable()
        TRACER.clear()
        catalog = standard_catalog(seed=11, scale=0.12)
        result = generate_for_workload(
            WORKLOADS[workload],
            catalog=catalog,
            config=_backend_config("serial", workers=2),
        )
        signatures[tracing] = (
            _interface_signature(result),
            result.best_reward,
            result.state.fingerprint(),
        )
    assert signatures[False] == signatures[True]
    assert len(TRACER.events()) > 0  # the traced run actually recorded spans


def test_traced_pipeline_covers_at_least_five_subsystems():
    TRACER.enable()
    catalog = standard_catalog(seed=11, scale=0.12)
    result = generate_for_workload(
        WORKLOADS["explore"], catalog=catalog, config=_backend_config("serial")
    )
    categories = {event.category for event in TRACER.events()}
    assert len(categories) >= 5, categories
    # and the run registry rode along on the result
    assert result.metrics["search.iterations"] > 0
    assert any(name.startswith("cache.plan.") for name in result.metrics)
