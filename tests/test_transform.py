"""Tests for the Difftree transformation rules and engine (Section 6.1)."""

import random

import pytest

from repro.difftree import initial_difftrees, merge_difftrees, split_difftree
from repro.difftree.builder import cluster_by_result_schema, parse_queries
from repro.difftree.nodes import AnyNode, MultiNode, SubsetNode, ValNode
from repro.sqlparser import parse, to_sql
from repro.sqlparser.ast_nodes import L
from repro.transform import (
    AnyToMultiRule,
    AnyToSubsetRule,
    AnyToValRule,
    MergeAnyRule,
    MergeTreesRule,
    NoopRule,
    PartitionRule,
    PushAnyRule,
    PushOptListRule,
    SplitTreeRule,
    TransformContext,
    TransformEngine,
    iter_paths,
    node_at,
    parent_of,
    replace_at,
)

Q_EXPLORE = [
    "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 60",
    "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 60 AND 90",
]


def ctx(catalog, executor):
    return TransformContext(catalog, executor)


def apply_first(rule, trees, context):
    apps = rule.applications(trees, context)
    assert apps, f"{rule.name} found no applications"
    return apps[0].apply()


# -- path helpers -------------------------------------------------------------


def test_path_addressing_roundtrip():
    ast = parse("SELECT a FROM t WHERE a = 1")
    paths = dict(iter_paths(ast))
    for path, node in paths.items():
        assert node_at(ast, path) is node
    some_path = next(p for p, n in paths.items() if n.label == L.LITERAL_NUM)
    assert parent_of(ast, some_path).label == L.BINOP
    new_root = replace_at(ast, some_path, parse("SELECT b FROM t").children[0])
    assert new_root is ast


def test_replace_at_root():
    ast = parse("SELECT a FROM t")
    other = parse("SELECT b FROM t")
    assert replace_at(ast, (), other) is other


# -- individual rules -----------------------------------------------------------


def test_push_any_same_arity(catalog, executor, section2_asts):
    trees = [merge_difftrees(initial_difftrees(section2_asts[:2]))]
    new_trees = apply_first(PushAnyRule(), trees, ctx(catalog, executor))
    tree = new_trees[0]
    assert tree.root.label == L.SELECT_STMT
    assert tree.expresses_all()
    # the difference (the literal 1 vs 2) is now isolated below an ANY
    anys = [n for n in tree.root.walk() if isinstance(n, AnyNode)]
    assert anys and all(len(a.children) >= 2 for a in anys)


def test_push_any_label_alignment_creates_opt(catalog, executor):
    queries = parse_queries(
        ["SELECT date, price FROM sp500",
         "SELECT date, price FROM sp500 WHERE date > '2001-01-01'"]
    )
    trees = [merge_difftrees(initial_difftrees(queries))]
    new_trees = apply_first(PushAnyRule(), trees, ctx(catalog, executor))
    tree = new_trees[0]
    assert tree.expresses_all()
    opt_anys = [n for n in tree.root.walk() if isinstance(n, AnyNode) and n.is_opt]
    assert opt_anys, "missing WHERE clause should become an optional ANY"


def test_push_any_predicate_key_alignment(catalog, executor):
    queries = parse_queries(
        ["SELECT date, cases FROM covid WHERE state = 'CA'",
         "SELECT date, cases FROM covid WHERE state = 'WA' AND date > '2021-06-01'"]
    )
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(queries))]
    )
    tree = trees[0]
    assert tree.expresses_all()
    text = tree.pseudo_sql()
    # the state literal difference and the optional date predicate are isolated
    assert "state" in text and "VAL" in text or "ANY" in text


def test_push_opt_list_rule(catalog, executor):
    queries = parse_queries(
        ["SELECT a FROM T WHERE a = 1 AND b = 2", "SELECT a FROM T"]
    )
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint([merge_difftrees(initial_difftrees(queries))])
    rule = PushOptListRule()
    apps = rule.applications(trees, ctx(catalog, executor))
    if apps:  # the OPT sits above the AND list
        new_trees = apps[0].apply()
        assert new_trees[0].expresses_all()


def test_partition_groups_heterogeneous_children(catalog, executor):
    queries = parse_queries(
        [
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
            "SELECT a FROM T",
        ]
    )
    trees = [merge_difftrees(initial_difftrees(queries))]
    # make signatures differ by pushing nothing: children are all select_stmt,
    # so Partition does not apply at the root …
    assert not PartitionRule().applications(trees, ctx(catalog, executor))
    # … but it applies to an ANY over predicates with different roots
    from repro.sqlparser import ast_nodes as A

    mixed = AnyNode(
        [
            A.binop("=", A.column("a"), A.literal_num(1)),
            A.binop("=", A.column("b"), A.literal_num(2)),
            A.between(A.column("c"), A.literal_num(1), A.literal_num(2)),
        ]
    )
    from repro.difftree import Difftree

    tree = Difftree(mixed, [])
    apps = PartitionRule().applications([tree], ctx(catalog, executor))
    assert apps
    new_tree = apps[0].apply()[0]
    root = new_tree.root
    assert isinstance(root, AnyNode)
    assert any(isinstance(c, AnyNode) for c in root.children)


def test_any_to_val_generalises_literals(catalog, executor, section2_asts):
    engine = TransformEngine(catalog, executor)
    trees = [merge_difftrees(initial_difftrees(section2_asts[:2]))]
    # push twice to expose the literal ANY, then generalise
    state = trees
    for _ in range(6):
        apps = PushAnyRule().applications(state, ctx(catalog, executor))
        if not apps:
            break
        state = engine.apply(apps[0]) or state
    apps = AnyToValRule().applications(state, ctx(catalog, executor))
    assert apps
    new_state = apps[0].apply()
    vals = [n for n in new_state[0].root.walk() if isinstance(n, ValNode)]
    assert vals and vals[0].pitype is not None
    assert vals[0].pitype.attribute == "T.a"
    assert new_state[0].expresses_all()


def test_any_to_subset_rule(catalog, executor):
    queries = parse_queries(
        [
            "SELECT a FROM T WHERE a = 1 AND b = 2",
            "SELECT a FROM T WHERE a = 1",
        ]
    )
    trees = [merge_difftrees(initial_difftrees(queries))]
    state = trees
    context = ctx(catalog, executor)
    # push ANY down to the conjunction level first
    for _ in range(3):
        apps = PushAnyRule().applications(state, context)
        if not apps:
            break
        state = apps[0].apply()
    apps = AnyToSubsetRule().applications(state, context)
    if apps:
        new_state = apps[0].apply()
        subsets = [
            n for n in new_state[0].root.walk() if isinstance(n, SubsetNode)
        ]
        assert subsets
        assert new_state[0].expresses_all()


def test_any_to_multi_rule(catalog, executor):
    queries = parse_queries(
        ["SELECT a, a FROM T", "SELECT b FROM T"]
    )
    trees = [merge_difftrees(initial_difftrees(queries))]
    context = ctx(catalog, executor)
    state = trees
    for _ in range(2):
        apps = PushAnyRule().applications(state, context)
        if not apps:
            break
        state = apps[0].apply()
    apps = AnyToMultiRule().applications(state, context)
    assert apps
    new_state = apps[0].apply()
    multis = [n for n in new_state[0].root.walk() if isinstance(n, MultiNode)]
    assert multis
    assert new_state[0].expresses_all()


def test_noop_removes_redundant_any(catalog, executor):
    duplicated = AnyNode([parse("SELECT a FROM T"), parse("SELECT a FROM T")])
    from repro.difftree import Difftree

    tree = Difftree(duplicated, [parse("SELECT a FROM T")])
    apps = NoopRule().applications([tree], ctx(catalog, executor))
    assert apps
    new_tree = apps[0].apply()[0]
    assert not isinstance(new_tree.root, AnyNode)
    assert new_tree.expresses_all()


def test_merge_any_flattens_cascade(catalog, executor):
    inner = AnyNode([parse("SELECT a FROM T"), parse("SELECT b FROM T")])
    outer = AnyNode([inner, parse("SELECT p FROM T")])
    from repro.difftree import Difftree

    tree = Difftree(outer, [parse("SELECT a FROM T")])
    apps = MergeAnyRule().applications([tree], ctx(catalog, executor))
    assert apps
    new_root = apps[0].apply()[0].root
    assert isinstance(new_root, AnyNode)
    assert len(new_root.children) == 3


def test_merge_trees_requires_union_compatibility(catalog, executor):
    compatible = initial_difftrees(Q_EXPLORE)
    incompatible = initial_difftrees(
        ["SELECT hp FROM Cars", "SELECT hp, mpg FROM Cars"]
    )
    rule = MergeTreesRule()
    assert rule.applications(compatible, ctx(catalog, executor))
    assert not rule.applications(incompatible, ctx(catalog, executor))
    merged_state = rule.applications(compatible, ctx(catalog, executor))[0].apply()
    assert len(merged_state) == 1
    assert merged_state[0].expresses_all()


def test_split_tree_rule(catalog, executor, section2_asts):
    merged = merge_difftrees(initial_difftrees(section2_asts))
    apps = SplitTreeRule().applications([merged], ctx(catalog, executor))
    assert apps
    new_state = apps[0].apply()
    assert len(new_state) == 3
    assert all(len(t.queries) == 1 for t in new_state)


def test_split_difftree_helper(section2_asts):
    merged = merge_difftrees(initial_difftrees(section2_asts))
    parts = split_difftree(merged)
    assert len(parts) == 3
    static = split_difftree(initial_difftrees(section2_asts)[0])
    assert len(static) == 1


# -- engine ----------------------------------------------------------------------


def test_engine_applications_are_bounded_and_cached(catalog, executor, section2_asts):
    engine = TransformEngine(catalog, executor, max_applications=5)
    trees = initial_difftrees(section2_asts)
    rng = random.Random(0)
    apps = engine.applications(trees, rng)
    assert len(apps) <= 5
    assert engine.applications(trees, rng) is apps  # cache hit


def test_engine_apply_preserves_query_coverage(catalog, executor, section2_asts):
    engine = TransformEngine(catalog, executor)
    trees = merge_difftrees(initial_difftrees(section2_asts))
    rng = random.Random(1)
    state = [trees]
    for _ in range(12):
        apps = engine.applications(state, rng)
        if not apps:
            break
        new_state = engine.apply(rng.choice(apps))
        if new_state is None:
            continue
        state = new_state
        assert engine.covers_all_queries(state)


def test_refactor_to_fixpoint_reaches_figure4_structure(catalog, executor, section2_asts):
    """The Section-2 example should refactor into the Figure-4 Difftree shape."""
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(section2_asts))]
    )
    assert len(trees) == 1
    tree = trees[0]
    assert tree.expresses_all()
    text = tree.pseudo_sql()
    assert "VAL" in text or "ANY" in text
    # every input query can be recovered exactly
    for i in range(3):
        assert to_sql(tree.resolve_query(i)) == to_sql(section2_asts[i])


def test_refactor_explore_isolates_range_literals(catalog, executor, explore_asts):
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(explore_asts))]
    )
    vals = [n for n in trees[0].root.walk() if isinstance(n, ValNode)]
    assert len(vals) == 4  # two BETWEEN predicates → four literals
    assert trees[0].expresses_all()


def test_cluster_by_result_schema_strict_vs_loose(executor):
    queries = parse_queries(
        [
            "SELECT hour, count(*) FROM flights GROUP BY hour",
            "SELECT delay, count(*) FROM flights GROUP BY delay",
        ]
    )
    trees = initial_difftrees(queries)
    strict = cluster_by_result_schema(trees, executor, strict=True)
    loose = cluster_by_result_schema(trees, executor, strict=False)
    assert len(strict) == 2
    assert len(loose) == 1
