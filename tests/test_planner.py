"""Plan layer tests: hash joins, predicate pushdown, projection pruning.

The core property: for every query the system supports, *both* planned
executors — the row-based plan runner and the vectorized columnar engine —
must produce a ``ResultTable`` identical to the pre-plan AST interpreter:
same column names, types, sources and aggregate flags, and the same rows in
the same order (order matters: ``LIMIT`` without ``ORDER BY`` is only
deterministic if planned joins preserve the interpreter's row order).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Executor, PlanCache, standard_catalog
from repro.database.planner import (
    CrossJoinOp,
    HashJoinOp,
    MapOp,
    NestedLoopJoinOp,
    Planner,
    ScanOp,
    SubqueryScanOp,
)
from repro.sqlparser import parse
from repro.workloads.logs import WORKLOADS

CATALOG = standard_catalog(seed=3, scale=0.12)

#: every query of every workload log (the paper's Listings 1-7)
WORKLOAD_QUERIES = [
    pytest.param(query, id=f"{name}-{i}")
    for name, workload in sorted(WORKLOADS.items())
    for i, query in enumerate(workload.queries)
]

#: extra join / pushdown shapes not exercised by the logs
EXTRA_QUERIES = [
    # explicit inner join with an extra non-equi residual conjunct
    "SELECT gal.u, s.z FROM galaxy as gal JOIN specObj as s "
    "ON s.bestObjID = gal.objID AND s.ra > 213.5",
    # outer joins (both paddings), equi and non-equi conditions
    "SELECT t.p, s.ra FROM T as t LEFT JOIN specObj as s ON t.p = s.specObjID",
    "SELECT t.p, s.ra FROM T as t RIGHT JOIN specObj as s ON t.p = s.specObjID",
    "SELECT t.p, c.hp FROM T as t LEFT JOIN Cars as c ON t.p > c.id",
    # three-way comma join with mixed equality and pushdown conjuncts
    "SELECT t.p, c.id, gal.objID FROM T as t, Cars as c, galaxy as gal "
    "WHERE t.p = c.id AND c.id = gal.objID AND c.hp > 60",
    # comma join without any equality: must stay a cross join
    "SELECT t.a, c.origin FROM T as t, Cars as c WHERE t.a > 3 LIMIT 7",
    # self join with aliases
    "SELECT a.id, b.id FROM Cars as a, Cars as b "
    "WHERE a.id = b.id AND a.hp > 120",
    # join feeding grouping and HAVING
    "SELECT gal.objID, count(*) FROM galaxy as gal, specObj as s "
    "WHERE s.bestObjID = gal.objID GROUP BY gal.objID HAVING count(*) >= 1",
    # LIMIT without ORDER BY over a join: row order must be preserved
    "SELECT gal.objID, s.ra FROM galaxy as gal, specObj as s "
    "WHERE s.bestObjID = gal.objID LIMIT 5",
    # subquery in FROM alongside pushdown on the outer query
    "SELECT t FROM (SELECT sum(total) as t FROM sales GROUP BY city) sub "
    "WHERE t > 0",
    # IN subquery and scalar subquery conjuncts are never pushed
    "SELECT hour FROM flights WHERE hour IN "
    "(SELECT hour FROM flights WHERE hour < 3) AND delay > 0",
    "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)",
    # DISTINCT + ORDER BY + LIMIT over a planned join
    "SELECT DISTINCT gal.objID, s.dec FROM galaxy as gal, specObj as s "
    "WHERE s.bestObjID = gal.objID ORDER BY s.dec LIMIT 9",
    # unqualified equality that resolves within a single table: pushed, not a key
    "SELECT p FROM T WHERE a = b",
    # projection pruning with aggregates only
    "SELECT count(*) FROM flights WHERE dist > 500",
    # ORDER BY over a multi-table comma join: join reordering kicks in and a
    # MapOp must restore the interpreter's column layout
    "SELECT gal.objID, s.ra, t.p FROM galaxy as gal, specObj as s, T as t "
    "WHERE s.bestObjID = gal.objID AND t.p = gal.objID "
    "ORDER BY gal.objID, s.ra, t.p",
    # single-table conjuncts over a FROM-subquery alias: pushed into the
    # subquery's own WHERE (ResultColumn.source proves the mapping)
    "SELECT sub.hour, sub.delay FROM (SELECT hour, delay FROM flights) sub "
    "WHERE sub.delay > 30 AND sub.hour < 5",
    "SELECT h FROM (SELECT hour as h, dist FROM flights) sub "
    "WHERE h BTWN 2 & 9 AND dist > 300 LIMIT 11",
    # subquery alias joined to a base table through its static schema
    "SELECT sub.id, c.hp FROM (SELECT id, mpg FROM Cars) sub, Cars as c "
    "WHERE sub.id = c.id AND sub.mpg > 20",
    # LIMIT inside the subquery blocks pushdown (filter does not commute)
    "SELECT v FROM (SELECT hp as v FROM Cars LIMIT 17) sub WHERE v > 100",
    # expression-heavy projection and CASE on the columnar path
    "SELECT hp * 2 + 1, CASE WHEN hp > 120 THEN 'big' ELSE 'small' END "
    "FROM Cars WHERE mpg IS NOT NULL",
    # scalar functions, IN lists and LIKE on the columnar path
    "SELECT upper(origin), length(origin) FROM Cars "
    "WHERE origin LIKE '%an%' OR id IN (1, 2, 3)",
    # grouped aggregates combined in arithmetic and compared in HAVING
    "SELECT origin, sum(hp) / count(*) FROM Cars GROUP BY origin "
    "HAVING count(*) > 2 AND avg(mpg) > 10",
    # count(DISTINCT ...) and aggregates over an empty relation
    "SELECT count(DISTINCT origin) FROM Cars",
    "SELECT count(*), sum(hp), min(hp) FROM Cars WHERE hp > 100000",
    # outer joins with residual ON conjuncts (padding after the residual)
    "SELECT t.p, s.ra FROM T as t LEFT JOIN specObj as s "
    "ON t.p = s.specObjID AND s.ra > 213.5",
    "SELECT t.p, s.ra FROM T as t RIGHT JOIN specObj as s "
    "ON t.p = s.specObjID AND s.ra > 213.5",
    # non-equi outer joins: block-wise nested loop + padding
    "SELECT t.p, c.hp FROM T as t RIGHT JOIN Cars as c ON t.p > c.id",
    "SELECT t.a, c.mpg FROM T as t LEFT JOIN Cars as c ON t.a > c.mpg",
    # uncorrelated subqueries in vectorized stages: evaluated once, broadcast
    "SELECT hp FROM Cars WHERE hp > (SELECT avg(hp) FROM Cars) "
    "AND mpg < (SELECT max(mpg) FROM Cars)",
    "SELECT (SELECT max(hp) FROM Cars), origin FROM Cars "
    "WHERE id IN (SELECT id FROM Cars WHERE hp > 100)",
    "SELECT city, sum(total) FROM sales GROUP BY city "
    "HAVING sum(total) >= (SELECT avg(total) FROM sales)",
    "SELECT origin, count(*) FROM Cars "
    "WHERE hp IN (SELECT hp FROM Cars WHERE mpg > 30) GROUP BY origin",
    # grouped FROM subquery: static schema, hash join, key-only pushdown
    "SELECT sub.city, s.total FROM "
    "(SELECT city, sum(total) as t FROM sales GROUP BY city) sub, sales as s "
    "WHERE sub.city = s.city AND s.total > 400",
    "SELECT city, t FROM "
    "(SELECT city, sum(total) as t FROM sales GROUP BY city) sub "
    "WHERE city LIKE '%a%' AND t > 0",
    "SELECT c, t FROM (SELECT city as c, count(*) as t, avg(total) FROM sales "
    "GROUP BY city HAVING count(*) > 1) sub WHERE c LIKE '%a%'",
]


@pytest.fixture(scope="module")
def interpreted():
    return Executor(CATALOG, enable_cache=False, use_planner=False)


@pytest.fixture(scope="module")
def planned():
    return Executor(CATALOG, enable_cache=False, use_planner=True, columnar=False)


@pytest.fixture(scope="module")
def columnar():
    return Executor(CATALOG, enable_cache=False, use_planner=True, columnar=True)


def assert_equivalent(interpreted, planned, sql, columnar=None):
    expected = interpreted.execute_sql(sql)
    actuals = [planned.execute_sql(sql)]
    if columnar is not None:
        actuals.append(columnar.execute_sql(sql))
    for actual in actuals:
        assert [
            (c.name, c.dtype, c.source, c.is_aggregate) for c in expected.columns
        ] == [(c.name, c.dtype, c.source, c.is_aggregate) for c in actual.columns]
        assert expected.rows == actual.rows, f"row mismatch for: {sql}"


@pytest.mark.parametrize("sql", WORKLOAD_QUERIES)
def test_workload_query_equivalence(interpreted, planned, columnar, sql):
    """Property: row plans *and* columnar plans are result-identical to the
    interpreter — including row order — on every query of the paper's
    workload logs."""
    assert_equivalent(interpreted, planned, sql, columnar)


@pytest.mark.parametrize("sql", EXTRA_QUERIES)
def test_join_and_pushdown_equivalence(interpreted, planned, columnar, sql):
    assert_equivalent(interpreted, planned, sql, columnar)


@settings(max_examples=25, deadline=None)
@given(
    ra_lo=st.floats(212.5, 214.5),
    ra_span=st.floats(0.0, 1.5),
    dec_lo=st.floats(-1.2, 0.2),
    dec_span=st.floats(0.0, 0.8),
)
def test_sdss_join_equivalence_property(ra_lo, ra_span, dec_lo, dec_span):
    """Hash-join + pushdown plans match the interpreter for arbitrary
    range predicates over the SDSS join (the paper's Listing 5 shape)."""
    interpreted = Executor(CATALOG, enable_cache=False, use_planner=False)
    planned = Executor(CATALOG, enable_cache=False, use_planner=True, columnar=False)
    columnar = Executor(CATALOG, enable_cache=False, use_planner=True, columnar=True)
    sql = (
        "SELECT DISTINCT gal.objID, gal.u, s.ra, s.dec "
        "FROM galaxy as gal, specObj as s "
        f"WHERE s.bestObjID = gal.objID AND s.ra BETWEEN {ra_lo} AND {ra_lo + ra_span} "
        f"AND s.dec BETWEEN {dec_lo} AND {dec_lo + dec_span}"
    )
    assert_equivalent(interpreted, planned, sql, columnar)


#: value pools for the mixed NULL/NaN sweep: join keys and measures drawn
#: from a small domain so joins, groups and aggregates all hit collisions
_KEY_POOL = st.one_of(
    st.none(),
    st.just(float("nan")),
    st.integers(0, 3),
    st.sampled_from([0.0, 1.0, 2.5]),
)
_MEASURE_POOL = st.one_of(st.none(), st.just(float("nan")), st.integers(-5, 5))


@settings(max_examples=40, deadline=None)
@given(
    left=st.lists(st.tuples(_KEY_POOL, _MEASURE_POOL), max_size=12),
    right=st.lists(st.tuples(_KEY_POOL, _MEASURE_POOL), max_size=12),
)
def test_null_nan_equivalence_property(left, right):
    """All three engines agree — rows and order — over columns mixing NULLs,
    NaNs, ints and floats: the join-key skip rules, NULL-rejecting
    comparisons and NULL-skipping aggregates must line up exactly."""
    from repro.database import Catalog, Column, DataType, Table

    catalog = Catalog(
        [
            Table.from_rows(
                "lt",
                [Column("k", DataType.FLOAT), Column("v", DataType.FLOAT)],
                [tuple(r) for r in left],
            ),
            Table.from_rows(
                "rt",
                [Column("k", DataType.FLOAT), Column("w", DataType.FLOAT)],
                [tuple(r) for r in right],
            ),
        ]
    )
    interpreted = Executor(catalog, enable_cache=False, use_planner=False)
    planned = Executor(
        catalog, enable_cache=False, columnar=False, plan_cache=PlanCache()
    )
    columnar = Executor(
        catalog, enable_cache=False, columnar=True, plan_cache=PlanCache()
    )
    queries = [
        "SELECT lt.v, rt.w FROM lt, rt WHERE lt.k = rt.k",
        "SELECT k, count(*), count(v), sum(v), avg(v), min(v), max(v) "
        "FROM lt GROUP BY k",
        "SELECT v FROM lt WHERE v > 0 OR v IS NULL",
        "SELECT count(DISTINCT k) FROM lt WHERE k >= 0",
        "SELECT lt.k, rt.w FROM lt, rt WHERE lt.k = rt.k AND rt.w <= 2",
        # outer joins: NULL/NaN keys never match, unmatched preserved rows
        # come back NULL-padded, and padding order matches the row engine
        "SELECT lt.k, lt.v, rt.w FROM lt LEFT JOIN rt ON lt.k = rt.k",
        "SELECT lt.v, rt.k, rt.w FROM lt RIGHT JOIN rt ON lt.k = rt.k",
        "SELECT lt.k, rt.w FROM lt LEFT JOIN rt ON lt.k = rt.k AND rt.w > 0",
        # non-equi joins (vectorized nested loop), inner and both paddings
        "SELECT lt.v, rt.w FROM lt JOIN rt ON lt.v > rt.w",
        "SELECT lt.k, rt.w FROM lt LEFT JOIN rt ON lt.v > rt.w",
        "SELECT lt.k, rt.w FROM lt RIGHT JOIN rt ON lt.v < rt.w",
    ]
    for sql in queries:
        expected = interpreted.execute_sql(sql)
        for engine in (planned, columnar):
            actual = engine.execute_sql(sql)
            assert _nansafe(expected.rows) == _nansafe(actual.rows), sql


def _nansafe(rows):
    """Rows with NaNs made comparable (nan != nan breaks list equality)."""
    return [
        tuple("<nan>" if isinstance(v, float) and v != v else v for v in row)
        for row in rows
    ]


# -- plan shape ---------------------------------------------------------------


def plan_for(sql):
    return Planner(CATALOG).plan(parse(sql).children[0] if parse(sql).label == "subquery" else parse(sql))


def test_comma_join_compiles_to_hash_join():
    plan = plan_for(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID"
    )
    assert isinstance(plan.source, HashJoinOp)
    assert plan.residual_where is None


def test_explicit_join_compiles_to_hash_join_with_residual():
    plan = plan_for(
        "SELECT gal.u FROM galaxy as gal JOIN specObj as s "
        "ON s.bestObjID = gal.objID AND s.ra > 213.5"
    )
    assert isinstance(plan.source, HashJoinOp)
    assert plan.source.residual is not None


def test_non_equi_join_falls_back_to_nested_loop():
    plan = plan_for(
        "SELECT t.p FROM T as t JOIN Cars as c ON t.p > c.id"
    )
    assert isinstance(plan.source, NestedLoopJoinOp)


def test_comma_join_without_equality_stays_cross():
    plan = plan_for("SELECT t.a FROM T as t, Cars as c WHERE t.a > 3")
    assert isinstance(plan.source, CrossJoinOp)


def test_single_table_predicates_are_pushed_to_scans():
    plan = plan_for(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5 AND gal.u < 20"
    )
    join = plan.source
    assert isinstance(join, HashJoinOp)
    assert plan.residual_where is None
    scans = [join.left, join.right]
    pushed = [p for scan in scans if isinstance(scan, ScanOp) for p in scan.predicates]
    assert len(pushed) == 2


def test_subquery_predicates_are_never_pushed():
    plan = plan_for(
        "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)"
    )
    assert isinstance(plan.source, ScanOp)
    assert plan.source.predicates == []
    assert plan.residual_where is not None


def test_scans_prune_unreferenced_columns():
    plan = plan_for("SELECT hp FROM Cars WHERE mpg > 20")
    scan = plan.source
    assert isinstance(scan, ScanOp)
    assert scan.column_indices is not None
    assert [c.name for c in scan.schema] == ["hp", "mpg"]


def test_star_projection_disables_pruning():
    plan = plan_for("SELECT * FROM Cars WHERE mpg > 20")
    scan = plan.source
    assert isinstance(scan, ScanOp)
    assert scan.column_indices is None


def test_correlated_references_keep_columns():
    # `ss.city` is referenced only inside the HAVING subquery; the outer
    # scan must still materialise it
    plan = plan_for(
        "SELECT product, sum(total) FROM sales as ss GROUP BY product "
        "HAVING sum(total) >= (SELECT max(total) FROM sales as s "
        "WHERE s.city = ss.city)"
    )
    scan = plan.source
    assert isinstance(scan, ScanOp)
    assert "city" in [c.name for c in scan.schema]


def test_explain_renders_plan_stages():
    ex = Executor(CATALOG)
    text = ex.explain_sql(
        "SELECT gal.objID, count(*) FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5 "
        "GROUP BY gal.objID ORDER BY gal.objID LIMIT 10"
    )
    for stage in ("Limit", "OrderBy", "GroupAggregate", "HashJoin", "Scan"):
        assert stage in text, text


def test_plan_stats_are_collected():
    # a private plan cache keeps the counters deterministic regardless of
    # what other tests have already compiled into the shared cache
    ex = Executor(CATALOG, enable_cache=False, plan_cache=PlanCache())
    ex.execute_sql(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5"
    )
    assert ex.stats.plans_compiled >= 1
    assert ex.stats.hash_joins_planned >= 1
    assert ex.stats.hash_joins_executed >= 1
    assert ex.stats.predicates_pushed >= 1
    assert ex.stats.columnar_executions >= 1
    # re-execution reuses the compiled plan
    ex.execute_sql(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5"
    )
    assert ex.stats.plan_cache_hits >= 1


def test_orderby_join_chain_is_reordered_with_map_restore():
    """With ORDER BY fixing the output order, the comma-join chain starts
    from the smallest estimated input and a MapOp restores the FROM-order
    column layout above the joins."""
    plan = plan_for(
        "SELECT gal.objID, s.ra, t.p FROM galaxy as gal, specObj as s, T as t "
        "WHERE s.bestObjID = gal.objID AND t.p = gal.objID "
        "ORDER BY gal.objID, s.ra, t.p"
    )
    assert isinstance(plan.source, MapOp)
    # T is the smallest table, so it must be the deepest-left chain input
    op = plan.source.child
    while isinstance(op, HashJoinOp):
        op = op.left
    assert isinstance(op, ScanOp) and op.table == "T"
    # the restored schema matches FROM order: galaxy, specObj, T qualifiers
    qualifiers = [c.qualifier for c in plan.source.schema]
    assert qualifiers == sorted(qualifiers, key=["gal", "s", "t"].index)


def test_no_orderby_keeps_from_order():
    plan = plan_for(
        "SELECT gal.objID, s.ra, t.p FROM galaxy as gal, specObj as s, T as t "
        "WHERE s.bestObjID = gal.objID AND t.p = gal.objID"
    )
    assert not isinstance(plan.source, MapOp)


def test_reorder_requires_orderby_to_cover_all_outputs():
    """ORDER BY over a strict subset of the output columns leaves ties whose
    order the interpreter's stable sort fixes from FROM order — reordering
    would be observable, so the pass must not fire."""
    plan = plan_for(
        "SELECT gal.objID, s.ra, t.p FROM galaxy as gal, specObj as s, T as t "
        "WHERE s.bestObjID = gal.objID AND t.p = gal.objID ORDER BY gal.objID"
    )
    assert not isinstance(plan.source, MapOp)


def test_reorder_tie_order_matches_interpreter():
    """Regression: tied ORDER BY keys must not expose the reordered join's
    intermediate row order (LIMIT would even return different rows)."""
    from repro.database import Catalog, Column, DataType, Table

    catalog = Catalog(
        [
            Table.from_rows(
                "a",
                [Column("k", DataType.INT), Column("v", DataType.INT)],
                [(1, 10), (2, 10), (3, 10)],
            ),
            Table.from_rows(
                "b",
                [Column("k", DataType.INT), Column("w", DataType.INT)],
                [(2, 200), (1, 100)],
            ),
        ]
    )
    interpreted = Executor(catalog, enable_cache=False, use_planner=False)
    planned = Executor(catalog, enable_cache=False, plan_cache=PlanCache())
    for sql in (
        "SELECT a.v, b.w FROM a, b WHERE a.k = b.k ORDER BY a.v",
        "SELECT a.v, b.w FROM a, b WHERE a.k = b.k ORDER BY a.v LIMIT 1",
    ):
        assert interpreted.execute_sql(sql).rows == planned.execute_sql(sql).rows, sql
    assert planned.stats.joins_reordered == 0


def test_scalar_function_with_stray_distinct_over_aggregate():
    """Regression: round(DISTINCT sum(x)) must not crash the columnar group
    evaluator — the row engine ignores the stray DISTINCT, so must we."""
    interpreted = Executor(CATALOG, enable_cache=False, use_planner=False)
    columnar = Executor(CATALOG, enable_cache=False, plan_cache=PlanCache())
    sql = "SELECT origin, round(DISTINCT sum(hp)) FROM Cars GROUP BY origin"
    assert interpreted.execute_sql(sql).rows == columnar.execute_sql(sql).rows
    assert columnar.stats.columnar_fallbacks == 0


def test_reorder_can_be_disabled():
    planner = Planner(CATALOG, allow_reorder=False)
    plan = planner.plan(
        parse(
            "SELECT gal.objID, t.p FROM galaxy as gal, specObj as s, T as t "
            "WHERE s.bestObjID = gal.objID AND t.p = gal.objID ORDER BY t.p"
        )
    )
    assert not isinstance(plan.source, MapOp)
    assert planner.stats.joins_reordered == 0


def test_subquery_conjuncts_are_pushed_into_subquery_where():
    planner = Planner(CATALOG)
    plan = planner.plan(
        parse(
            "SELECT sub.hour FROM (SELECT hour, delay FROM flights) sub "
            "WHERE sub.delay > 30 AND sub.hour < 5"
        )
    )
    assert planner.stats.subquery_pushdowns == 2
    scan = plan.source
    assert isinstance(scan, SubqueryScanOp)
    assert plan.residual_where is None
    # the rewritten subquery carries the conjuncts in its own WHERE
    from repro.sqlparser import to_sql

    inner = to_sql(scan.stmt)
    assert "delay > 30" in inner and "hour < 5" in inner


def test_subquery_pushdown_blocked_by_limit():
    planner = Planner(CATALOG)
    plan = planner.plan(
        parse("SELECT v FROM (SELECT hp as v FROM Cars LIMIT 17) sub WHERE v > 100")
    )
    assert planner.stats.subquery_pushdowns == 0
    # the predicate stays above the subquery scan instead
    assert not isinstance(plan.source, SubqueryScanOp) or plan.residual_where is not None


def test_static_subquery_schema_enables_hash_join():
    plan = plan_for(
        "SELECT sub.id, c.hp FROM (SELECT id, mpg FROM Cars) sub, Cars as c "
        "WHERE sub.id = c.id"
    )
    assert isinstance(plan.source, HashJoinOp)


def test_uncorrelated_subquery_predicates_stay_columnar():
    """Per-stage gating: a self-contained subquery predicate no longer forces
    the whole plan onto the row engine — it is evaluated once and broadcast."""
    plan = plan_for(
        "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)"
    )
    assert plan.columnar_ok is True and plan.columnar_reason is None
    plan = plan_for(
        "SELECT hour FROM flights WHERE hour IN (SELECT hour FROM flights)"
    )
    assert plan.columnar_ok is True
    plan = plan_for("SELECT hp FROM Cars WHERE mpg > 20")
    assert plan.columnar_ok is True
    # FROM subqueries execute separately: they do not disqualify the outer plan
    plan = plan_for("SELECT hour FROM (SELECT hour FROM flights) sub WHERE hour > 1")
    assert plan.columnar_ok is True


def test_correlated_subqueries_gate_the_plan_with_a_reason():
    """Correlated subqueries still route to the row engine, and the first
    unsupported construct is recorded on the plan for observability."""
    plan = plan_for(
        "SELECT product, sum(total) FROM sales as ss GROUP BY product "
        "HAVING sum(total) >= (SELECT max(total) FROM sales as s "
        "WHERE s.city = ss.city)"
    )
    assert plan.columnar_ok is False
    assert plan.columnar_reason == "correlated subquery in HAVING"
    plan = plan_for(
        "SELECT total FROM sales as ss WHERE total >= "
        "(SELECT max(total) FROM sales as s WHERE s.city = ss.city)"
    )
    assert plan.columnar_ok is False
    assert plan.columnar_reason == "correlated subquery in WHERE"
    # the sales workload's nested shape: the correlated reference sits inside
    # a FROM subquery of the HAVING subquery — still detected
    plan = plan_for(
        "SELECT city, product, sum(total) FROM sales as ss "
        "GROUP BY city, product "
        "HAVING sum(total) >= (SELECT max(t) FROM "
        "(SELECT sum(total) as t FROM sales as s WHERE s.city = ss.city "
        "GROUP BY s.city, s.product))"
    )
    assert plan.columnar_ok is False
    assert plan.columnar_reason == "correlated subquery in HAVING"


def test_columnar_subqueries_kill_switch_restores_blanket_gate():
    """columnar_subqueries=False reinstates the all-or-nothing PR-2 gate and
    is part of the plan identity (the cache may never mix the two)."""
    sql = "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)"
    strict = Planner(CATALOG, columnar_subqueries=False).plan(parse(sql))
    assert strict.columnar_ok is False
    assert strict.columnar_reason == "subquery in WHERE"
    cache = PlanCache()
    relaxed_ex = Executor(CATALOG, enable_cache=False, plan_cache=cache)
    gated_ex = Executor(
        CATALOG, enable_cache=False, plan_cache=cache, columnar_subqueries=False
    )
    relaxed_ex.execute_sql(sql)
    gated_ex.execute_sql(sql)
    # both compiled their own outer and inner plans: the gating flag is part
    # of the cache key, so relaxed and gated plans never mix
    assert relaxed_ex.stats.plans_compiled == 2
    assert gated_ex.stats.plans_compiled == 2
    assert gated_ex.stats.columnar_plan_gated == 1
    assert relaxed_ex.stats.columnar_plan_gated == 0


def test_every_planner_flag_partitions_the_plan_cache():
    """Dynamic counterpart of the `cache-key-field` static rule: executors
    differing in any single planner flag never exchange cached plans."""
    sql = (
        "SELECT a.total FROM sales as a, sales as b "
        "WHERE a.product = b.product ORDER BY a.total"
    )
    base = dict(allow_reorder=True, order_insensitive=False, columnar_subqueries=True)
    for flag in sorted(base):
        cache = PlanCache()
        flipped = dict(base)
        flipped[flag] = not flipped[flag]
        first = Executor(CATALOG, enable_cache=False, plan_cache=cache, **base)
        second = Executor(CATALOG, enable_cache=False, plan_cache=cache, **flipped)
        first.execute_sql(sql)
        second.execute_sql(sql)
        # a shared key would let the second executor hit the first's plan
        assert second.stats.plans_compiled > 0, flag
        assert cache.size(CATALOG) == first.stats.plans_compiled + second.stats.plans_compiled, flag


def test_grouped_subquery_gets_static_schema_and_hash_join():
    """Aggregate / GROUP BY FROM subqueries now derive their schema
    statically, so they participate in hash joins like a base scan."""
    plan = plan_for(
        "SELECT sub.city, s.total FROM "
        "(SELECT city, sum(total) as t FROM sales GROUP BY city) sub, "
        "sales as s WHERE sub.city = s.city"
    )
    assert isinstance(plan.source, HashJoinOp)
    sub = plan.source.left
    assert isinstance(sub, SubqueryScanOp)
    names = [c.name for c in sub.schema]
    assert names == ["city", "t"]
    assert sub.schema[1].is_aggregate is True
    # group count estimate: bounded by the key's distinct cardinality
    assert 0 < sub.estimated_rows <= len(CATALOG.table("sales"))


def test_grouped_subquery_pushdown_is_restricted_to_group_keys():
    """Predicates on GROUP BY key outputs are rewritten into the subquery's
    WHERE; predicates on aggregate outputs must stay above the grouping."""
    planner = Planner(CATALOG)
    plan = planner.plan(
        parse(
            "SELECT city, t FROM "
            "(SELECT city, sum(total) as t FROM sales GROUP BY city) sub "
            "WHERE city LIKE '%a%' AND t > 0"
        )
    )
    assert planner.stats.subquery_pushdowns == 1
    from repro.sqlparser import to_sql

    # the key conjunct moved into the inner WHERE; the aggregate conjunct
    # stayed outside as a filter above the subquery scan
    from repro.database.planner import FilterOp

    assert isinstance(plan.source, FilterOp)
    assert "t > 0" in " AND ".join(to_sql(p) for p in plan.source.predicates)
    inner = to_sql(plan.source.child.stmt)
    assert "LIKE" in inner and "t > 0" not in inner


def test_nan_join_keys_never_match():
    """nan == nan is false, so hash joins must skip NaN keys exactly like the
    interpreter's `=` does (a dict lookup would match NaN via identity)."""
    from repro.database import Catalog, Column, DataType, Table

    table = Table.from_rows(
        "m",
        [Column("k", DataType.FLOAT), Column("v", DataType.INT)],
        [(float("nan"), 1), (2.0, 2)],
    )
    catalog = Catalog([table])
    sql = "SELECT a.v, b.v FROM m as a, m as b WHERE a.k = b.k"
    interpreted = Executor(catalog, enable_cache=False, use_planner=False)
    planned = Executor(catalog, enable_cache=False, use_planner=True)
    assert interpreted.execute_sql(sql).rows == planned.execute_sql(sql).rows == [(2, 2)]
