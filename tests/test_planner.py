"""Plan layer tests: hash joins, predicate pushdown, projection pruning.

The core property: for every query the system supports, the planned executor
must produce a ``ResultTable`` identical to the pre-plan AST interpreter —
same column names, types, sources and aggregate flags, and the same rows in
the same order (order matters: ``LIMIT`` without ``ORDER BY`` is only
deterministic if planned joins preserve the interpreter's row order).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Executor, standard_catalog
from repro.database.planner import (
    CrossJoinOp,
    HashJoinOp,
    NestedLoopJoinOp,
    Planner,
    ScanOp,
)
from repro.sqlparser import parse
from repro.workloads.logs import WORKLOADS

CATALOG = standard_catalog(seed=3, scale=0.12)

#: every query of every workload log (the paper's Listings 1-7)
WORKLOAD_QUERIES = [
    pytest.param(query, id=f"{name}-{i}")
    for name, workload in sorted(WORKLOADS.items())
    for i, query in enumerate(workload.queries)
]

#: extra join / pushdown shapes not exercised by the logs
EXTRA_QUERIES = [
    # explicit inner join with an extra non-equi residual conjunct
    "SELECT gal.u, s.z FROM galaxy as gal JOIN specObj as s "
    "ON s.bestObjID = gal.objID AND s.ra > 213.5",
    # outer joins (both paddings), equi and non-equi conditions
    "SELECT t.p, s.ra FROM T as t LEFT JOIN specObj as s ON t.p = s.specObjID",
    "SELECT t.p, s.ra FROM T as t RIGHT JOIN specObj as s ON t.p = s.specObjID",
    "SELECT t.p, c.hp FROM T as t LEFT JOIN Cars as c ON t.p > c.id",
    # three-way comma join with mixed equality and pushdown conjuncts
    "SELECT t.p, c.id, gal.objID FROM T as t, Cars as c, galaxy as gal "
    "WHERE t.p = c.id AND c.id = gal.objID AND c.hp > 60",
    # comma join without any equality: must stay a cross join
    "SELECT t.a, c.origin FROM T as t, Cars as c WHERE t.a > 3 LIMIT 7",
    # self join with aliases
    "SELECT a.id, b.id FROM Cars as a, Cars as b "
    "WHERE a.id = b.id AND a.hp > 120",
    # join feeding grouping and HAVING
    "SELECT gal.objID, count(*) FROM galaxy as gal, specObj as s "
    "WHERE s.bestObjID = gal.objID GROUP BY gal.objID HAVING count(*) >= 1",
    # LIMIT without ORDER BY over a join: row order must be preserved
    "SELECT gal.objID, s.ra FROM galaxy as gal, specObj as s "
    "WHERE s.bestObjID = gal.objID LIMIT 5",
    # subquery in FROM alongside pushdown on the outer query
    "SELECT t FROM (SELECT sum(total) as t FROM sales GROUP BY city) sub "
    "WHERE t > 0",
    # IN subquery and scalar subquery conjuncts are never pushed
    "SELECT hour FROM flights WHERE hour IN "
    "(SELECT hour FROM flights WHERE hour < 3) AND delay > 0",
    "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)",
    # DISTINCT + ORDER BY + LIMIT over a planned join
    "SELECT DISTINCT gal.objID, s.dec FROM galaxy as gal, specObj as s "
    "WHERE s.bestObjID = gal.objID ORDER BY s.dec LIMIT 9",
    # unqualified equality that resolves within a single table: pushed, not a key
    "SELECT p FROM T WHERE a = b",
    # projection pruning with aggregates only
    "SELECT count(*) FROM flights WHERE dist > 500",
]


@pytest.fixture(scope="module")
def interpreted():
    return Executor(CATALOG, enable_cache=False, use_planner=False)


@pytest.fixture(scope="module")
def planned():
    return Executor(CATALOG, enable_cache=False, use_planner=True)


def assert_equivalent(interpreted, planned, sql):
    expected = interpreted.execute_sql(sql)
    actual = planned.execute_sql(sql)
    assert [
        (c.name, c.dtype, c.source, c.is_aggregate) for c in expected.columns
    ] == [(c.name, c.dtype, c.source, c.is_aggregate) for c in actual.columns]
    assert expected.rows == actual.rows, f"row mismatch for: {sql}"


@pytest.mark.parametrize("sql", WORKLOAD_QUERIES)
def test_workload_query_equivalence(interpreted, planned, sql):
    """Property: plans are result-identical to the interpreter on every
    query of the paper's workload logs."""
    assert_equivalent(interpreted, planned, sql)


@pytest.mark.parametrize("sql", EXTRA_QUERIES)
def test_join_and_pushdown_equivalence(interpreted, planned, sql):
    assert_equivalent(interpreted, planned, sql)


@settings(max_examples=25, deadline=None)
@given(
    ra_lo=st.floats(212.5, 214.5),
    ra_span=st.floats(0.0, 1.5),
    dec_lo=st.floats(-1.2, 0.2),
    dec_span=st.floats(0.0, 0.8),
)
def test_sdss_join_equivalence_property(ra_lo, ra_span, dec_lo, dec_span):
    """Hash-join + pushdown plans match the interpreter for arbitrary
    range predicates over the SDSS join (the paper's Listing 5 shape)."""
    interpreted = Executor(CATALOG, enable_cache=False, use_planner=False)
    planned = Executor(CATALOG, enable_cache=False, use_planner=True)
    sql = (
        "SELECT DISTINCT gal.objID, gal.u, s.ra, s.dec "
        "FROM galaxy as gal, specObj as s "
        f"WHERE s.bestObjID = gal.objID AND s.ra BETWEEN {ra_lo} AND {ra_lo + ra_span} "
        f"AND s.dec BETWEEN {dec_lo} AND {dec_lo + dec_span}"
    )
    assert_equivalent(interpreted, planned, sql)


# -- plan shape ---------------------------------------------------------------


def plan_for(sql):
    return Planner(CATALOG).plan(parse(sql).children[0] if parse(sql).label == "subquery" else parse(sql))


def test_comma_join_compiles_to_hash_join():
    plan = plan_for(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID"
    )
    assert isinstance(plan.source, HashJoinOp)
    assert plan.residual_where is None


def test_explicit_join_compiles_to_hash_join_with_residual():
    plan = plan_for(
        "SELECT gal.u FROM galaxy as gal JOIN specObj as s "
        "ON s.bestObjID = gal.objID AND s.ra > 213.5"
    )
    assert isinstance(plan.source, HashJoinOp)
    assert plan.source.residual is not None


def test_non_equi_join_falls_back_to_nested_loop():
    plan = plan_for(
        "SELECT t.p FROM T as t JOIN Cars as c ON t.p > c.id"
    )
    assert isinstance(plan.source, NestedLoopJoinOp)


def test_comma_join_without_equality_stays_cross():
    plan = plan_for("SELECT t.a FROM T as t, Cars as c WHERE t.a > 3")
    assert isinstance(plan.source, CrossJoinOp)


def test_single_table_predicates_are_pushed_to_scans():
    plan = plan_for(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5 AND gal.u < 20"
    )
    join = plan.source
    assert isinstance(join, HashJoinOp)
    assert plan.residual_where is None
    scans = [join.left, join.right]
    pushed = [p for scan in scans if isinstance(scan, ScanOp) for p in scan.predicates]
    assert len(pushed) == 2


def test_subquery_predicates_are_never_pushed():
    plan = plan_for(
        "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)"
    )
    assert isinstance(plan.source, ScanOp)
    assert plan.source.predicates == []
    assert plan.residual_where is not None


def test_scans_prune_unreferenced_columns():
    plan = plan_for("SELECT hp FROM Cars WHERE mpg > 20")
    scan = plan.source
    assert isinstance(scan, ScanOp)
    assert scan.column_indices is not None
    assert [c.name for c in scan.schema] == ["hp", "mpg"]


def test_star_projection_disables_pruning():
    plan = plan_for("SELECT * FROM Cars WHERE mpg > 20")
    scan = plan.source
    assert isinstance(scan, ScanOp)
    assert scan.column_indices is None


def test_correlated_references_keep_columns():
    # `ss.city` is referenced only inside the HAVING subquery; the outer
    # scan must still materialise it
    plan = plan_for(
        "SELECT product, sum(total) FROM sales as ss GROUP BY product "
        "HAVING sum(total) >= (SELECT max(total) FROM sales as s "
        "WHERE s.city = ss.city)"
    )
    scan = plan.source
    assert isinstance(scan, ScanOp)
    assert "city" in [c.name for c in scan.schema]


def test_explain_renders_plan_stages():
    ex = Executor(CATALOG)
    text = ex.explain_sql(
        "SELECT gal.objID, count(*) FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5 "
        "GROUP BY gal.objID ORDER BY gal.objID LIMIT 10"
    )
    for stage in ("Limit", "OrderBy", "GroupAggregate", "HashJoin", "Scan"):
        assert stage in text, text


def test_plan_stats_are_collected():
    ex = Executor(CATALOG, enable_cache=False)
    ex.execute_sql(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5"
    )
    assert ex.stats.plans_compiled >= 1
    assert ex.stats.hash_joins_planned >= 1
    assert ex.stats.hash_joins_executed >= 1
    assert ex.stats.predicates_pushed >= 1
    # re-execution reuses the compiled plan
    ex.execute_sql(
        "SELECT gal.objID FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.ra > 213.5"
    )
    assert ex.stats.plan_cache_hits >= 1


def test_nan_join_keys_never_match():
    """nan == nan is false, so hash joins must skip NaN keys exactly like the
    interpreter's `=` does (a dict lookup would match NaN via identity)."""
    from repro.database import Catalog, Column, DataType, Table

    table = Table.from_rows(
        "m",
        [Column("k", DataType.FLOAT), Column("v", DataType.INT)],
        [(float("nan"), 1), (2.0, 2)],
    )
    catalog = Catalog([table])
    sql = "SELECT a.v, b.v FROM m as a, m as b WHERE a.k = b.k"
    interpreted = Executor(catalog, enable_cache=False, use_planner=False)
    planned = Executor(catalog, enable_cache=False, use_planner=True)
    assert interpreted.execute_sql(sql).rows == planned.execute_sql(sql).rows == [(2, 2)]
