"""Unit and integration tests for the relational query executor."""

import pytest

from repro.database import DataType, ExecutionError, Executor, standard_catalog
from repro.database.functions import TODAY
from repro.sqlparser import parse


@pytest.fixture(scope="module")
def ex():
    return Executor(standard_catalog(seed=3, scale=0.12))


def test_simple_projection(ex):
    result = ex.execute_sql("SELECT hp, mpg FROM Cars")
    assert result.column_names() == ["hp", "mpg"]
    assert len(result) == len(ex.catalog.table("Cars"))


def test_star_expansion(ex):
    result = ex.execute_sql("SELECT * FROM T")
    assert result.column_names() == ["p", "a", "b"]


def test_where_filter_and_between(ex):
    result = ex.execute_sql("SELECT hp FROM Cars WHERE hp BETWEEN 100 AND 150")
    assert all(100 <= row[0] <= 150 for row in result.rows)


def test_comparison_and_boolean_logic(ex):
    result = ex.execute_sql(
        "SELECT p, a FROM T WHERE a = 1 OR (a = 2 AND p > 3)"
    )
    for p, a in result.rows:
        assert a == 1 or (a == 2 and p > 3)


def test_in_list_predicate(ex):
    result = ex.execute_sql("SELECT origin FROM Cars WHERE origin IN ('USA', 'Japan')")
    assert set(result.values("origin")) <= {"USA", "Japan"}


def test_projection_of_boolean_expression(ex):
    result = ex.execute_sql("SELECT mpg, id in (1, 2) as color FROM Cars")
    assert result.columns[1].name == "color"
    assert set(result.values("color")) <= {True, False}
    assert sum(1 for v in result.values("color") if v) == 2


def test_group_by_count(ex):
    result = ex.execute_sql("SELECT origin, count(*) FROM Cars GROUP BY origin")
    assert result.column_names() == ["origin", "count"]
    assert len(result) == 3
    total = sum(row[1] for row in result.rows)
    assert total == len(ex.catalog.table("Cars"))


def test_aggregates_sum_avg_min_max(ex):
    result = ex.execute_sql(
        "SELECT sum(total), avg(total), min(total), max(total) FROM sales"
    )
    s, a, lo, hi = result.rows[0]
    assert lo <= a <= hi
    assert s == pytest.approx(a * len(ex.catalog.table("sales")))


def test_count_distinct(ex):
    result = ex.execute_sql("SELECT count(DISTINCT origin) FROM Cars")
    assert result.rows[0][0] == 3


def test_aggregate_without_group_by_returns_one_row(ex):
    result = ex.execute_sql("SELECT count(*) FROM flights WHERE delay > 1000000")
    assert result.rows == [(0,)]


def test_having_filters_groups(ex):
    result = ex.execute_sql(
        "SELECT origin, count(*) FROM Cars GROUP BY origin HAVING count(*) > 0"
    )
    assert len(result) == 3
    result = ex.execute_sql(
        "SELECT origin, count(*) FROM Cars GROUP BY origin HAVING count(*) > 100000"
    )
    assert len(result) == 0


def test_distinct_rows(ex):
    result = ex.execute_sql("SELECT DISTINCT origin FROM Cars")
    assert len(result) == 3


def test_order_by_and_limit(ex):
    result = ex.execute_sql("SELECT hp FROM Cars ORDER BY hp DESC LIMIT 5")
    values = [row[0] for row in result.rows]
    assert values == sorted(values, reverse=True)
    assert len(values) == 5


def test_order_by_alias(ex):
    result = ex.execute_sql(
        "SELECT origin, count(*) as n FROM Cars GROUP BY origin ORDER BY n"
    )
    counts = [row[1] for row in result.rows]
    assert counts == sorted(counts)


def test_comma_join_with_predicate(ex):
    result = ex.execute_sql(
        "SELECT gal.objID, s.ra FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID"
    )
    assert len(result) == len(ex.catalog.table("galaxy"))
    assert result.columns[0].source == "galaxy.objID"


def test_explicit_inner_join(ex):
    result = ex.execute_sql(
        "SELECT gal.u, s.z FROM galaxy as gal JOIN specObj as s "
        "ON s.bestObjID = gal.objID"
    )
    assert len(result) == len(ex.catalog.table("galaxy"))


def test_left_outer_join_pads_nulls(ex):
    result = ex.execute_sql(
        "SELECT t.p, s.ra FROM T as t LEFT JOIN specObj as s ON t.p = s.specObjID"
    )
    # no specObj id is a small integer, so every row is padded with NULL
    assert len(result) == len(ex.catalog.table("T"))
    assert all(row[1] is None for row in result.rows)


def test_subquery_in_from(ex):
    result = ex.execute_sql(
        "SELECT t FROM (SELECT sum(total) as t FROM sales GROUP BY city) sub"
    )
    assert result.column_names() == ["t"]
    assert len(result) == 3


def test_scalar_subquery_in_where(ex):
    result = ex.execute_sql(
        "SELECT total FROM sales WHERE total >= (SELECT max(total) FROM sales)"
    )
    assert len(result) >= 1
    top = ex.execute_sql("SELECT max(total) FROM sales").rows[0][0]
    assert all(row[0] == top for row in result.rows)


def test_correlated_having_subquery(ex):
    """The sales-dashboard query: top product per city via correlated HAVING."""
    result = ex.execute_sql(
        "SELECT city, product, sum(total) FROM sales as ss "
        "GROUP BY city, product "
        "HAVING sum(total) >= (SELECT max(t) FROM "
        "(SELECT sum(total) as t FROM sales as s WHERE s.city = ss.city "
        "GROUP BY s.city, s.product))"
    )
    cities = [row[0] for row in result.rows]
    assert len(set(cities)) == len(cities) == 3
    # cross-check each winner directly
    for city, product, total in result.rows:
        per_product = ex.execute_sql(
            f"SELECT product, sum(total) FROM sales WHERE city = '{city}' "
            "GROUP BY product"
        )
        best = max(row[1] for row in per_product.rows)
        assert total == pytest.approx(best)


def test_date_function_filter(ex):
    result = ex.execute_sql(
        "SELECT date, cases FROM covid WHERE state = 'CA' "
        "AND date > date(today(), '-7 days')"
    )
    assert 1 <= len(result) <= 7
    assert all(row[0] > (TODAY.isoformat()[:8] + "00") for row in result.rows)


def test_in_subquery(ex):
    result = ex.execute_sql(
        "SELECT hour FROM flights WHERE hour IN (SELECT hour FROM flights WHERE hour < 3)"
    )
    assert set(result.values("hour")) <= {0, 1, 2}


def test_like_operator(ex):
    result = ex.execute_sql("SELECT product FROM sales WHERE product LIKE '%beauty%'")
    assert set(result.values("product")) == {"Health and beauty"}


def test_case_expression(ex):
    result = ex.execute_sql(
        "SELECT CASE WHEN hp > 150 THEN 'fast' ELSE 'slow' END as speed FROM Cars"
    )
    assert set(result.values("speed")) <= {"fast", "slow"}


def test_output_types_and_sources(ex):
    result = ex.execute_sql("SELECT hour, count(*) FROM flights GROUP BY hour")
    assert result.columns[0].source == "flights.hour"
    assert result.columns[0].dtype is DataType.INT
    assert result.columns[1].is_aggregate


def test_duplicate_output_names_are_disambiguated(ex):
    result = ex.execute_sql("SELECT sum(total), sum(invoice) FROM sales")
    assert result.column_names() == ["sum", "sum_1"]


def test_unknown_column_raises(ex):
    with pytest.raises(ExecutionError):
        ex.execute_sql("SELECT nonexistent FROM Cars WHERE nonexistent = 1")


def test_unknown_node_raises(ex):
    with pytest.raises(ExecutionError):
        ex.execute(parse("SELECT a FROM T").children[0])


def test_result_cache_hits(ex):
    ex.clear_cache()
    hits_before = ex.stats.result_cache_hits
    first = ex.execute_sql("SELECT hour, count(*) FROM flights GROUP BY hour")
    second = ex.execute_sql("SELECT hour, count(*) FROM flights GROUP BY hour")
    # cache hits hand out defensive copies, never the cached object itself
    assert first is not second
    assert first.rows == second.rows
    assert first.column_names() == second.column_names()
    assert ex.stats.result_cache_hits == hits_before + 1
    ex.clear_cache()


def test_result_cache_is_mutation_safe(ex):
    """A caller mutating a returned ResultTable must not poison the cache."""
    ex.clear_cache()
    first = ex.execute_sql("SELECT hour FROM flights LIMIT 3")
    clean_rows = list(first.rows)
    first.rows.append(("poison",))
    first.columns[0].name = "poisoned"
    again = ex.execute_sql("SELECT hour FROM flights LIMIT 3")
    assert again.rows == clean_rows
    assert again.column_names() == ["hour"]
    ex.clear_cache()


def test_result_cache_is_lru_bounded():
    from repro.database import standard_catalog

    ex = Executor(standard_catalog(seed=3, scale=0.12), cache_size=3)
    for limit in range(1, 6):
        ex.execute_sql(f"SELECT hp FROM Cars LIMIT {limit}")
    assert len(ex._cache) == 3
    # the oldest entries were evicted, the newest retained
    misses = ex.stats.result_cache_misses
    ex.execute_sql("SELECT hp FROM Cars LIMIT 5")
    assert ex.stats.result_cache_misses == misses  # hit: still cached
    ex.execute_sql("SELECT hp FROM Cars LIMIT 1")
    assert ex.stats.result_cache_misses == misses + 1  # evicted earlier


def test_division_by_zero_yields_null(ex):
    result = ex.execute_sql("SELECT 1 / 0 FROM T LIMIT 1")
    assert result.rows[0][0] is None
