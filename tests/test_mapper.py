"""Tests for Algorithm 1: the interface mapping search."""

import random

import pytest

from repro.difftree import initial_difftrees, merge_difftrees
from repro.mapping import InterfaceMapper, MapperConfig
from repro.transform import TransformEngine

EXPLORE = [
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 "
    "AND mpg BETWEEN 27 AND 38",
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 "
    "AND mpg BETWEEN 16 AND 30",
]

SECTION2 = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
    "SELECT a, count(*) FROM T GROUP BY a",
]


def refined(catalog, executor, queries):
    engine = TransformEngine(catalog, executor)
    return engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(list(queries)))]
    )


def test_generate_returns_complete_interfaces(catalog, executor, make_mapper):
    trees = refined(catalog, executor, EXPLORE)
    mapper = make_mapper(EXPLORE)
    interfaces = mapper.generate(trees)
    assert interfaces
    for interface in interfaces:
        assert interface.is_complete()
        assert interface.cost is not None
        assert interface.layout is not None
    costs = [i.cost.total for i in interfaces]
    assert costs == sorted(costs)


def test_explore_best_interface_uses_pan_or_zoom(catalog, executor, make_mapper):
    trees = refined(catalog, executor, EXPLORE)
    mapper = make_mapper(EXPLORE)
    best = mapper.best_interface(trees)
    assert best.interaction_kinds() & {"pan", "zoom", "brush-xy"}
    assert best.num_views() == 1
    assert best.views[0].vis.vis_type.name == "point"


def test_section2_interface_covers_every_choice_node(catalog, executor, make_mapper):
    trees = refined(catalog, executor, SECTION2)
    mapper = make_mapper(SECTION2)
    best = mapper.best_interface(trees)
    assert best.is_complete()
    assert best.covered_choice_node_ids() == best.choice_node_ids()
    assert best.mapping_for(min(best.choice_node_ids())) is not None


def test_static_trees_need_no_widgets(catalog, executor, make_mapper):
    trees = initial_difftrees(["SELECT hp, mpg FROM Cars"])
    mapper = make_mapper(["SELECT hp, mpg FROM Cars"])
    best = mapper.best_interface(trees)
    assert best.is_complete()
    assert not best.widgets and not best.interactions
    assert best.num_views() == 1


def test_random_interfaces_are_valid_and_costed(catalog, executor, make_mapper):
    trees = refined(catalog, executor, EXPLORE)
    mapper = make_mapper(EXPLORE)
    rng = random.Random(3)
    samples = mapper.random_interfaces(trees, 4, rng)
    assert len(samples) == 4
    for interface in samples:
        assert interface.cost is not None
        assert interface.layout is not None
    # the first (greedy) sample should not be worse than every random one
    greedy = samples[0].cost.total
    assert greedy <= max(i.cost.total for i in samples)


def test_top_k_limits_result_count(catalog, executor, make_mapper):
    trees = refined(catalog, executor, EXPLORE)
    mapper = make_mapper(EXPLORE, top_k=3)
    assert len(mapper.generate(trees)) <= 3


def test_pruning_statistics_recorded(catalog, executor, make_mapper):
    trees = refined(catalog, executor, SECTION2)
    mapper = make_mapper(SECTION2)
    mapper.generate(trees)
    assert mapper.stats.vis_combinations >= 1
    assert mapper.stats.searchm_calls > 0
    assert mapper.stats.interfaces_evaluated > 0


def test_exact_cover_no_choice_node_bound_twice(catalog, executor, make_mapper):
    trees = refined(catalog, executor, SECTION2)
    mapper = make_mapper(SECTION2)
    for interface in mapper.generate(trees):
        seen = set()
        for mapping in interface.all_mappings():
            assert not (seen & mapping.cover)
            seen |= mapping.cover


def test_safety_check_toggle_changes_candidates(catalog, executor, make_mapper):
    trees = refined(catalog, executor, EXPLORE)
    unsafe_mapper = make_mapper(EXPLORE, check_safety=False)
    safe_mapper = make_mapper(EXPLORE, check_safety=True)
    unsafe = unsafe_mapper.generate(trees)
    safe = safe_mapper.generate(trees)
    assert unsafe and safe  # both complete; safety may only remove candidates


def test_multi_view_mapping_cross_filter(catalog, executor, make_mapper):
    queries = [
        "SELECT hour, count(*) FROM flights GROUP BY hour",
        "SELECT hour, count(*) FROM flights "
        "WHERE delay BETWEEN 0 AND 50 GROUP BY hour",
        "SELECT delay, count(*) FROM flights GROUP BY delay",
        "SELECT delay, count(*) FROM flights "
        "WHERE hour BETWEEN 10 AND 16 GROUP BY delay",
    ]
    from repro.difftree.builder import cluster_by_result_schema

    engine = TransformEngine(catalog, executor)
    clusters = cluster_by_result_schema(initial_difftrees(queries), executor)
    trees = engine.refactor_to_fixpoint([merge_difftrees(c) for c in clusters])
    mapper = make_mapper(queries)
    best = mapper.best_interface(trees)
    assert best.num_views() == 2
    assert best.is_complete()
    # at least one mapping must come from a visualization interaction or a
    # widget bound across the predicate structure
    assert best.all_mappings()


def test_mapper_without_executor_falls_back_to_tables(catalog, make_mapper):
    from repro.cost.model import CostModel
    from repro.difftree.builder import parse_queries

    queries = ["SELECT hp FROM Cars"]
    mapper = InterfaceMapper(
        catalog, None, CostModel(parse_queries(queries)), MapperConfig()
    )
    best = mapper.best_interface(initial_difftrees(queries))
    assert best.views[0].vis.vis_type.name == "table"
