"""Tests for the widget library, interaction model and safety check (§4.2, Table 2)."""

from repro.difftree import initial_difftrees, merge_difftrees
from repro.difftree.nodes import AnyNode, ValNode
from repro.mapping import (
    WIDGET_TYPES,
    candidate_interactions,
    candidate_visualizations,
    candidate_widgets,
    conflicting,
    interaction_streams,
    is_safe,
    stream_schema,
)
from repro.mapping.widgets import (
    CHECKBOX,
    RADIO,
    RANGE_SLIDER,
    SLIDER,
    TEXTBOX,
    TOGGLE,
    WidgetType,
    register_widget,
    top_choice_nodes,
)
from repro.sqlparser.ast_nodes import L
from repro.transform import TransformEngine


def refined_tree(catalog, executor, queries):
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(list(queries)))]
    )
    return trees[0]


# -- Table 2 widget schemas -----------------------------------------------------


def test_table2_widget_schemas_and_constraints():
    names = {w.name for w in WIDGET_TYPES}
    assert {"radio", "dropdown", "textbox", "toggle", "checkbox", "slider",
            "range_slider", "button", "adder"} <= names
    assert RANGE_SLIDER.constraint is not None
    assert RANGE_SLIDER.constraint([(1, 3), (2, 4)])
    assert not RANGE_SLIDER.constraint([(5, 3)])
    assert not TEXTBOX.enumerates_options
    assert TOGGLE.is_layout_widget


def test_register_widget_extensibility():
    custom = WidgetType("colorpicker", TEXTBOX.schema)
    register_widget(custom)
    try:
        assert custom in WIDGET_TYPES
    finally:
        WIDGET_TYPES.remove(custom)


# -- widget candidates --------------------------------------------------------------


def test_val_node_gets_slider_with_catalog_domain(catalog, executor):
    tree = refined_tree(
        catalog,
        executor,
        [
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE a = 3 GROUP BY p",
        ],
    )
    val = next(n for n in tree.root.walk() if isinstance(n, ValNode))
    cands = candidate_widgets(tree, val, catalog)
    names = {c.widget.name for c in cands}
    assert "slider" in names and "radio" in names
    slider = next(c for c in cands if c.widget.name == "slider")
    lo, hi = slider.domain
    assert lo <= 1 and hi >= 3
    assert slider.cover == frozenset({val.node_id})


def test_string_val_has_no_slider(catalog, executor):
    tree = refined_tree(
        catalog,
        executor,
        [
            "SELECT date, cases FROM covid WHERE state = 'CA'",
            "SELECT date, cases FROM covid WHERE state = 'WA'",
        ],
    )
    vals = [n for n in tree.root.walk() if isinstance(n, ValNode)]
    assert vals
    for val in vals:
        names = {c.widget.name for c in candidate_widgets(tree, val, catalog)}
        assert "slider" not in names
        assert {"radio", "dropdown"} <= names


def test_opt_node_gets_toggle(catalog, executor):
    tree = refined_tree(
        catalog,
        executor,
        ["SELECT date, price FROM sp500",
         "SELECT date, price FROM sp500 WHERE date > '2001-01-01'"],
    )
    opt = next(
        n for n in tree.root.walk() if isinstance(n, AnyNode) and n.is_opt
    )
    names = {c.widget.name for c in candidate_widgets(tree, opt, catalog)}
    assert "toggle" in names
    toggle = next(
        c for c in candidate_widgets(tree, opt, catalog) if c.widget.name == "toggle"
    )
    assert toggle.cover == frozenset({opt.node_id})


def test_range_slider_on_between_ancestor(catalog, executor, explore_asts):
    tree = refined_tree(catalog, executor, [
        "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 60",
        "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 60 AND 90",
    ])
    between = next(n for n in tree.root.walk() if n.label == L.BETWEEN)
    cands = candidate_widgets(tree, between, catalog)
    names = {c.widget.name for c in cands}
    assert "range_slider" in names
    rs = next(c for c in cands if c.widget.name == "range_slider")
    assert len(rs.cover) == 2


def test_top_choice_nodes_stops_at_first_choice(catalog, executor):
    tree = refined_tree(
        catalog,
        executor,
        ["SELECT date, price FROM sp500",
         "SELECT date, price FROM sp500 WHERE date > '2001-01-01'"],
    )
    opt = next(n for n in tree.root.walk() if isinstance(n, AnyNode) and n.is_opt)
    tops = top_choice_nodes(opt)
    assert tops == [opt]
    tops_root = top_choice_nodes(tree.root)
    assert opt in tops_root and len(tops_root) >= 1


def test_widget_options_and_size_estimates(catalog, executor, section2_asts):
    tree = refined_tree(catalog, executor, [
        "SELECT p, count(*) FROM T GROUP BY p",
        "SELECT a, count(*) FROM T GROUP BY a",
    ])
    any_node = next(
        n for n in tree.root.walk()
        if isinstance(n, AnyNode) and not n.is_opt and not isinstance(n, ValNode)
    )
    radio = next(
        c for c in candidate_widgets(tree, any_node, catalog)
        if c.widget.name == "radio"
    )
    assert len(radio.options) == len(any_node.children)
    width, height = radio.estimated_size()
    assert width > 0 and height > RADIO.base_height
    assert radio.domain_size == len(radio.options)
    assert "radio" in radio.describe()


# -- interaction candidates and safety ----------------------------------------------


def make_explore_setup(catalog, executor):
    tree = refined_tree(catalog, executor, [
        "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 "
        "AND mpg BETWEEN 27 AND 38",
        "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 "
        "AND mpg BETWEEN 16 AND 30",
    ])
    vis = candidate_visualizations(tree.result_schema(executor), catalog)[0]
    return tree, vis


def test_interaction_streams_depend_on_vis_mapping(catalog, executor):
    tree, vis = make_explore_setup(catalog, executor)
    assert vis.vis_type.name == "point"
    pan = interaction_streams(vis, "pan")
    names = {s.name for s in pan}
    assert names == {"x-range", "y-range"}
    click = interaction_streams(vis, "click")
    assert any(s.kind == "point" for s in click)
    # stream schemas are expressed over the result attributes
    schema = stream_schema(vis, pan[0])
    assert schema.arity() == 2


def test_pan_candidate_covers_both_range_predicates(catalog, executor):
    tree, vis = make_explore_setup(catalog, executor)
    icand = candidate_interactions([tree], [vis], catalog, executor)
    pan_candidates = [
        c for cands in icand.values() for c in cands if c.interaction == "pan"
    ]
    assert pan_candidates
    assert any(len(c.cover) == 4 for c in pan_candidates)


def test_interactions_do_not_bind_structural_choices(catalog, executor):
    tree = refined_tree(catalog, executor, [
        "SELECT p, count(*) FROM T GROUP BY p",
        "SELECT a, count(*) FROM T GROUP BY a",
    ])
    vis = candidate_visualizations(tree.result_schema(executor), catalog)[0]
    icand = candidate_interactions([tree], [vis], catalog, executor)
    # the projection/group-by ANY chooses between attributes, not values, so it
    # must not receive any visualization-interaction candidates
    structural = [
        n for n in tree.root.walk()
        if isinstance(n, AnyNode) and not n.is_opt
        and any(c.label == L.COLUMN for c in n.children)
    ]
    for node in structural:
        assert not icand.get(node.node_id)


def test_safety_rejects_unreachable_bindings(catalog, executor):
    """A VAL binding outside the rendered data cannot be expressed by clicking."""
    tree = refined_tree(catalog, executor, [
        "SELECT hour, count(*) FROM flights WHERE hour BETWEEN 0 AND 5 GROUP BY hour",
        "SELECT hour, count(*) FROM flights WHERE hour BETWEEN 2 AND 90 GROUP BY hour",
    ])
    vis = candidate_visualizations(tree.result_schema(executor), catalog)[0]
    icand_checked = candidate_interactions([tree], [vis], catalog, executor, check_safety=True)
    icand_unchecked = candidate_interactions([tree], [vis], catalog, executor, check_safety=False)
    checked_total = sum(len(v) for v in icand_checked.values())
    unchecked_total = sum(len(v) for v in icand_unchecked.values())
    # the literal 90 lies outside the hour domain (0–23), so at least the
    # data-bounded interactions (brush/click) must be filtered out
    assert checked_total <= unchecked_total


def test_is_safe_accepts_pan_always(catalog, executor):
    tree, vis = make_explore_setup(catalog, executor)
    icand = candidate_interactions([tree], [vis], catalog, executor, check_safety=False)
    pan = next(
        c for cands in icand.values() for c in cands if c.interaction == "pan"
    )
    assert is_safe(pan, tree, tree, executor)


def test_conflicting_interactions_on_same_view(catalog, executor):
    tree, vis = make_explore_setup(catalog, executor)
    icand = candidate_interactions([tree], [vis], catalog, executor, check_safety=False)
    all_cands = [c for cands in icand.values() for c in cands]
    pans = [c for c in all_cands if c.interaction == "pan"]
    brushes = [c for c in all_cands if c.interaction.startswith("brush")]
    if pans and brushes:
        assert conflicting(pans[0], brushes[0])
    assert conflicting(pans[0], pans[0])
