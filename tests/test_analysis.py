"""repro.analysis: per-checker fixture triples, framework, CLI, self-run.

Every checker gets (at least) one snippet that must fire, one that must
not, and one silenced by a ``# repro: allow-<rule>`` pragma; the framework
tests cover pragma parsing, baseline matching under line drift, and the
CLI's output formats and exit-code contract.  The final test runs the
analyzer over the repository itself and is the static mirror of the CI
``static-analysis`` gate: zero unsuppressed findings on ``src`` + ``tests``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    all_checkers,
    analyze_source,
    build_project,
    project_from_sources,
    run_checkers,
)
from repro.analysis.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings_for(source: str, rule: str, path: str = "snippet.py"):
    result = analyze_source(textwrap.dedent(source), path=path, select=[rule])
    return [f for f in result.findings if f.rule == rule], result.suppressed


def project_findings(sources: dict[str, str], rule: str):
    project = project_from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )
    result = run_checkers(project, all_checkers([rule]))
    return [f for f in result.findings if f.rule == rule], result.suppressed


# -- unordered-iteration -------------------------------------------------------


def test_unordered_iteration_fires_on_set_loop():
    fired, _ = findings_for(
        """
        def collect(items):
            pending = set(items)
            out = []
            for item in pending:
                out.append(item)
            return out
        """,
        "unordered-iteration",
    )
    assert len(fired) == 1
    assert "sorted" in fired[0].message


def test_unordered_iteration_fires_on_inline_set_and_join():
    fired, _ = findings_for(
        """
        def label(names):
            return ",".join({n.lower() for n in names})
        """,
        "unordered-iteration",
    )
    assert len(fired) == 1


def test_unordered_iteration_quiet_on_sorted_and_membership():
    fired, _ = findings_for(
        """
        def collect(items, probe):
            pending = set(items)
            hits = [probe in pending]
            total = len(pending) + sum(pending)
            for item in sorted(pending):
                hits.append(item)
            return hits, total
        """,
        "unordered-iteration",
    )
    assert fired == []


def test_unordered_iteration_quiet_on_reused_name():
    # a name assigned both a list and a set stays ambiguous: no finding
    # (regression guard for the columnar IN_LIST `options` false positive)
    fired, _ = findings_for(
        """
        def evaluate(children, rows):
            options = [c for c in children]
            chosen = [o for o in options]
            options = set(r[0] for r in rows)
            return chosen, (1 in options)
        """,
        "unordered-iteration",
    )
    assert fired == []


def test_unordered_iteration_dict_views_only_in_key_producers():
    producer = """
    def mapping_key(parts):
        return tuple(k for k in parts.keys())
    """
    plain = """
    def render(parts):
        return [k for k in parts.keys()]
    """
    fired, _ = findings_for(producer, "unordered-iteration")
    assert len(fired) == 1 and "insertion order" in fired[0].message
    fired, _ = findings_for(plain, "unordered-iteration")
    assert fired == []


def test_unordered_iteration_pragma_suppresses():
    fired, suppressed = findings_for(
        """
        def collect(items):
            pending = set(items)
            # order genuinely irrelevant here
            # repro: allow-unordered-iteration -- consumed order-free
            return [item for item in pending]
        """,
        "unordered-iteration",
    )
    assert fired == []
    assert len(suppressed) == 1


# -- cache-key-field -----------------------------------------------------------

_EXECUTOR_TEMPLATE = """
class Planner:
    def __init__(self, catalog, allow_reorder=True, fold_constants=True):
        self.allow_reorder = allow_reorder
        self.fold_constants = fold_constants


class Executor:
    def __init__(self, catalog, allow_reorder=True, fold_constants=True):
        self.allow_reorder = allow_reorder
        self.fold_constants = fold_constants
        self.planner = Planner(
            catalog,
            allow_reorder=allow_reorder,
            fold_constants=fold_constants,
        )

    def _plan_for(self, stmt):
        return plan_key(
            stmt.fingerprint(),
            self.allow_reorder,
            self.fold_constants,
        )
"""


def test_cache_key_fires_on_missing_flag():
    sources = {
        "executor.py": _EXECUTOR_TEMPLATE,
        "plancache.py": """
        def plan_key(fingerprint, allow_reorder):
            return (fingerprint, allow_reorder)
        """,
    }
    fired, _ = project_findings(sources, "cache-key-field")
    assert any("fold_constants" in f.message for f in fired)


def test_cache_key_quiet_when_all_flags_threaded():
    sources = {
        "executor.py": _EXECUTOR_TEMPLATE,
        "plancache.py": """
        def plan_key(fingerprint, allow_reorder, fold_constants):
            return (fingerprint, allow_reorder, fold_constants)
        """,
    }
    fired, _ = project_findings(sources, "cache-key-field")
    assert fired == []


def test_cache_key_fires_on_incomplete_call_site():
    sources = {
        "executor.py": """
        class Planner:
            def __init__(self, catalog, allow_reorder=True):
                self.allow_reorder = allow_reorder


        class Executor:
            def __init__(self, catalog, allow_reorder=True):
                self.allow_reorder = allow_reorder
                self.planner = Planner(catalog, allow_reorder=allow_reorder)

            def _plan_for(self, stmt):
                return plan_key(stmt.fingerprint())
        """,
        "plancache.py": """
        def plan_key(fingerprint, allow_reorder=True):
            return (fingerprint, allow_reorder)
        """,
    }
    fired, _ = project_findings(sources, "cache-key-field")
    assert any("call does not thread" in f.message for f in fired)


def test_cache_key_pragma_suppresses():
    sources = {
        "executor.py": """
        class Planner:
            def __init__(self, catalog, debug_trace=False):
                self.debug_trace = debug_trace


        class Executor:
            def __init__(self, catalog, debug_trace=False):
                self.debug_trace = debug_trace
                # tracing changes no compiled artifact, only log volume
                # repro: allow-cache-key-field -- no effect on plans
                self.planner = Planner(catalog, debug_trace=debug_trace)
        """,
        "plancache.py": """
        def plan_key(fingerprint):
            return (fingerprint,)
        """,
    }
    fired, suppressed = project_findings(sources, "cache-key-field")
    assert fired == []
    assert len(suppressed) == 1


# -- unlocked-shared-mutation --------------------------------------------------

_LOCKED_CLASS = """
import threading
from collections import OrderedDict


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self.hits = 0

    def get(self, key):
        {body}
"""


def test_lock_guard_fires_on_unlocked_mutation():
    fired, _ = findings_for(
        _LOCKED_CLASS.format(
            body="self.hits += 1\n        return self._entries.get(key)"
        ),
        "unlocked-shared-mutation",
    )
    assert len(fired) == 1
    assert "self.hits" in fired[0].message


def test_lock_guard_quiet_under_lock_and_in_init():
    fired, _ = findings_for(
        _LOCKED_CLASS.format(
            body=(
                "with self._lock:\n"
                "            self.hits += 1\n"
                "            self._entries[key] = 1\n"
                "            return self._entries.get(key)"
            )
        ),
        "unlocked-shared-mutation",
    )
    assert fired == []


def test_lock_guard_quiet_in_getstate():
    fired, _ = findings_for(
        """
        import threading

        class Spec:
            def __init__(self):
                self._lock = threading.Lock()
                self.entries = {}

            def __getstate__(self):
                self.entries = {}
                return self.__dict__
        """,
        "unlocked-shared-mutation",
    )
    assert fired == []


def test_lock_guard_fires_on_module_global_and_respects_pragma():
    fired, _ = findings_for(
        """
        SHARED_REGISTRY = {}

        def put(name, value):
            SHARED_REGISTRY[name] = value
        """,
        "unlocked-shared-mutation",
    )
    assert len(fired) == 1 and "SHARED_REGISTRY" in fired[0].message

    fired, suppressed = findings_for(
        """
        SHARED_REGISTRY = {}

        def put(name, value):
            # repro: allow-unlocked-shared-mutation -- import-time only
            SHARED_REGISTRY[name] = value
        """,
        "unlocked-shared-mutation",
    )
    assert fired == []
    assert len(suppressed) == 1


# -- unpicklable-worker-state --------------------------------------------------


def test_pickle_safety_fires_on_lambda_attribute():
    fired, _ = project_findings(
        {
            "spec.py": """
            class JobWorkerSpec:
                def __init__(self, payload):
                    self.transform = lambda row: row
            """
        },
        "unpicklable-worker-state",
    )
    assert len(fired) == 1 and "lambda" in fired[0].message


def test_pickle_safety_fires_transitively_through_annotations():
    fired, _ = project_findings(
        {
            "engine.py": """
            import threading

            class Engine:
                def __init__(self):
                    self._guard = threading.Lock()
            """,
            "spec.py": """
            from engine import Engine

            class JobWorkerSpec:
                engine: Engine
            """,
        },
        "unpicklable-worker-state",
    )
    assert len(fired) == 1 and "threading.Lock" in fired[0].message


def test_pickle_safety_quiet_with_getstate_exemption():
    fired, _ = project_findings(
        {
            "spec.py": """
            class JobWorkerSpec:
                def __init__(self):
                    self.callback = lambda: None

                def __getstate__(self):
                    state = self.__dict__.copy()
                    state["callback"] = None
                    return state
            """
        },
        "unpicklable-worker-state",
    )
    assert fired == []


def test_pickle_safety_quiet_on_default_factory_lambda():
    fired, _ = project_findings(
        {
            "spec.py": """
            from dataclasses import dataclass, field

            @dataclass
            class JobWorkerSpec:
                rows: list = field(default_factory=lambda: [])
            """
        },
        "unpicklable-worker-state",
    )
    assert fired == []


def test_pickle_safety_pragma_suppresses():
    fired, suppressed = project_findings(
        {
            "spec.py": """
            class JobWorkerSpec:
                def __init__(self):
                    # repro: allow-unpicklable-worker-state -- serial-only spec
                    self.callback = lambda: None
            """
        },
        "unpicklable-worker-state",
    )
    assert fired == []
    assert len(suppressed) == 1


# -- nondeterministic-key ------------------------------------------------------


def test_nondet_key_fires_in_key_producer():
    fired, _ = findings_for(
        """
        class Tree:
            def fingerprint(self):
                return f"{id(self)}"
        """,
        "nondeterministic-key",
    )
    assert len(fired) == 1 and "id(...)" in fired[0].message


def test_nondet_key_fires_on_key_assignment():
    fired, _ = findings_for(
        """
        import os

        def lookup(cache, stmt):
            cache_key = (stmt.text, os.environ["SEED"])
            return cache.get(cache_key)
        """,
        "nondeterministic-key",
    )
    assert len(fired) == 1 and "os.environ" in fired[0].message


def test_nondet_key_quiet_outside_key_contexts():
    fired, _ = findings_for(
        """
        def debug_label(obj):
            return hex(id(obj))

        def fingerprint(tree):
            return tree.canonical_text()
        """,
        "nondeterministic-key",
    )
    assert fired == []


def test_nondet_key_pragma_suppresses():
    fired, suppressed = findings_for(
        """
        def cover_key(cands):
            # repro: allow-nondeterministic-key -- referents pinned by value
            key = tuple(id(c) for c in cands)
            return key
        """,
        "nondeterministic-key",
    )
    assert fired == []
    assert len(suppressed) == 1


# -- shm-lifecycle -------------------------------------------------------------


def test_shm_lifecycle_fires_on_unowned_creation():
    fired, _ = findings_for(
        """
        from multiprocessing import shared_memory

        def leaky(nbytes):
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            seg.buf[:4] = b"data"
            return seg.name
        """,
        "shm-lifecycle",
    )
    assert len(fired) == 1
    assert "leaky" in fired[0].message


def test_shm_lifecycle_quiet_on_try_finally_and_except_cleanup():
    fired, _ = findings_for(
        """
        from multiprocessing.shared_memory import SharedMemory

        def scoped(nbytes):
            seg = SharedMemory(create=True, size=nbytes)
            try:
                return bytes(seg.buf)
            finally:
                seg.close()

        def creates_then_populates(nbytes, payload):
            seg = SharedMemory(create=True, size=nbytes)
            try:
                seg.buf[: len(payload)] = payload
            except Exception:
                seg.close()
                seg.unlink()
                raise
            return seg
        """,
        "shm-lifecycle",
    )
    assert fired == []


def test_shm_lifecycle_quiet_on_class_managed_segments():
    fired, _ = findings_for(
        """
        from multiprocessing.shared_memory import SharedMemory

        class Registry:
            def __init__(self):
                self._segments = []

            def register(self, nbytes):
                seg = SharedMemory(create=True, size=nbytes)
                self._segments.append(seg)
                return seg.name

            def close(self):
                for seg in self._segments:
                    seg.close()
                    seg.unlink()
                self._segments.clear()
        """,
        "shm-lifecycle",
    )
    assert fired == []


def test_shm_lifecycle_quiet_on_finalizer_backstop():
    fired, _ = findings_for(
        """
        import weakref
        from multiprocessing.shared_memory import SharedMemory

        class Registry:
            def __init__(self):
                self._segments = []
                weakref.finalize(self, Registry._cleanup, self._segments)

            def register(self, nbytes):
                seg = SharedMemory(create=True, size=nbytes)
                self._segments.append(seg)
                return seg.name

            @staticmethod
            def _cleanup(segments):
                for seg in segments:
                    seg.close()
                    seg.unlink()
        """,
        "shm-lifecycle",
    )
    assert fired == []


def test_shm_lifecycle_quiet_on_ownership_transferring_return():
    fired, _ = findings_for(
        """
        from multiprocessing.shared_memory import SharedMemory

        def attach(name):
            return SharedMemory(name=name)
        """,
        "shm-lifecycle",
    )
    assert fired == []


def test_shm_lifecycle_fires_at_module_level_and_pragma_suppresses():
    fired, _ = findings_for(
        """
        from multiprocessing.shared_memory import SharedMemory

        SCRATCH = SharedMemory(create=True, size=64)
        """,
        "shm-lifecycle",
    )
    assert len(fired) == 1
    assert "module level" in fired[0].message

    fired, suppressed = findings_for(
        """
        from multiprocessing.shared_memory import SharedMemory

        def probe(name):
            # repro: allow-shm-lifecycle -- probe only; cleaned up by owner
            seg = SharedMemory(name=name)
            size = seg.size
            return size
        """,
        "shm-lifecycle",
    )
    assert fired == []
    assert len(suppressed) == 1


# -- no-wallclock-in-key -------------------------------------------------------


def test_wallclock_key_fires_on_one_hop_flow():
    fired, _ = findings_for(
        """
        import time

        def lookup(cache, sql):
            t = time.perf_counter()
            key = (sql, t)
            return cache.get(key)
        """,
        "no-wallclock-in-key",
    )
    assert len(fired) == 1
    assert "'t'" in fired[0].message and "assignment to 'key'" in fired[0].message


def test_wallclock_key_fires_in_key_producer_and_producer_call():
    fired, _ = findings_for(
        """
        from time import perf_counter

        def make_key(sql):
            started = perf_counter()
            return (sql, started)
        """,
        "no-wallclock-in-key",
    )
    assert fired and all("make_key()" in f.message for f in fired)

    fired, _ = findings_for(
        """
        import time

        def request(catalog, sql):
            started_at = time.time()
            return persistence_key(catalog, sql, started_at)
        """,
        "no-wallclock-in-key",
    )
    assert len(fired) == 1
    assert "persistence_key()" in fired[0].message


def test_wallclock_key_quiet_on_timing_for_stats():
    fired, _ = findings_for(
        """
        import time

        def run(stats, sql, cache):
            start = time.perf_counter()
            key = canonical(sql)
            result = cache.get(key)
            stats.seconds += time.perf_counter() - start
            return result

        def fingerprint(tree):
            return tree.canonical_text()
        """,
        "no-wallclock-in-key",
    )
    assert fired == []


def test_wallclock_key_fires_on_span_object_and_pragma_suppresses():
    fired, _ = findings_for(
        """
        from repro.obs import span

        def evaluate(state, cache):
            with span("reward") as sp:
                key = (state.text, sp)
                return cache.get(key)
        """,
        "no-wallclock-in-key",
    )
    assert len(fired) == 1 and "span object" in fired[0].message

    fired, suppressed = findings_for(
        """
        import time

        def bucket(sql):
            now = time.time()
            # repro: allow-no-wallclock-in-key -- TTL bucket wants coarse time
            key = (sql, int(now // 60))
            return key
        """,
        "no-wallclock-in-key",
    )
    assert fired == []
    assert len(suppressed) == 1


# -- unbounded-recv ------------------------------------------------------------


def test_unbounded_recv_fires_on_bare_blocking_receives():
    fired, _ = findings_for(
        """
        def collect(conn, job_queue, process):
            reply = conn.recv()
            item = job_queue.get()
            process.join()
            return reply, item
        """,
        "unbounded-recv",
    )
    assert len(fired) == 3
    assert "recv()" in fired[0].message
    assert any("job_queue.get()" in f.message for f in fired)
    assert any("process.join()" in f.message for f in fired)


def test_unbounded_recv_quiet_under_wait_poll_and_bounded_calls():
    fired, _ = findings_for(
        """
        from multiprocessing import connection

        def supervised(conn, process, timeout):
            ready = connection.wait([conn, process.sentinel], timeout=timeout)
            if conn in ready:
                return conn.recv()
            raise RuntimeError("peer died")

        def drain(conn, process, job_queue):
            if conn.poll(5):
                conn.recv()
            process.join(timeout=10)
            return job_queue.get(timeout=1)

        def lookups(cache, counts):
            # dict/metric .get() calls always pass a key: never flagged
            return cache.get("plan"), counts.get(("site", 1), 0)
        """,
        "unbounded-recv",
    )
    assert fired == []


def test_unbounded_recv_pragma_marks_eof_as_liveness():
    fired, suppressed = findings_for(
        """
        def worker_loop(conn):
            while True:
                message = conn.recv()  # repro: allow-unbounded-recv -- EOFError on owner death is the liveness signal
                if message[0] == "shutdown":
                    return
        """,
        "unbounded-recv",
    )
    assert fired == []
    assert len(suppressed) == 1


# -- framework: pragmas, allow-all, parse errors -------------------------------


def test_allow_all_pragma_suppresses_every_rule():
    fired, suppressed = findings_for(
        """
        def collect(items):
            pending = set(items)
            # repro: allow-all
            return [item for item in pending]
        """,
        "unordered-iteration",
    )
    assert fired == []
    assert len(suppressed) == 1


def test_unknown_rule_is_rejected():
    with pytest.raises(KeyError):
        all_checkers(["no-such-rule"])


def test_parse_error_becomes_exit_2_free_finding(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    code = main([str(bad), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "parse-error" in out


# -- baseline ------------------------------------------------------------------

_BASELINE_SNIPPET = """
def collect(items):
    pending = set(items)
    return [item for item in pending]
"""


def test_baseline_absorbs_findings_and_survives_line_drift(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(_BASELINE_SNIPPET)
    baseline = tmp_path / "baseline.json"

    assert main([str(target), "--baseline", str(baseline)]) == EXIT_FINDINGS
    assert (
        main([str(target), "--baseline", str(baseline), "--write-baseline"])
        == EXIT_CLEAN
    )
    assert main([str(target), "--baseline", str(baseline)]) == EXIT_CLEAN

    # unrelated edits above the finding keep the baseline entry matching
    target.write_text("import os  # new header line\n" + _BASELINE_SNIPPET)
    assert main([str(target), "--baseline", str(baseline)]) == EXIT_CLEAN

    # editing the offending line itself invalidates the entry
    target.write_text(_BASELINE_SNIPPET.replace("for item in", "for thing in")
                      .replace("[item", "[thing"))
    assert main([str(target), "--baseline", str(baseline)]) == EXIT_FINDINGS
    capsys.readouterr()


def test_baseline_prune_drops_stale_entries(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(_BASELINE_SNIPPET)
    baseline = tmp_path / "baseline.json"
    main([str(target), "--baseline", str(baseline), "--write-baseline"])

    # fix the finding, then prune: the baseline shrinks to zero entries
    target.write_text("def collect(items):\n    return sorted(set(items))\n")
    code = main([str(target), "--baseline", str(baseline), "--prune-baseline"])
    assert code == EXIT_CLEAN
    data = json.loads(baseline.read_text())
    assert data["entries"] == []
    capsys.readouterr()


def test_baseline_matching_is_exact_per_rule():
    project = project_from_sources({"mod.py": _BASELINE_SNIPPET.lstrip()})
    result = run_checkers(project, all_checkers(["unordered-iteration"]))
    baseline = Baseline.from_findings(project, result.findings)
    new, old = baseline.split(project, result.findings)
    assert new == [] and len(old) == len(result.findings)


# -- CLI contract --------------------------------------------------------------


def test_cli_json_format(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(_BASELINE_SNIPPET)
    code = main([str(target), "--format", "json", "--no-baseline"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_FINDINGS
    assert payload["counts"]["findings"] == 1
    finding = payload["findings"][0]
    assert finding["rule"] == "unordered-iteration"
    assert finding["path"] == str(target)
    assert finding["line"] > 0


def test_cli_github_format(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(_BASELINE_SNIPPET)
    code = main([str(target), "--format", "github", "--no-baseline"])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert out.startswith("::error file=")
    assert "repro.analysis unordered-iteration" in out


def test_cli_clean_run_exits_zero(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("def tidy(items):\n    return sorted(set(items))\n")
    assert main([str(target), "--no-baseline"]) == EXIT_CLEAN
    capsys.readouterr()


def test_cli_bad_rule_and_missing_paths_exit_2(tmp_path, capsys):
    assert main(["--select", "bogus", str(tmp_path)]) == EXIT_ERROR
    assert main([str(tmp_path / "void")]) == EXIT_ERROR
    capsys.readouterr()


def test_cli_list_rules_names_all_eight(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule in (
        "unordered-iteration",
        "cache-key-field",
        "unlocked-shared-mutation",
        "unpicklable-worker-state",
        "nondeterministic-key",
        "shm-lifecycle",
        "no-wallclock-in-key",
        "unbounded-recv",
    ):
        assert rule in out


# -- the self-run gate ---------------------------------------------------------


def test_repo_is_clean_under_all_checkers(capsys):
    """The static mirror of the CI gate: zero unsuppressed findings on the
    repository itself.  New violations either get fixed, a justified
    ``# repro: allow-<rule>`` pragma, or a reviewed baseline entry."""
    code = main(
        [
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
            "--no-baseline",
        ]
    )
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN, f"repro.analysis found new violations:\n{out}"


def test_real_cross_reference_targets_still_resolve():
    """The cache-key and pickle-safety passes must keep finding their real
    anchors — if Executor/plan_key/PipelineWorkerSpec are renamed, the
    checkers silently checking nothing would be worse than failing."""
    project, errors = build_project([str(REPO_ROOT / "src")])
    assert errors == []
    from repro.analysis.checkers.cache_key import (
        _find_class,
        _find_function,
        _init_params,
        _planner_flags,
    )

    flags = {}
    key_params: list[str] = []
    for ctx in project:
        cls = _find_class(ctx, "Executor")
        if cls is not None:
            flags.update(_planner_flags(cls, _init_params(cls)))
        fn = _find_function(ctx, "plan_key")
        if fn is not None:
            key_params = [a.arg for a in fn.args.args]
    assert set(flags) == {
        "allow_reorder",
        "order_insensitive",
        "columnar_subqueries",
    }
    assert set(flags) <= set(key_params)

    from repro.analysis.checkers.pickle_safety import _ClassIndex

    index = _ClassIndex(project)
    assert "PipelineWorkerSpec" in index.classes
