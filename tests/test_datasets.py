"""Tests for the synthetic dataset generators."""

from repro.database import (
    make_cars_table,
    make_covid_table,
    make_flights_table,
    make_sales_table,
    make_sdss_tables,
    make_sp500_table,
    make_t_table,
    small_catalog,
    standard_catalog,
)


def test_generators_are_deterministic():
    a = make_cars_table(rows=50, seed=1)
    b = make_cars_table(rows=50, seed=1)
    c = make_cars_table(rows=50, seed=2)
    assert a.rows == b.rows
    assert a.rows != c.rows


def test_cars_schema_and_domains():
    cars = make_cars_table(rows=100)
    assert cars.column_names() == ["id", "hp", "mpg", "disp", "origin"]
    assert set(cars.values("origin")) == {"USA", "Europe", "Japan"}
    assert all(40 <= hp <= 240 for hp in cars.values("hp"))
    assert all(mpg >= 9.0 for mpg in cars.values("mpg"))


def test_flights_schema_and_domains():
    flights = make_flights_table(rows=200)
    assert flights.column_names() == ["id", "hour", "delay", "dist"]
    assert all(0 <= h <= 23 for h in flights.values("hour"))
    assert all(d >= -10 for d in flights.values("delay"))


def test_sp500_is_a_sorted_date_series():
    sp = make_sp500_table(days=50)
    dates = sp.values("date")
    assert dates == sorted(dates)
    assert all(p > 0 for p in sp.values("price"))


def test_covid_covers_four_states_and_anchors_today():
    covid = make_covid_table(days=30)
    assert set(covid.values("state")) == {"CA", "WA", "NY", "TX"}
    assert len(covid) == 30 * 4
    assert max(covid.values("date")) == "2021-06-30"


def test_sales_schema_and_domains():
    sales = make_sales_table(rows=100)
    assert set(sales.values("branch")) == {"A", "B", "C"}
    assert len(set(sales.values("city"))) == 3
    assert all(t > 0 for t in sales.values("total"))
    assert min(sales.values("date")) >= "2019-01-01"
    assert max(sales.values("date")) <= "2019-03-31"


def test_sdss_tables_join_and_domains():
    galaxy, spec = make_sdss_tables(rows=50)
    assert len(galaxy) == len(spec) == 50
    assert set(spec.values("bestObjID")) == set(galaxy.values("objID"))
    assert all(213.0 <= ra <= 214.2 for ra in spec.values("ra"))
    assert all(-1.0 <= dec <= 0.0 for dec in spec.values("dec"))
    assert all(0.13 <= z <= 0.15 for z in spec.values("z"))


def test_standard_catalog_contains_all_workload_tables():
    cat = standard_catalog(scale=0.1)
    for table in ("T", "Cars", "flights", "sp500", "covid", "sales", "galaxy", "specObj"):
        assert cat.has_table(table)


def test_catalog_scale_controls_row_counts():
    small = standard_catalog(scale=0.1)
    large = standard_catalog(scale=0.3)
    assert len(small.table("Cars")) < len(large.table("Cars"))
    assert len(small_catalog().table("Cars")) <= len(large.table("Cars"))
