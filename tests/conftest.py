"""Shared fixtures for the test suite.

All fixtures are session-scoped where safe: the synthetic catalogue and the
executor are read-only, so sharing them across tests keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.cost.model import CostModel
from repro.database.datasets import standard_catalog
from repro.database.executor import Executor
from repro.difftree.builder import parse_queries
from repro.mapping.mapper import InterfaceMapper, MapperConfig
from repro.transform.engine import TransformEngine

#: The Section-2 example queries, used throughout the unit tests.
SECTION2_QUERIES = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
    "SELECT a, count(*) FROM T GROUP BY a",
]

EXPLORE_QUERIES = [
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 "
    "AND mpg BETWEEN 27 AND 38",
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 "
    "AND mpg BETWEEN 16 AND 30",
]


@pytest.fixture(scope="session")
def catalog():
    """A small synthetic catalogue shared by the whole test session."""
    return standard_catalog(seed=7, scale=0.12)


@pytest.fixture(scope="session")
def executor(catalog):
    return Executor(catalog)


@pytest.fixture(scope="session")
def fast_config():
    return PipelineConfig.fast(seed=11)


@pytest.fixture()
def engine(catalog, executor):
    return TransformEngine(catalog, executor)


@pytest.fixture()
def section2_asts():
    return parse_queries(SECTION2_QUERIES)


@pytest.fixture()
def explore_asts():
    return parse_queries(EXPLORE_QUERIES)


@pytest.fixture()
def make_mapper(catalog, executor):
    """Factory: an InterfaceMapper for a given query list."""

    def factory(queries, **mapper_kwargs):
        asts = parse_queries(list(queries))
        cost_model = CostModel(asts)
        return InterfaceMapper(
            catalog, executor, cost_model, MapperConfig(**mapper_kwargs)
        )

    return factory
