"""End-to-end integration tests of the PI2 pipeline."""

import pytest

from repro import (
    PipelineConfig,
    best_static_interface,
    generate_for_workload,
    generate_interface,
)
from repro.interface import InterfaceRuntime
from repro.taxonomy import classify_interface
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def pipeline_catalog():
    from repro.database import standard_catalog

    return standard_catalog(seed=11, scale=0.12)


@pytest.fixture(scope="module")
def explore_result(pipeline_catalog):
    return generate_for_workload(
        WORKLOADS["explore"], catalog=pipeline_catalog, config=PipelineConfig.fast()
    )


def test_pipeline_returns_complete_interface(explore_result):
    interface = explore_result.interface
    assert interface.is_complete()
    assert interface.cost is not None and interface.cost.total >= 0
    assert explore_result.total_seconds >= 0
    assert explore_result.candidates


def test_explore_reproduces_figure_14a(explore_result):
    """Listing 1 → scatterplot with pan/zoom controlling the range predicates."""
    interface = explore_result.interface
    assert interface.num_views() == 1
    assert interface.views[0].vis.vis_type.name == "point"
    assert interface.interaction_kinds() & {"pan", "zoom", "brush-xy"}
    report = classify_interface(interface)
    assert report.covers("select", "explore")


def test_generated_interface_expresses_all_queries(explore_result, pipeline_catalog):
    from repro.database import Executor

    runtime = InterfaceRuntime(explore_result.interface, Executor(pipeline_catalog))
    for i in range(len(WORKLOADS["explore"].queries)):
        assert runtime.replay_query(i)


def test_pipeline_beats_static_baseline(pipeline_catalog, explore_result):
    static = best_static_interface(
        list(WORKLOADS["explore"].queries),
        catalog=pipeline_catalog,
        config=PipelineConfig.fast(),
    )
    assert explore_result.interface.cost.total <= static.cost.total


def test_pipeline_is_deterministic(pipeline_catalog):
    config = PipelineConfig.fast(seed=5)
    a = generate_interface(
        list(WORKLOADS["explore"].queries), catalog=pipeline_catalog, config=config
    )
    b = generate_interface(
        list(WORKLOADS["explore"].queries), catalog=pipeline_catalog, config=config
    )
    assert a.interface.cost.total == pytest.approx(b.interface.cost.total)
    assert a.interface.interaction_kinds() == b.interface.interaction_kinds()


def test_sdss_case_study_has_table_and_chart(pipeline_catalog):
    result = generate_for_workload(
        WORKLOADS["sdss"], catalog=pipeline_catalog, config=PipelineConfig.fast()
    )
    interface = result.interface
    assert interface.num_views() >= 2
    vis_names = {v.vis.vis_type.name for v in interface.views}
    assert "table" in vis_names
    assert interface.is_complete()


def test_single_query_yields_static_chart(pipeline_catalog):
    result = generate_interface(
        ["SELECT hp, mpg FROM Cars"],
        catalog=pipeline_catalog,
        config=PipelineConfig.fast(),
    )
    interface = result.interface
    assert interface.num_views() == 1
    assert not interface.widgets and not interface.interactions


def test_pipeline_without_initial_refactor_still_completes(pipeline_catalog):
    config = PipelineConfig.fast()
    config = config.replace(initial_refactor=False)
    config.search.max_iterations = 12
    result = generate_interface(
        list(WORKLOADS["explore"].queries), catalog=pipeline_catalog, config=config
    )
    assert result.interface.is_complete()


def test_paper_defaults_config_values():
    config = PipelineConfig.paper_defaults()
    assert config.search.early_stop == 30
    assert config.search.workers == 3
    assert config.search.sync_interval == 10
    assert config.search.reward_mappings == 5
    assert config.mapper.top_k == 10


# -- regression tests: reward / candidate guards and plan diagnostics ---------


def test_best_interface_cost_with_costless_candidates():
    """All-candidates-costless must yield +inf (reward -inf), not ValueError."""
    from repro.core.pipeline import best_interface_cost

    class Stub:
        def __init__(self, cost):
            self.cost = cost

    class Cost:
        def __init__(self, total):
            self.total = total

    assert best_interface_cost([Stub(None), Stub(None)]) == float("inf")
    assert best_interface_cost([Stub(None), Stub(Cost(3.5))]) == 3.5
    assert best_interface_cost([]) == float("inf")


def test_pipeline_raises_clear_error_without_candidates(
    pipeline_catalog, monkeypatch
):
    from repro.core.pipeline import PipelineError
    from repro.mapping.mapper import InterfaceMapper

    monkeypatch.setattr(InterfaceMapper, "generate", lambda self, trees: [])
    with pytest.raises(PipelineError, match="no candidates"):
        generate_for_workload(
            WORKLOADS["explore"],
            catalog=pipeline_catalog,
            config=PipelineConfig.fast(),
        )


def test_pipeline_reports_executor_plan_stats(explore_result):
    stats = explore_result.executor_stats
    assert stats is not None
    assert stats.plans_compiled > 0
    # the reward loop re-runs the same queries: plan + result caches must hit
    assert stats.plan_cache_hits + stats.result_cache_hits > 0
    as_dict = stats.as_dict()
    assert "hash_joins_planned" in as_dict
