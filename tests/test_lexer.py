"""Unit tests for the SQL lexer."""

import pytest

from repro.sqlparser.errors import LexError
from repro.sqlparser.lexer import Lexer, normalise_sql, tokenize
from repro.sqlparser.tokens import TokenType


def kinds(sql):
    return [t.type for t in tokenize(sql) if t.type is not TokenType.EOF]


def values(sql):
    return [t.value for t in tokenize(sql) if t.type is not TokenType.EOF]


def test_simple_select_tokens():
    tokens = tokenize("SELECT a FROM t")
    assert [t.value for t in tokens[:-1]] == ["SELECT", "a", "FROM", "t"]
    assert tokens[-1].type is TokenType.EOF


def test_numbers_integer_and_float():
    assert values("1 2.5 0.1362 10e3") == ["1", "2.5", "0.1362", "10e3"]
    assert all(k is TokenType.NUMBER for k in kinds("1 2.5 0.1362"))


def test_negative_exponent_number():
    assert values("1.5e-3") == ["1.5e-3"]


def test_string_literal_quotes_stripped():
    tokens = tokenize("'2019-01-25'")
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].value == "2019-01-25"


def test_string_literal_escaped_quote():
    tokens = tokenize("'it''s'")
    assert tokens[0].value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("SELECT 'oops")


def test_typographic_quotes_normalised():
    tokens = tokenize("WHERE state= ’CA’")
    assert any(t.type is TokenType.STRING and t.value == "CA" for t in tokens)


def test_operators_multi_char_first():
    assert values("a >= 1 AND b <> 2 AND c != 3") == [
        "a", ">=", "1", "AND", "b", "<>", "2", "AND", "c", "!=", "3",
    ]


def test_punctuation_tokens():
    assert kinds("(a, b.*);") == [
        TokenType.LPAREN,
        TokenType.IDENT,
        TokenType.COMMA,
        TokenType.IDENT,
        TokenType.DOT,
        TokenType.STAR,
        TokenType.RPAREN,
        TokenType.SEMICOLON,
    ]


def test_line_comment_skipped():
    assert values("SELECT a -- comment here\nFROM t") == ["SELECT", "a", "FROM", "t"]


def test_block_comment_skipped():
    assert values("SELECT /* hi */ a") == ["SELECT", "a"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("SELECT /* oops")


def test_ampersand_is_an_operator():
    # the paper's BTWN lo & hi shorthand relies on '&' lexing as an operator
    assert values("BTWN 50 & 60") == ["BTWN", "50", "&", "60"]


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as err:
        tokenize("SELECT a ~ b")
    assert err.value.pos > 0
    assert "~" in str(err.value)


def test_normalise_sql_replaces_dashes():
    assert normalise_sql("a – b — c") == "a - b - c"


def test_keyword_check_is_case_insensitive():
    token = tokenize("select")[0]
    assert token.is_keyword("SELECT")
    assert token.is_keyword("Select", "FROM")
    assert not token.is_keyword("FROM")


def test_lexer_positions_point_into_source():
    sql = "SELECT abc FROM t"
    for token in Lexer(sql).tokenize():
        if token.type is TokenType.IDENT:
            assert sql[token.pos : token.pos + len(token.value)] == token.value
