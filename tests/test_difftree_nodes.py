"""Tests for choice nodes, resolution and binding derivation (matching)."""

import pytest

from repro.difftree import (
    Difftree,
    FlatBindingSource,
    ResolutionError,
    default_param,
    expressible_asts,
    match_query,
    resolve,
    resolve_with_derivation,
)
from repro.difftree.nodes import (
    AnyNode,
    ChoiceNode,
    MultiNode,
    OptNode,
    SubsetNode,
    ValNode,
    choice_nodes,
    dynamic_nodes,
    make_choice,
    make_opt,
)
from repro.difftree.resolve import Derivation, NodeBinding, QueueBindingSource
from repro.difftree.types import PiType
from repro.sqlparser import ast_nodes as A
from repro.sqlparser import parse, to_sql
from repro.sqlparser.ast_nodes import L, Node


def predicate(attr, value):
    return A.binop("=", A.column(attr), A.literal_num(value))


# -- node structure -------------------------------------------------------------


def test_choice_nodes_have_unique_ids():
    a = AnyNode([A.literal_num(1)])
    b = AnyNode([A.literal_num(1)])
    assert a.node_id != b.node_id


def test_copy_preserves_node_id_and_class():
    val = ValNode([A.literal_num(1), A.literal_num(2)], pitype=PiType.num())
    clone = val.copy()
    assert isinstance(clone, ValNode)
    assert clone.node_id == val.node_id
    assert clone.pitype == val.pitype
    assert clone == val


def test_make_choice_and_make_opt():
    any_node = make_choice(L.ANY, [A.literal_num(1), A.literal_num(2)])
    assert isinstance(any_node, AnyNode)
    opt = make_opt(predicate("a", 1))
    assert isinstance(opt, AnyNode) and opt.is_opt
    assert len(opt.non_empty_children()) == 1


def test_multi_and_opt_arity_validation():
    with pytest.raises(ValueError):
        MultiNode([A.literal_num(1), A.literal_num(2)])
    with pytest.raises(ValueError):
        OptNode([A.literal_num(1), A.literal_num(2)])


def test_choice_and_dynamic_node_discovery():
    root = Node(
        L.WHERE_CLAUSE, None, [Node(L.AND, None, [AnyNode([predicate("a", 1), predicate("b", 2)])])]
    )
    assert len(choice_nodes(root)) == 1
    dyn = dynamic_nodes(root)
    assert root in dyn and len(dyn) == 3  # where, and, ANY


# -- resolution -----------------------------------------------------------------


def test_any_resolution_by_index():
    node = AnyNode([predicate("a", 1), predicate("b", 2)])
    resolved = resolve(node, FlatBindingSource({node.node_id: 1}))
    assert to_sql(resolved) == "b = 2"


def test_val_resolution_to_bound_value():
    val = ValNode([A.literal_num(1), A.literal_num(2)], pitype=PiType.num())
    tree = A.binop("=", A.column("a"), val)
    resolved = resolve(tree, FlatBindingSource({val.node_id: 7}))
    assert to_sql(resolved) == "a = 7"


def test_val_default_uses_first_observed_literal():
    val = ValNode([A.literal_num(5), A.literal_num(9)])
    assert default_param(val) == 5


def test_opt_resolution_splices_out():
    opt = make_opt(predicate("a", 1))
    clause = Node(L.AND, None, [opt, predicate("b", 2)])
    on = resolve(clause, FlatBindingSource({opt.node_id: 0}))
    off_idx = next(i for i, c in enumerate(opt.children) if c.label == L.EMPTY)
    off = resolve(clause, FlatBindingSource({opt.node_id: off_idx}))
    assert to_sql(on) == "a = 1 AND b = 2"
    assert to_sql(off) == "b = 2"


def test_multi_resolution_repeats_template():
    inner = AnyNode([A.column("a"), A.column("b")])
    multi = MultiNode([inner], sep=", ")
    clause = Node(L.GROUPBY_CLAUSE, None, [multi])
    source = FlatBindingSource({multi.node_id: 2, inner.node_id: [0, 1]})
    resolved = resolve(clause, source)
    assert to_sql(resolved) == "GROUP BY a, b"


def test_subset_resolution_selects_indices():
    subset = SubsetNode([predicate("a", 1), predicate("b", 2), predicate("c", 3)])
    clause = Node(L.AND, None, [subset])
    resolved = resolve(clause, FlatBindingSource({subset.node_id: (0, 2)}))
    assert to_sql(resolved) == "a = 1 AND c = 3"


def test_out_of_range_bindings_raise():
    node = AnyNode([predicate("a", 1)])
    with pytest.raises(ResolutionError):
        resolve(node, FlatBindingSource({node.node_id: 5}))
    subset = SubsetNode([predicate("a", 1)])
    wrapped = Node(L.AND, None, [subset])
    with pytest.raises(ResolutionError):
        resolve(wrapped, FlatBindingSource({subset.node_id: (4,)}))


def test_queue_source_validates_order_and_exhaustion():
    node = AnyNode([predicate("a", 1), predicate("b", 2)])
    good = Derivation([NodeBinding(node.node_id, "any", 0)])
    assert to_sql(resolve_with_derivation(node, good)) == "a = 1"
    with pytest.raises(ResolutionError):
        resolve_with_derivation(node, Derivation([]))
    with pytest.raises(ResolutionError):
        resolve_with_derivation(
            node, Derivation([NodeBinding(node.node_id + 999, "any", 0)])
        )
    with pytest.raises(ResolutionError):
        resolve_with_derivation(
            node,
            Derivation(
                [NodeBinding(node.node_id, "any", 0), NodeBinding(node.node_id, "any", 1)]
            ),
        )
    source = QueueBindingSource(good)
    resolve(node, source)
    assert source.fully_consumed


def test_expressible_asts_enumeration():
    node = AnyNode([predicate("a", 1), predicate("b", 2)])
    asts = list(expressible_asts(node))
    assert {to_sql(a) for a in asts} == {"a = 1", "b = 2"}


# -- matching / query bindings -----------------------------------------------------


def test_match_any_returns_child_index():
    node = AnyNode([predicate("a", 1), predicate("b", 2)])
    derivation = match_query(node, predicate("b", 2))
    assert derivation is not None
    assert derivation.bindings[0].param == 1
    assert match_query(node, predicate("c", 3)) is None


def test_match_val_checks_type_compatibility():
    val = ValNode([A.literal_num(1)], pitype=PiType.num())
    tree = A.binop("=", A.column("a"), val)
    assert match_query(tree, predicate("a", 42)) is not None
    string_query = A.binop("=", A.column("a"), A.literal_str("x"))
    assert match_query(tree, string_query) is None


def test_match_multi_counts_repetitions():
    inner = AnyNode([A.column("a"), A.column("b")])
    multi = MultiNode([inner])
    clause = Node(L.GROUPBY_CLAUSE, None, [multi])
    target = Node(L.GROUPBY_CLAUSE, None, [A.column("a"), A.column("a"), A.column("b")])
    derivation = match_query(clause, target)
    assert derivation is not None
    assert derivation.params_for(multi.node_id) == [3]
    assert derivation.params_for(inner.node_id) == [0, 0, 1]


def test_match_subset_finds_ordered_subset():
    subset = SubsetNode([predicate("a", 1), predicate("b", 2), predicate("c", 3)])
    clause = Node(L.AND, None, [subset])
    target = Node(L.AND, None, [predicate("a", 1), predicate("c", 3)])
    derivation = match_query(clause, target)
    assert derivation is not None
    assert derivation.bindings[0].param == (0, 2)
    reordered = Node(L.AND, None, [predicate("c", 3), predicate("a", 1)])
    assert match_query(clause, reordered) is None


def test_match_opt_in_sequence():
    opt = make_opt(predicate("a", 1))
    clause = Node(L.AND, None, [opt, predicate("b", 2)])
    with_a = Node(L.AND, None, [predicate("a", 1), predicate("b", 2)])
    without_a = Node(L.AND, None, [predicate("b", 2)])
    assert match_query(clause, with_a) is not None
    assert match_query(clause, without_a) is not None
    assert match_query(clause, Node(L.AND, None, [predicate("x", 9)])) is None


def test_match_resolve_roundtrip_on_real_queries():
    queries = [
        "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
    ]
    from repro.difftree import initial_difftrees, merge_difftrees

    merged = merge_difftrees(initial_difftrees(queries))
    for i, q in enumerate(queries):
        resolved = merged.resolve_query(i)
        assert to_sql(resolved) == to_sql(parse(q))


def test_difftree_query_bindings_union(section2_asts):
    from repro.difftree import initial_difftrees, merge_difftrees

    merged = merge_difftrees(initial_difftrees(section2_asts))
    bindings = merged.query_bindings()
    root = merged.root
    assert isinstance(root, ChoiceNode)
    assert bindings[root.node_id] == [0, 1, 2]


def test_difftree_is_static_and_copy(section2_asts):
    tree = Difftree(section2_asts[0].copy(), [section2_asts[0]])
    assert tree.is_static()
    assert tree.expresses_all()
    clone = tree.copy()
    assert clone.fingerprint() == tree.fingerprint()
