"""Tests for the Vega-Lite exporter."""

import json

import pytest

from repro.difftree import initial_difftrees, merge_difftrees
from repro.interface import InterfaceRuntime
from repro.interface.vegalite import (
    VEGA_LITE_SCHEMA,
    export_vegalite,
    interface_to_vegalite,
    view_to_vegalite,
)
from repro.transform import TransformEngine

EXPLORE = [
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 "
    "AND mpg BETWEEN 27 AND 38",
    "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 "
    "AND mpg BETWEEN 16 AND 30",
]

TWO_VIEWS = [
    "SELECT hour, count(*) FROM flights GROUP BY hour",
    "SELECT delay, count(*) FROM flights GROUP BY delay",
]


@pytest.fixture()
def explore_interface(catalog, executor, make_mapper):
    engine = TransformEngine(catalog, executor)
    trees = engine.refactor_to_fixpoint(
        [merge_difftrees(initial_difftrees(EXPLORE))]
    )
    mapper = make_mapper(EXPLORE)
    interface = mapper.best_interface(trees)
    return interface, InterfaceRuntime(interface, executor)


@pytest.fixture()
def two_view_interface(catalog, executor, make_mapper):
    trees = initial_difftrees(TWO_VIEWS)
    mapper = make_mapper(TWO_VIEWS)
    interface = mapper.best_interface(trees)
    return interface, InterfaceRuntime(interface, executor)


def test_view_spec_has_mark_data_and_encoding(explore_interface):
    interface, runtime = explore_interface
    spec = view_to_vegalite(interface.views[0], runtime.view_states[0].result)
    assert spec["$schema"] == VEGA_LITE_SCHEMA
    assert spec["mark"] == "point"
    assert {"x", "y"} <= set(spec["encoding"])
    assert spec["encoding"]["x"]["field"] == "hp"
    assert spec["encoding"]["y"]["type"] == "quantitative"
    assert isinstance(spec["data"]["values"], list)


def test_single_view_interface_spec_includes_interaction_params(explore_interface):
    interface, runtime = explore_interface
    spec = interface_to_vegalite(interface, runtime)
    assert spec["title"]
    if interface.interactions:
        assert "params" in spec
        names = {p["name"] for p in spec["params"]}
        assert names  # pan / zoom exported as scale-bound intervals


def test_multi_view_interface_uses_vconcat(two_view_interface):
    interface, runtime = two_view_interface
    spec = interface_to_vegalite(interface, runtime)
    assert "vconcat" in spec
    assert len(spec["vconcat"]) == 2
    for unit in spec["vconcat"]:
        assert "mark" in unit and "encoding" in unit


def test_bar_chart_encoding_types(two_view_interface):
    interface, runtime = two_view_interface
    bar_views = [
        (i, v) for i, v in enumerate(interface.views) if v.vis.vis_type.name == "bar"
    ]
    if not bar_views:
        pytest.skip("no bar chart chosen for the grouped queries")
    idx, view = bar_views[0]
    spec = view_to_vegalite(view, runtime.view_states[idx].result)
    assert spec["mark"] == "bar"
    assert spec["encoding"]["y"]["type"] == "quantitative"


def test_export_vegalite_writes_valid_json(tmp_path, explore_interface):
    interface, runtime = explore_interface
    path = export_vegalite(interface, str(tmp_path / "spec.json"), runtime)
    payload = json.loads((tmp_path / "spec.json").read_text())
    assert payload["$schema"] == VEGA_LITE_SCHEMA or "vconcat" in payload
    assert path.endswith("spec.json")


def test_spec_without_runtime_has_empty_data(explore_interface):
    interface, _ = explore_interface
    spec = interface_to_vegalite(interface, runtime=None)
    data = spec.get("data") or spec["vconcat"][0]["data"]
    assert data["values"] == []


def test_widget_summary_in_description(two_view_interface):
    interface, runtime = two_view_interface
    spec = interface_to_vegalite(interface, runtime)
    units = spec["vconcat"] if "vconcat" in spec else [spec]
    if interface.widgets:
        assert any("widgets:" in u.get("description", "") for u in units)
