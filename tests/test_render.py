"""Unit tests for AST → SQL rendering."""

import pytest

from repro.sqlparser import RenderError, parse, to_pseudo_sql, to_sql
from repro.sqlparser import ast_nodes as A
from repro.difftree.nodes import AnyNode, ValNode


def roundtrip(sql):
    return to_sql(parse(sql))


def test_simple_select_roundtrip():
    assert roundtrip("SELECT a, b FROM t") == "SELECT a, b FROM t"


def test_distinct_rendered():
    assert roundtrip("SELECT DISTINCT a FROM t") == "SELECT DISTINCT a FROM t"


def test_between_rendered_canonically():
    assert (
        roundtrip("SELECT a FROM t WHERE a BTWN 1 & 5")
        == "SELECT a FROM t WHERE a BETWEEN 1 AND 5"
    )


def test_string_literal_escaped():
    assert roundtrip("SELECT a FROM t WHERE b = 'it''s'").endswith("b = 'it''s'")


def test_float_literals_keep_value():
    sql = roundtrip("SELECT a FROM t WHERE z BETWEEN 0.1362 AND 0.141")
    assert "0.1362" in sql and "0.141" in sql


def test_integer_valued_float_rendered_as_int():
    assert to_sql(A.literal_num(5.0)) == "5"


def test_or_parenthesised():
    sql = roundtrip("SELECT a FROM t WHERE a = 1 OR b = 2")
    assert "(" in sql and "OR" in sql
    assert parse(sql) == parse("SELECT a FROM t WHERE a = 1 OR b = 2")


def test_aggregate_and_alias():
    assert (
        roundtrip("SELECT sum(total) as t FROM sales")
        == "SELECT sum(total) AS t FROM sales"
    )


def test_count_distinct_rendered():
    assert "count(DISTINCT a)" in roundtrip("SELECT count(DISTINCT a) FROM t")


def test_join_rendered():
    sql = roundtrip("SELECT a FROM t INNER JOIN s ON t.id = s.id")
    assert "INNER JOIN" in sql and "ON t.id = s.id" in sql


def test_order_limit_offset_rendered():
    sql = roundtrip("SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1")
    assert sql.endswith("ORDER BY a DESC LIMIT 3 OFFSET 1")


def test_case_rendered():
    sql = roundtrip("SELECT CASE WHEN a > 1 THEN 2 ELSE 3 END FROM t")
    assert "CASE WHEN" in sql and "ELSE 3 END" in sql


def test_unresolved_choice_node_rejected_by_strict_renderer():
    tree = AnyNode([A.literal_num(1), A.literal_num(2)])
    with pytest.raises(RenderError):
        to_sql(tree)


def test_pseudo_sql_renders_choice_nodes():
    tree = AnyNode([A.literal_num(1), A.literal_num(2)])
    text = to_pseudo_sql(tree)
    assert "ANY" in text and "1" in text and "2" in text


def test_pseudo_sql_renders_val_and_empty():
    val = ValNode([A.literal_num(1), A.literal_num(100)])
    wrapped = AnyNode([val, A.empty()])
    text = to_pseudo_sql(wrapped)
    assert "VAL" in text and "∅" in text


def test_unknown_label_raises():
    with pytest.raises(RenderError):
        to_sql(A.Node("no_such_label", None, []))
