"""Tests for the single-player MCTS search and the parallel coordinator."""

import random

from repro.difftree import initial_difftrees
from repro.search import (
    MCTSNode,
    MCTSWorker,
    ParallelCoordinator,
    SearchConfig,
    SearchState,
    parallel_search,
    search_difftrees,
)
from repro.transform import TransformEngine

QUERIES = [
    "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
]


def simple_reward(state: SearchState) -> float:
    """A deterministic stand-in for the interface-cost reward."""
    return -(2.0 * state.num_trees() + state.num_choice_nodes())


def make_engine(catalog, executor):
    return TransformEngine(catalog, executor, max_applications=16)


def test_search_state_fingerprint_is_order_insensitive():
    trees = initial_difftrees(QUERIES)
    a = SearchState(trees)
    b = SearchState(list(reversed(trees)))
    assert a.fingerprint() == b.fingerprint()
    assert a.as_terminal().fingerprint() != a.fingerprint()
    assert a.num_trees() == 2


def test_mcts_node_uct_prefers_unvisited():
    root = MCTSNode(SearchState([]))
    child_a = MCTSNode(SearchState([]), root)
    child_b = MCTSNode(SearchState([]), root)
    root.children = [child_a, child_b]
    root.visits = 4
    child_a.visits, child_a.total_reward, child_a.total_squared = 2, -10.0, 60.0
    assert child_b.uct_score(1.2, 1.0) == float("inf")
    assert child_a.uct_score(1.2, 1.0, lo=-20.0, hi=0.0) > 0


def test_worker_improves_over_initial_state(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(
        max_iterations=30, early_stop=30, workers=1, rollout_depth=8, seed=5
    )
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, simple_reward, config
    )
    initial_reward = worker.best_reward
    worker.run()
    assert worker.best_reward >= initial_reward
    assert worker.stats.iterations >= 1
    assert worker.stats.states_evaluated >= 1


def test_worker_early_stop_counts_iterations(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(max_iterations=50, early_stop=5, workers=1, seed=9)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, simple_reward, config
    )
    worker.run()
    assert worker.stats.early_stopped or worker.stats.iterations == 50


def test_reward_cache_reuses_evaluations(catalog, executor):
    engine = make_engine(catalog, executor)
    calls = []

    def counting_reward(state):
        calls.append(state.fingerprint())
        return simple_reward(state)

    config = SearchConfig(max_iterations=12, early_stop=12, workers=1, seed=2)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, counting_reward, config
    )
    worker.run()
    assert len(calls) == len(set(calls))  # each distinct state evaluated once


def test_terminal_children_are_added_on_expansion(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(max_iterations=3, early_stop=10, workers=1, seed=4)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, simple_reward, config
    )
    worker.run_iteration()
    assert any(child.state.terminal for child in worker.root.children)


def test_search_difftrees_single_worker(catalog, executor):
    engine = make_engine(catalog, executor)
    best, stats = search_difftrees(
        initial_difftrees(QUERIES),
        engine,
        simple_reward,
        SearchConfig(max_iterations=20, early_stop=8, workers=1, seed=3),
    )
    assert isinstance(best, SearchState)
    assert stats.best_reward >= simple_reward(SearchState(initial_difftrees(QUERIES)))


def test_parallel_search_synchronises_best_state(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(
        max_iterations=24, early_stop=12, workers=3, sync_interval=4, seed=6
    )
    result = parallel_search(
        initial_difftrees(QUERIES), engine, simple_reward, config
    )
    assert result.best_reward >= simple_reward(
        SearchState(initial_difftrees(QUERIES))
    )
    assert len(result.worker_stats) == 3
    assert result.stats.iterations > 0
    # after synchronisation every worker has adopted a reward at least as good
    coordinator = ParallelCoordinator(
        initial_difftrees(QUERIES), engine, simple_reward, config
    )
    res = coordinator.run()
    rewards = [w.best_reward for w in coordinator.workers]
    assert max(rewards) == res.best_reward


def test_parallel_search_is_deterministic(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(
        max_iterations=16, early_stop=8, workers=2, sync_interval=4, seed=17
    )
    r1 = parallel_search(initial_difftrees(QUERIES), engine, simple_reward, config)
    engine2 = make_engine(catalog, executor)
    r2 = parallel_search(initial_difftrees(QUERIES), engine2, simple_reward, config)
    assert r1.best_reward == r2.best_reward
    assert r1.best_state.fingerprint() == r2.best_state.fingerprint()


def test_search_config_rng_and_replace():
    config = SearchConfig(seed=1)
    assert config.rng(1).random() == SearchConfig(seed=1).rng(1).random()
    changed = config.replace(workers=7)
    assert changed.workers == 7 and config.workers != 7


def test_weighted_rollout_choice_prefers_refactoring(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(max_iterations=1, workers=1, seed=1)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, simple_reward, config
    )

    class FakeApp:
        def __init__(self, category):
            self.category = category

    rng_counts = {"refactoring": 0, "cross-tree": 0}
    worker.rng = random.Random(0)
    apps = [FakeApp("refactoring"), FakeApp("cross-tree")]
    for _ in range(300):
        chosen = worker._weighted_choice(apps)
        rng_counts[chosen.category] += 1
    assert rng_counts["refactoring"] > rng_counts["cross-tree"]


# -- regression tests: iteration budget and reward-bound bookkeeping ----------


def test_parallel_search_honours_remainder_iterations(catalog, executor):
    """13 iterations with sync every 5 must run 10 + a partial round of 3,
    not silently drop the remainder."""
    engine = make_engine(catalog, executor)
    config = SearchConfig(
        max_iterations=13,
        sync_interval=5,
        early_stop=10_000,
        workers=1,
        rollout_depth=4,
        seed=9,
    )
    coordinator = ParallelCoordinator(
        initial_difftrees(QUERIES), engine, simple_reward, config
    )
    result = coordinator.run()
    assert result.stats.iterations == 13
    assert result.stats.per_worker_iterations == [13]


def test_parallel_search_remainder_scales_with_workers(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(
        max_iterations=7,
        sync_interval=3,
        early_stop=10_000,
        workers=2,
        rollout_depth=4,
        seed=9,
    )
    result = ParallelCoordinator(
        initial_difftrees(QUERIES), engine, simple_reward, config
    ).run()
    # every worker runs its full 7-iteration budget (3 + 3 + 1)
    assert result.stats.iterations == 14
    assert result.stats.per_worker_iterations == [7, 7]


def test_reward_bounds_match_cache_extrema(catalog, executor):
    """The incrementally maintained bounds must equal a full cache scan."""
    engine = make_engine(catalog, executor)
    config = SearchConfig(
        max_iterations=12, early_stop=10_000, workers=1, rollout_depth=6, seed=3
    )
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)), engine, simple_reward, config
    )
    for _ in range(12):
        worker.run_iteration()
    finite = [r for r in worker._reward_cache.values() if r != float("-inf")]
    assert finite, "search should have evaluated at least one state"
    lo, hi = worker._reward_bounds()
    if min(finite) == max(finite):
        assert (lo, hi) == (min(finite), min(finite) + 1.0)
    else:
        assert (lo, hi) == (min(finite), max(finite))


def test_reward_bounds_ignore_infinite_rewards(catalog, executor):
    engine = make_engine(catalog, executor)
    config = SearchConfig(max_iterations=4, early_stop=10_000, workers=1, seed=3)
    worker = MCTSWorker(
        SearchState(initial_difftrees(QUERIES)),
        engine,
        lambda state: float("-inf"),
        config,
    )
    worker.run_iteration()
    assert worker._reward_bounds() == (0.0, 1.0)
