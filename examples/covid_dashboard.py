"""Case study: reproducing Google's covid-19 visualization (paper Figure 15b).

The input queries (Listing 6) report daily cases or deaths for different
states and date intervals.  PI2 groups the two metrics, exposes the state and
the date-interval choices as widgets, and keeps the date series as line
charts.  This script generates the interface, then simulates the interactions
the Google visualization offers: switching the state, narrowing the reported
interval, and toggling the interval filter off again.

Run with::

    python examples/covid_dashboard.py
"""

from __future__ import annotations

import os

from repro import (
    Executor,
    InterfaceRuntime,
    PipelineConfig,
    export_html,
    generate_for_workload,
    standard_catalog,
)
from repro.workloads import COVID


def main() -> None:
    catalog = standard_catalog(scale=0.3)
    result = generate_for_workload(COVID, catalog=catalog, config=PipelineConfig.fast())
    interface = result.interface

    print(interface.describe())
    print(f"\ngenerated in {result.total_seconds:.1f}s")

    executor = Executor(catalog)
    runtime = InterfaceRuntime(interface, executor)
    for i, state in enumerate(runtime.view_states):
        print(f"view {i} query: {state.sql}")

    # simulate the dashboard's widget manipulations: walk through the options
    # of every enumerating widget (state selector, date-interval selector, …)
    for widget in interface.widgets:
        options = widget.candidate.options
        if not options:
            continue
        print(f"\nmanipulating {widget.describe()}:")
        for option_index in range(min(3, len(options))):
            runtime.set_widget(widget, option_index)
            state = runtime.view_states[widget.view_index]
            label = options[option_index]
            rows = len(state.result.rows) if state.result else 0
            print(f"  option {label!r:<28} → {rows:4d} rows | {state.sql[:80]}")

    # every input query from the log must be reachable through the interface
    expressed = sum(
        runtime.replay_query(i) for i in range(len(COVID.queries))
    )
    print(f"\n{expressed}/{len(COVID.queries)} input queries expressible ✓")

    out = os.path.join(os.path.dirname(__file__), "covid_dashboard.html")
    export_html(interface, out, runtime, title="PI2 — covid dashboard")
    print(f"wrote a static preview to {out}")


if __name__ == "__main__":
    main()
