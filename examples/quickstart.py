"""Quickstart: generate an interactive interface from two example queries.

This is the paper's running Explore example (Listing 1): two queries over the
Cars table that differ only in their ``hp`` / ``mpg`` range predicates.  PI2
renders them as a single scatterplot whose pan / zoom interaction controls the
range predicates.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import (
    Executor,
    InterfaceRuntime,
    PipelineConfig,
    export_html,
    generate_interface,
    standard_catalog,
)

QUERIES = [
    "SELECT hp, mpg, origin FROM Cars "
    "WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
    "SELECT hp, mpg, origin FROM Cars "
    "WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30",
]


def main() -> None:
    catalog = standard_catalog(scale=0.3)
    config = PipelineConfig.fast()

    print("Generating an interface from the example queries …\n")
    result = generate_interface(QUERIES, catalog=catalog, config=config)
    interface = result.interface

    print(interface.describe())
    print(
        f"\ngenerated in {result.total_seconds:.1f}s "
        f"(search {result.search_seconds:.1f}s, mapping {result.mapping_seconds:.1f}s)"
    )

    # Drive the interface headlessly: pan the chart to a new region and watch
    # the underlying query (and its result) update.
    runtime = InterfaceRuntime(interface, Executor(catalog))
    print("\ninitial query:", runtime.view_states[0].sql)

    pan = next(
        (i for i in interface.interactions if i.candidate.interaction in ("pan", "zoom")),
        None,
    )
    if pan is not None:
        runtime.trigger_interaction(pan, ((100, 150), (15, 25)))
        state = runtime.view_states[0]
        print("after panning:  ", state.sql)
        print("rows now shown: ", len(state.result.rows))

    # Verify the interface can reproduce both input queries exactly.
    for index in range(len(QUERIES)):
        assert runtime.replay_query(index), f"query {index} not expressible!"
    print("\nboth input queries are expressible through the interface ✓")

    out = os.path.join(os.path.dirname(__file__), "quickstart_interface.html")
    export_html(interface, out, runtime, title="PI2 quickstart — Explore")
    print(f"wrote a static preview to {out}")


if __name__ == "__main__":
    main()
