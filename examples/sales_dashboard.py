"""Case study: authoring a sales-analysis dashboard from complex queries
(paper Figure 15c).

Listing 7's queries compute, per city, the product line with the maximum
total sales (a correlated, nested ``HAVING`` sub-query) for different date
ranges, plus per-branch / per-product daily sales series.  Dashboard tools
like Metabase or Tableau cannot parameterise such queries; PI2 generates a
working dashboard directly from the examples.

Run with::

    python examples/sales_dashboard.py
"""

from __future__ import annotations

import os

from repro import (
    Executor,
    InterfaceRuntime,
    PipelineConfig,
    export_html,
    generate_for_workload,
    standard_catalog,
)
from repro.workloads import SALES


def main() -> None:
    catalog = standard_catalog(scale=0.4)
    result = generate_for_workload(SALES, catalog=catalog, config=PipelineConfig.fast())
    interface = result.interface

    print(interface.describe())
    print(f"\ngenerated in {result.total_seconds:.1f}s")

    executor = Executor(catalog)
    runtime = InterfaceRuntime(interface, executor)

    print("\ncurrent views:")
    for i, state in enumerate(runtime.view_states):
        rows = len(state.result.rows) if state.result else 0
        print(f"  view {i}: {rows} rows | {state.sql[:100]}")

    # narrow the analysed date range (the brush / date widgets of Figure 15c)
    date_controls = [
        w
        for w in interface.widgets
        if "date" in (w.candidate.label or "").lower() and w.candidate.options
    ]
    range_interactions = [
        i for i in interface.interactions
        if i.candidate.interaction in ("brush-x", "pan", "zoom")
    ]
    if date_controls:
        widget = date_controls[0]
        print(f"\nselecting a different date range via {widget.describe()}")
        runtime.set_widget(widget, 1 % max(1, len(widget.candidate.options)))
    elif range_interactions:
        interaction = range_interactions[0]
        print(f"\nbrushing a date range via {interaction.describe()}")
        runtime.trigger_interaction(interaction, ("2019-01-20", "2019-02-20"))
    for i, state in enumerate(runtime.view_states):
        rows = len(state.result.rows) if state.result else 0
        print(f"  view {i}: {rows} rows | {state.sql[:100]}")

    # the dashboard must be able to reproduce the original analysis queries
    expressed = sum(runtime.replay_query(i) for i in range(len(SALES.queries)))
    print(f"\n{expressed}/{len(SALES.queries)} input queries expressible")

    top_products = runtime.view_states[0].result
    if top_products is not None and top_products.rows:
        print("\ntop product per city (current selection):")
        for row in top_products.rows[:5]:
            print("  ", row)

    out = os.path.join(os.path.dirname(__file__), "sales_dashboard.html")
    export_html(interface, out, runtime, title="PI2 — sales dashboard")
    print(f"wrote a static preview to {out}")


if __name__ == "__main__":
    main()
