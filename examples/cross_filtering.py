"""Cross-filtering between coordinated histograms (paper Figure 14d).

Listing 4's nine queries group flights by hour, delay and distance, and filter
each histogram by the other two attributes.  PI2 derives cross-filtering from
first principles: the three histograms become three coordinated views, and the
range selections on one view update the predicates of the others.

Run with::

    python examples/cross_filtering.py
"""

from __future__ import annotations

import os

from repro import (
    Executor,
    InterfaceRuntime,
    PipelineConfig,
    export_html,
    generate_for_workload,
    standard_catalog,
)
from repro.workloads import FILTER


def main() -> None:
    catalog = standard_catalog(scale=0.3)
    config = PipelineConfig.fast()
    result = generate_for_workload(FILTER, catalog=catalog, config=config)
    interface = result.interface

    print(interface.describe())
    print(f"\ngenerated in {result.total_seconds:.1f}s "
          f"({interface.num_views()} coordinated views)")

    executor = Executor(catalog)
    runtime = InterfaceRuntime(interface, executor)

    def show(label: str) -> None:
        print(f"\n{label}")
        for i, state in enumerate(runtime.view_states):
            rows = len(state.result.rows) if state.result else 0
            print(f"  view {i}: {rows:4d} groups | {state.sql[:95]}")

    show("initial state (no filters):")

    # simulate a range selection: restrict the delay range and watch the other
    # histograms' queries gain / change their predicates
    range_interactions = [
        i
        for i in interface.interactions
        if i.candidate.interaction in ("brush-x", "pan", "zoom")
    ]
    if range_interactions:
        interaction = range_interactions[0]
        print(f"\napplying {interaction.describe()} with a narrow range …")
        runtime.trigger_interaction(interaction, (5, 20))
        show("after the range selection:")
    else:
        # fall back to widgets when the chosen mapping used sliders instead
        sliders = [
            w for w in interface.widgets if w.candidate.widget.name == "range_slider"
        ]
        if sliders:
            runtime.set_widget(sliders[0], (5, 20))
            show("after moving the range slider:")

    expressed = sum(runtime.replay_query(i) for i in range(len(FILTER.queries)))
    print(f"\n{expressed}/{len(FILTER.queries)} input queries expressible")

    out = os.path.join(os.path.dirname(__file__), "cross_filtering.html")
    export_html(interface, out, runtime, title="PI2 — cross-filtering")
    print(f"wrote a static preview to {out}")


if __name__ == "__main__":
    main()
