"""Case study: a custom SDSS sky-survey exploration interface (paper Figure 15a).

The SDSS web site only offers text-box forms; the query log (Listing 5)
contains join queries filtering stars by celestial coordinates plus simpler
location queries.  PI2 turns the log into an interactive interface: the wide
9-attribute join result is rendered as a table, the ``(ra, dec)`` locations as
a scatterplot, and panning / zooming the scatterplot updates the coordinate
predicates of the table's query.

Run with::

    python examples/sdss_explorer.py
"""

from __future__ import annotations

import os

from repro import (
    Executor,
    InterfaceRuntime,
    PipelineConfig,
    export_html,
    generate_for_workload,
    standard_catalog,
)
from repro.workloads import SDSS


def main() -> None:
    catalog = standard_catalog(scale=0.4)
    result = generate_for_workload(SDSS, catalog=catalog, config=PipelineConfig.fast())
    interface = result.interface

    print(interface.describe())
    print(f"\ngenerated in {result.total_seconds:.1f}s")

    executor = Executor(catalog)
    runtime = InterfaceRuntime(interface, executor)

    for i, state in enumerate(runtime.view_states):
        rows = len(state.result.rows) if state.result else 0
        chart = interface.views[i].vis.vis_type.name
        print(f"view {i} ({chart}): {rows} rows | {state.sql[:90]}")

    # pan the sky-location scatterplot to a different region and show how the
    # coordinate predicates (and the row count) change
    pan = next(
        (i for i in interface.interactions if i.candidate.interaction in ("pan", "zoom")),
        None,
    )
    if pan is not None:
        print("\npanning the location chart to ra ∈ [213.2, 213.7], dec ∈ [-0.6, -0.2] …")
        affected = runtime.trigger_interaction(pan, ((213.2, 213.7), (-0.6, -0.2)))
        for view_index in affected:
            state = runtime.view_states[view_index]
            rows = len(state.result.rows) if state.result else 0
            print(f"  view {view_index} now: {rows} rows | {state.sql[:90]}")

    expressed = sum(runtime.replay_query(i) for i in range(len(SDSS.queries)))
    print(f"\n{expressed}/{len(SDSS.queries)} input queries expressible")

    out = os.path.join(os.path.dirname(__file__), "sdss_explorer.html")
    export_html(interface, out, runtime, title="PI2 — SDSS explorer")
    print(f"wrote a static preview to {out}")


if __name__ == "__main__":
    main()
