"""Transformation engine: enumerate and apply rules over a list of Difftrees.

The engine filters rule applications for *safety* — a transformed state is
only kept when its Difftrees still collectively express every input query —
so the search space exposed to MCTS always satisfies the paper's guarantee
that any reachable state expresses the input log.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..database.catalog import Catalog
from ..database.executor import Executor
from ..difftree.tree import Difftree
from ..sqlparser.ast_nodes import Node
from .rules import DEFAULT_RULES, Application, TransformContext, TransformRule


class TransformEngine:
    """Enumerates valid transformations for a list of Difftrees."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        executor: Optional[Executor] = None,
        rules: Optional[Sequence[TransformRule]] = None,
        max_applications: int = 48,
        enable_cache: bool = True,
    ) -> None:
        self.ctx = TransformContext(catalog, executor)
        self.rules = list(rules) if rules is not None else list(DEFAULT_RULES)
        self.max_applications = max_applications
        self.enable_cache = enable_cache
        self._app_cache: dict[tuple[str, ...], list[Application]] = {}
        #: (tree fingerprint, query fingerprint) → expressible?  Coverage
        #: verification dominates search time without this cache because the
        #: same tree structures are re-verified across MCTS iterations.
        self._express_cache: dict[tuple[str, str], bool] = {}

    # -- enumeration --------------------------------------------------------

    def applications(
        self, trees: Sequence[Difftree], rng: Optional[random.Random] = None
    ) -> list[Application]:
        """All valid rule applications for the given state (bounded).

        When more applications exist than ``max_applications``, a random
        (seeded) subset is kept so MCTS expansion stays tractable.  Results
        are cached per state fingerprint — rollouts revisit states often, and
        re-enumerating rules dominates search time otherwise (this is one of
        the paper's "simple optimizations").
        """
        cache_key: Optional[tuple[str, ...]] = None
        if self.enable_cache:
            cache_key = tuple(sorted(t.fingerprint() for t in trees))
            if cache_key in self._app_cache:
                return self._app_cache[cache_key]
        apps: list[Application] = []
        for rule in self.rules:
            try:
                apps.extend(rule.applications(trees, self.ctx))
            except Exception:
                # a rule failing on an exotic tree should never kill the search
                continue
        if len(apps) > self.max_applications:
            rng = rng or random.Random(0)
            apps = rng.sample(apps, self.max_applications)
        if cache_key is not None:
            self._app_cache[cache_key] = apps
        return apps

    # -- application ---------------------------------------------------------------

    def apply(
        self, application: Application, verify: bool = True
    ) -> Optional[list[Difftree]]:
        """Apply one transformation; returns ``None`` when it breaks coverage."""
        try:
            new_trees = application.apply()
        except Exception:
            return None
        if verify and not self.covers_all_queries(new_trees):
            return None
        return new_trees

    def refactor_to_fixpoint(
        self, trees: Sequence[Difftree], max_steps: int = 200
    ) -> list[Difftree]:
        """Deterministically apply refactoring / simplification / ANY→VAL rules
        until none applies.

        This reproduces the canonical rule sequence of the paper's Figure 12
        (Merge → Partition → PushANY → ANY→VAL) as a preprocessing step: the
        resulting Difftrees isolate exactly the syntactic differences between
        the queries, and MCTS then explores alternative structures (merging
        views, SUBSET/MULTI generalisations, splits) from that starting point.
        Every applied rule preserves expressiveness, so the refined state still
        expresses the whole input log.
        """
        from .rules import AnyToValRule, MergeAnyRule, NoopRule, PushAnyRule

        ordered_rules = [MergeAnyRule(), NoopRule(), PushAnyRule(), AnyToValRule()]
        current = [t.copy() for t in trees]
        seen_states = {tuple(sorted(t.fingerprint() for t in current))}
        for _ in range(max_steps):
            progressed = False
            for rule in ordered_rules:
                apps = rule.applications(current, self.ctx)
                for app in apps:
                    new_trees = self.apply(app)
                    if new_trees is None:
                        continue
                    fingerprint = tuple(sorted(t.fingerprint() for t in new_trees))
                    if fingerprint in seen_states:
                        continue
                    seen_states.add(fingerprint)
                    current = new_trees
                    progressed = True
                    break
                if progressed:
                    break
            if not progressed:
                break
        return current

    def covers_all_queries(self, trees: Sequence[Difftree]) -> bool:
        """Every input query must be expressible by at least one Difftree."""
        # query fingerprints are hoisted out of the (query, tree) pair loops:
        # a fingerprint is a full-AST recursion, and recomputing it per pair
        # dominated search wall-clock on multi-tree states
        tree_query_fps: list[set[str]] = []
        all_queries: list[tuple[str, Node]] = []
        seen: set[str] = set()
        for tree in trees:
            fps: set[str] = set()
            for q in tree.queries:
                fp = q.fingerprint()
                fps.add(fp)
                if fp not in seen:
                    seen.add(fp)
                    all_queries.append((fp, q))
            tree_query_fps.append(fps)
        for fp, query in all_queries:
            if not any(
                self._tree_expresses(tree, query, fp)
                for tree, fps in zip(trees, tree_query_fps)
                if fp in fps
            ):
                return False
        return True

    def _tree_expresses(
        self, tree: Difftree, query: Node, query_fp: Optional[str] = None
    ) -> bool:
        if query_fp is None:
            query_fp = query.fingerprint()
        key = (tree.fingerprint(), query_fp)
        if key not in self._express_cache:
            from ..difftree.match import expresses

            self._express_cache[key] = expresses(tree.root, query)
        return self._express_cache[key]
