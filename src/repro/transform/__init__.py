"""Difftree transformation rules and the engine that applies them."""

from .engine import TransformEngine
from .paths import Path, iter_paths, node_at, parent_of, replace_at
from .rules import (
    DEFAULT_RULES,
    AnyToMultiRule,
    AnyToSubsetRule,
    AnyToValRule,
    Application,
    MergeAnyRule,
    MergeTreesRule,
    NoopRule,
    PartitionRule,
    PushAnyRule,
    PushOptListRule,
    SplitTreeRule,
    TransformContext,
    TransformRule,
)

__all__ = [
    "AnyToMultiRule",
    "AnyToSubsetRule",
    "AnyToValRule",
    "Application",
    "DEFAULT_RULES",
    "MergeAnyRule",
    "MergeTreesRule",
    "NoopRule",
    "PartitionRule",
    "Path",
    "PushAnyRule",
    "PushOptListRule",
    "SplitTreeRule",
    "TransformContext",
    "TransformEngine",
    "TransformRule",
    "iter_paths",
    "node_at",
    "parent_of",
    "replace_at",
]
