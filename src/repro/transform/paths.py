"""Node addressing inside Difftrees.

Transformation rules never mutate the tree they were enumerated on: they copy
the Difftree and then rewrite the copy.  Nodes are therefore addressed by
*paths* (tuples of child indices from the root), which stay valid across the
copy.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..sqlparser.ast_nodes import Node

Path = tuple[int, ...]


def iter_paths(root: Node) -> Iterator[tuple[Path, Node]]:
    """Yield (path, node) for every node in the tree, in pre-order."""

    def walk(node: Node, path: Path) -> Iterator[tuple[Path, Node]]:
        yield path, node
        for i, child in enumerate(node.children):
            yield from walk(child, path + (i,))

    yield from walk(root, ())


def node_at(root: Node, path: Path) -> Node:
    """The node at ``path`` (the root itself for the empty path)."""
    node = root
    for index in path:
        node = node.children[index]
    return node


def parent_of(root: Node, path: Path) -> Optional[Node]:
    """The parent of the node at ``path`` (``None`` for the root)."""
    if not path:
        return None
    return node_at(root, path[:-1])


def replace_at(root: Node, path: Path, new_node: Node) -> Node:
    """Replace the node at ``path`` in place; returns the (possibly new) root.

    Replacing the root returns ``new_node``; all other replacements mutate the
    parent's child list and return the original root.
    """
    if not path:
        return new_node
    parent = node_at(root, path[:-1])
    parent.children[path[-1]] = new_node
    return root
