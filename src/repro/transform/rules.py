"""Difftree transformation rules (paper Section 6.1, Figure 13).

Rules come in four categories:

* **Refactoring** — PushANY, PushOPT, Partition: isolate the precise
  differences between queries by pushing choice nodes towards the leaves.
* **Cross-tree** — Merge, Split: combine several Difftrees under a fresh
  ``ANY`` root, or break an ``ANY``-rooted Difftree apart.
* **Mutation** — ANY→VAL, ANY→MULTI, ANY→SUBSET: generalise a choice node to
  a more expressive one (numeric sliders, repeated lists, optional subsets).
* **Simplification** — Noop, MergeANY: remove redundant structure.

Every rule preserves or increases the expressiveness of the Difftrees, so any
state reachable from the initial per-query trees still expresses the input
queries.  Rules are enumerated as :class:`Application` objects (rule +
location); applying one returns a *new* list of Difftrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..database.catalog import Catalog
from ..database.executor import Executor
from ..sqlparser.ast_nodes import L, Node, empty
from ..difftree.nodes import (
    AnyNode,
    ChoiceNode,
    MultiNode,
    OptNode,
    SubsetNode,
    ValNode,
)
from ..difftree.schema import TypeAnnotator, union_result_schemas
from ..difftree.tree import Difftree
from ..difftree.types import PiType, union_types
from .paths import Path, iter_paths, node_at, replace_at

#: Canonical ordering of SELECT statement clauses, used when PushANY aligns
#: children of statement nodes whose clause sets differ.
_CLAUSE_ORDER = [
    L.SELECT_CLAUSE,
    L.FROM_CLAUSE,
    L.WHERE_CLAUSE,
    L.GROUPBY_CLAUSE,
    L.HAVING_CLAUSE,
    L.ORDERBY_CLAUSE,
    L.LIMIT_CLAUSE,
]


@dataclass
class Application:
    """One applicable transformation: a rule at a specific location."""

    rule_name: str
    category: str
    description: str
    apply: Callable[[], list[Difftree]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Application({self.rule_name}: {self.description})"


class TransformContext:
    """Shared context rules may need (catalogue / executor for schema checks)."""

    def __init__(
        self, catalog: Optional[Catalog] = None, executor: Optional[Executor] = None
    ) -> None:
        self.catalog = catalog
        self.executor = executor


class TransformRule:
    """Base class: enumerate applications of one rule over a list of Difftrees."""

    name = "abstract"
    category = "abstract"

    def applications(
        self, trees: Sequence[Difftree], ctx: TransformContext
    ) -> list[Application]:
        raise NotImplementedError

    # -- helpers shared by node-local rules ----------------------------------

    def _tree_applications(
        self,
        trees: Sequence[Difftree],
        ctx: TransformContext,
        finder: Callable[[Difftree, TransformContext], list[tuple[Path, str]]],
        rewriter: Callable[[Node, Path, TransformContext], Node],
    ) -> list[Application]:
        apps: list[Application] = []
        for tree_idx, tree in enumerate(trees):
            for path, description in finder(tree, ctx):
                apps.append(
                    self._make_application(
                        trees, tree_idx, path, description, rewriter, ctx
                    )
                )
        return apps

    def _make_application(
        self,
        trees: Sequence[Difftree],
        tree_idx: int,
        path: Path,
        description: str,
        rewriter: Callable[[Node, Path, TransformContext], Node],
        ctx: TransformContext,
    ) -> Application:
        def apply() -> list[Difftree]:
            new_trees = [t.copy() for t in trees]
            target = new_trees[tree_idx]
            new_root = rewriter(target.root, path, ctx)
            new_trees[tree_idx] = Difftree(new_root, target.queries)
            return new_trees

        return Application(self.name, self.category, description, apply)


# ---------------------------------------------------------------------------
# Refactoring rules
# ---------------------------------------------------------------------------


class PushAnyRule(TransformRule):
    """Push an ANY below children that share the same root node.

    ``ANY(A(x,y), A(x',y))`` becomes ``A(ANY(x,x'), y)``.  When the children's
    child lists differ in which clauses/elements are present (e.g. one query
    has a WHERE clause and another does not), the missing positions become
    OPT-style ANYs with an empty alternative.
    """

    name = "PushANY"
    category = "refactoring"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        for path, node in iter_paths(tree.root):
            if not isinstance(node, AnyNode) or node.label != L.ANY:
                continue
            children = node.non_empty_children()
            if len(children) < 2:
                continue
            if any(isinstance(c, ChoiceNode) for c in children):
                continue
            signatures = {c.signature() for c in children}
            if len(signatures) != 1:
                continue
            if self._alignment(children) is None:
                continue
            found.append((path, f"push ANY below {children[0].label}"))
        return found

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        assert isinstance(node, AnyNode)
        children = node.non_empty_children()
        alignment = self._alignment(children)
        assert alignment is not None
        template = children[0]
        new_children: list[Node] = []
        for slot in alignment:
            variants = [c.children[i] for c, i in zip(children, slot) if i is not None]
            missing = any(i is None for i in slot)
            distinct: list[Node] = []
            for v in variants:
                if not any(v == d for d in distinct):
                    distinct.append(v)
            if len(distinct) == 1 and not missing:
                new_children.append(distinct[0].copy())
            else:
                alternatives = [d.copy() for d in distinct]
                if missing:
                    alternatives.append(empty())
                new_children.append(AnyNode(alternatives))
        new_node: Node = Node(template.label, template.value, new_children)
        if node.is_opt:
            # the original ANY also offered an empty alternative (e.g. a query
            # without a WHERE clause); keep that option above the pushed node
            new_node = AnyNode([new_node, empty()], node_id=node.node_id)
        return replace_at(root, path, new_node)

    def _alignment(self, children: list[Node]) -> Optional[list[tuple]]:
        """Align the children's child lists position-by-position.

        Three strategies, tried in order:

        1. identical arity → positional alignment;
        2. unique child labels (e.g. SELECT-statement clauses) → align by
           label, ordered canonically;
        3. predicate lists (conjunctions) → align by a key derived from the
           predicate's shape and the attribute it constrains, so that
           ``state = 'CA'`` lines up with ``state = 'WA'`` and ``date > …``
           with ``date > …`` even when some queries omit predicates.

        Returns a list of slots; each slot is a tuple with, per child, the
        index of the aligned grandchild (or ``None`` when absent).  Returns
        ``None`` when no consistent alignment exists.
        """
        arities = {len(c.children) for c in children}
        if len(arities) == 1:
            width = arities.pop()
            if width == 0:
                return None
            return [tuple(i for _ in children) for i in range(width)]

        # strategy 2: align by child label when labels are unique per child
        label_lists = [[gc.label for gc in c.children] for c in children]
        if all(len(set(labels)) == len(labels) for labels in label_lists):
            all_labels: list[str] = []
            for labels in label_lists:
                for lbl in labels:
                    if lbl not in all_labels:
                        all_labels.append(lbl)
            # order clause labels canonically so the statement stays valid
            all_labels.sort(
                key=lambda lbl: (
                    _CLAUSE_ORDER.index(lbl)
                    if lbl in _CLAUSE_ORDER
                    else len(_CLAUSE_ORDER),
                )
            )
            slots = []
            for lbl in all_labels:
                slot = []
                for labels in label_lists:
                    slot.append(labels.index(lbl) if lbl in labels else None)
                slots.append(tuple(slot))
            return slots

        # strategy 3: align predicate lists by (shape, constrained attribute)
        if children[0].label in L.LIST_LABELS:
            key_lists = [
                [self._predicate_key(gc) for gc in c.children] for c in children
            ]
            if any(
                len(set(keys)) != len(keys) or None in keys for keys in key_lists
            ):
                return None
            all_keys: list = []
            for keys in key_lists:
                for key in keys:
                    if key not in all_keys:
                        all_keys.append(key)
            slots = []
            for key in all_keys:
                slot = []
                for keys in key_lists:
                    slot.append(keys.index(key) if key in keys else None)
                slots.append(tuple(slot))
            return slots
        return None

    @staticmethod
    def _predicate_key(node: Node):
        """Alignment key of a conjunct: its shape plus the column it touches."""
        first_column = None
        for descendant in node.walk():
            if descendant.label == L.COLUMN:
                first_column = str(descendant.value)
                break
        if first_column is None:
            return None
        return (node.label, node.value, first_column)


class PushOptListRule(TransformRule):
    """PushOPT2: push an OPT over a list node down to each of its elements.

    ``OPT(List(x, y))`` becomes ``List(OPT(x), OPT(y))``, which is strictly
    more expressive (each element can now be toggled independently).
    """

    name = "PushOPT2"
    category = "refactoring"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        for path, node in iter_paths(tree.root):
            target = self._opt_list_child(node)
            if target is not None and len(target.children) >= 2:
                found.append((path, f"push OPT into {target.label}"))
        return found

    @staticmethod
    def _opt_list_child(node: Node) -> Optional[Node]:
        if isinstance(node, OptNode) and node.child.label in L.LIST_LABELS:
            return node.child
        if (
            isinstance(node, AnyNode)
            and node.is_opt
            and len(node.non_empty_children()) == 1
            and node.non_empty_children()[0].label in L.LIST_LABELS
        ):
            return node.non_empty_children()[0]
        return None

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        target = self._opt_list_child(node)
        assert target is not None
        new_children = [
            c.copy() if isinstance(c, (OptNode,)) else AnyNode([c.copy(), empty()])
            for c in target.children
        ]
        new_node = Node(target.label, target.value, new_children)
        return replace_at(root, path, new_node)


class PartitionRule(TransformRule):
    """Group an ANY's children into clusters with the same root signature.

    ``ANY(A(..), A(..), B(..))`` becomes ``ANY(ANY(A(..), A(..)), B(..))``,
    which isolates homogeneous clusters so PushANY can fire on them.
    """

    name = "Partition"
    category = "refactoring"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        for path, node in iter_paths(tree.root):
            if not isinstance(node, AnyNode) or isinstance(node, (ValNode,)):
                continue
            children = node.non_empty_children()
            if len(children) < 3:
                continue
            groups = self._group(children)
            if len(groups) < 2 or all(len(g) == 1 for g in groups.values()):
                continue
            found.append((path, f"partition {len(children)} alternatives"))
        return found

    @staticmethod
    def _group(children: list[Node]) -> dict:
        groups: dict[tuple, list[Node]] = {}
        for c in children:
            groups.setdefault(c.signature(), []).append(c)
        return groups

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        assert isinstance(node, AnyNode)
        children = node.non_empty_children()
        had_empty = node.is_opt
        groups = self._group(children)
        new_children: list[Node] = []
        for group in groups.values():
            if len(group) == 1:
                new_children.append(group[0].copy())
            else:
                new_children.append(AnyNode([g.copy() for g in group]))
        if had_empty:
            new_children.append(empty())
        new_node = AnyNode(new_children, node_id=node.node_id)
        return replace_at(root, path, new_node)


# ---------------------------------------------------------------------------
# Mutation rules
# ---------------------------------------------------------------------------


class AnyToValRule(TransformRule):
    """Generalise an ANY over literals to a VAL node over the literals' domain.

    Requires all (non-empty) children to be literals of compatible types; the
    VAL's type is the union of the literal types, specialised to an attribute
    type when the comparison context allows it (paper Figure 3(c)).
    """

    name = "ANY→VAL"
    category = "mutation"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        annotator = tree.annotator(ctx.catalog) if ctx.catalog else None
        for path, node in iter_paths(tree.root):
            if not isinstance(node, AnyNode) or node.label != L.ANY:
                continue
            children = node.non_empty_children()
            if node.is_opt or not children:
                continue
            if not all(
                c.label in (L.LITERAL_NUM, L.LITERAL_STR, L.LITERAL_BOOL)
                for c in children
            ):
                continue
            found.append((path, f"generalise {len(children)} literals to VAL"))
        _ = annotator
        return found

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        assert isinstance(node, AnyNode)
        children = [c.copy() for c in node.non_empty_children()]
        pitype = node.pitype
        if pitype is None and ctx.catalog is not None:
            annotator = TypeAnnotator(ctx.catalog)
            annotator.annotate(root)
            pitype = union_types([annotator.type_of(c) for c in node.non_empty_children()])
        if pitype is None:
            pitype = (
                PiType.num()
                if all(c.label == L.LITERAL_NUM for c in children)
                else PiType.str_()
            )
        new_node = ValNode(children, pitype=pitype, node_id=node.node_id)
        return replace_at(root, path, new_node)


class AnyToSubsetRule(TransformRule):
    """Generalise an ANY over same-labelled list nodes into a SUBSET list.

    ``ANY(List(x,y,z), List(x,z))`` becomes ``List(SUBSET(x,y,z))`` when each
    alternative's elements form an (ordered) subset of the union of elements.
    """

    name = "ANY→SUBSET"
    category = "mutation"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        for path, node in iter_paths(tree.root):
            if not isinstance(node, AnyNode) or node.label != L.ANY:
                continue
            children = node.non_empty_children()
            if len(children) < 2 or any(isinstance(c, ChoiceNode) for c in children):
                continue
            if len({c.signature() for c in children}) != 1:
                continue
            if children[0].label not in L.LIST_LABELS:
                continue
            union = self._union_elements(children)
            if union is None or len(union) < 2:
                continue
            found.append((path, f"generalise lists to SUBSET of {len(union)}"))
        return found

    @staticmethod
    def _union_elements(children: list[Node]) -> Optional[list[Node]]:
        union: list[Node] = []
        for child in children:
            for element in child.children:
                if not any(element == u for u in union):
                    union.append(element)
        # each alternative must be an ordered subsequence of the union
        for child in children:
            positions = []
            for element in child.children:
                for i, u in enumerate(union):
                    if element == u:
                        positions.append(i)
                        break
            if positions != sorted(positions) or len(positions) != len(child.children):
                return None
        return union

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        assert isinstance(node, AnyNode)
        children = node.non_empty_children()
        union = self._union_elements(children)
        assert union is not None
        template = children[0]
        sep = L.LIST_SEPARATORS.get(template.label, ", ")
        subset = SubsetNode([u.copy() for u in union], sep=sep, node_id=node.node_id)
        new_node = Node(template.label, template.value, [subset])
        return replace_at(root, path, new_node)


class AnyToMultiRule(TransformRule):
    """Generalise an ANY over same-labelled list nodes into a MULTI list.

    ``ANY(List(a,a), List(b))`` becomes ``List(MULTI(ANY(a,b)))`` — the list
    may repeat any of the observed element shapes an arbitrary number of
    times (paper Figure 7(b)).
    """

    name = "ANY→MULTI"
    category = "mutation"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        for path, node in iter_paths(tree.root):
            if not isinstance(node, AnyNode) or node.label != L.ANY:
                continue
            children = node.non_empty_children()
            if len(children) < 2 or any(isinstance(c, ChoiceNode) for c in children):
                continue
            if len({c.signature() for c in children}) != 1:
                continue
            if children[0].label not in L.LIST_LABELS:
                continue
            elements = self._distinct_elements(children)
            if not elements:
                continue
            found.append((path, f"generalise lists to MULTI over {len(elements)}"))
        return found

    @staticmethod
    def _distinct_elements(children: list[Node]) -> list[Node]:
        elements: list[Node] = []
        for child in children:
            for element in child.children:
                if element.contains_choice():
                    return []
                if not any(element == e for e in elements):
                    elements.append(element)
        return elements

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        assert isinstance(node, AnyNode)
        children = node.non_empty_children()
        elements = self._distinct_elements(children)
        template_list = children[0]
        sep = L.LIST_SEPARATORS.get(template_list.label, ", ")
        if len(elements) == 1:
            template: Node = elements[0].copy()
        else:
            template = AnyNode([e.copy() for e in elements])
        multi = MultiNode([template], sep=sep, node_id=node.node_id)
        new_node = Node(template_list.label, template_list.value, [multi])
        return replace_at(root, path, new_node)


# ---------------------------------------------------------------------------
# Simplification rules
# ---------------------------------------------------------------------------


class NoopRule(TransformRule):
    """Remove ANY nodes whose alternatives are all identical."""

    name = "Noop"
    category = "simplification"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        for path, node in iter_paths(tree.root):
            if not isinstance(node, AnyNode) or node.label != L.ANY:
                continue
            children = node.non_empty_children()
            if node.is_opt or len(children) < 1:
                continue
            if all(c == children[0] for c in children[1:]) and len(node.children) == len(
                children
            ):
                if len(children) >= 2 or len(node.children) > 1:
                    found.append((path, "remove redundant ANY"))
                elif len(node.children) == 1:
                    found.append((path, "unwrap single-child ANY"))
        return found

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        assert isinstance(node, AnyNode)
        replacement = node.non_empty_children()[0].copy()
        return replace_at(root, path, replacement)


class MergeAnyRule(TransformRule):
    """Flatten a cascade of nested ANY nodes into a single ANY."""

    name = "MergeANY"
    category = "simplification"

    def applications(self, trees, ctx):
        return self._tree_applications(trees, ctx, self._find, self._rewrite)

    def _find(self, tree: Difftree, ctx: TransformContext):
        found = []
        for path, node in iter_paths(tree.root):
            if not isinstance(node, AnyNode) or node.label != L.ANY:
                continue
            if any(
                isinstance(c, AnyNode) and c.label == L.ANY for c in node.children
            ):
                found.append((path, "flatten nested ANY"))
        return found

    def _rewrite(self, root: Node, path: Path, ctx: TransformContext) -> Node:
        node = node_at(root, path)
        assert isinstance(node, AnyNode)
        flattened: list[Node] = []
        for child in node.children:
            if isinstance(child, AnyNode) and child.label == L.ANY:
                flattened.extend(c.copy() for c in child.children)
            else:
                flattened.append(child.copy())
        deduped: list[Node] = []
        for c in flattened:
            if not any(c == d for d in deduped):
                deduped.append(c)
        new_node = AnyNode(deduped, node_id=node.node_id)
        return replace_at(root, path, new_node)


# ---------------------------------------------------------------------------
# Cross-tree rules
# ---------------------------------------------------------------------------


class MergeTreesRule(TransformRule):
    """Merge two Difftrees with union-compatible result schemas into one."""

    name = "Merge"
    category = "cross-tree"

    def applications(self, trees, ctx):
        apps: list[Application] = []
        if ctx.executor is None or len(trees) < 2:
            return apps
        for i in range(len(trees)):
            for j in range(i + 1, len(trees)):
                schema_i = trees[i].result_schema(ctx.executor)
                schema_j = trees[j].result_schema(ctx.executor)
                if schema_i is None or schema_j is None:
                    continue
                if union_result_schemas([schema_i, schema_j]) is None:
                    continue
                apps.append(self._merge_application(trees, i, j))
        return apps

    def _merge_application(self, trees, i: int, j: int) -> Application:
        def apply() -> list[Difftree]:
            new_trees = [t.copy() for k, t in enumerate(trees) if k not in (i, j)]
            left, right = trees[i], trees[j]
            left_root = left.root.copy()
            right_root = right.root.copy()
            children: list[Node] = []
            for root in (left_root, right_root):
                if isinstance(root, AnyNode) and root.label == L.ANY:
                    children.extend(root.children)
                else:
                    children.append(root)
            merged = Difftree(AnyNode(children), left.queries + right.queries)
            new_trees.append(merged)
            return new_trees

        return Application(
            self.name, self.category, f"merge trees {i} and {j}", apply
        )


class SplitTreeRule(TransformRule):
    """Split a Difftree rooted at an ANY into one Difftree per alternative."""

    name = "Split"
    category = "cross-tree"

    def applications(self, trees, ctx):
        apps: list[Application] = []
        for idx, tree in enumerate(trees):
            root = tree.root
            if (
                isinstance(root, AnyNode)
                and root.label == L.ANY
                and len(root.non_empty_children()) >= 2
                and not root.is_opt
            ):
                apps.append(self._split_application(trees, idx))
        return apps

    def _split_application(self, trees, idx: int) -> Application:
        def apply() -> list[Difftree]:
            new_trees = [t.copy() for k, t in enumerate(trees) if k != idx]
            tree = trees[idx]
            root = tree.root
            assert isinstance(root, AnyNode)
            for child in root.non_empty_children():
                sub = Difftree(child.copy(), tree.queries)
                expressible = sub.expressible_queries()
                new_trees.append(Difftree(child.copy(), expressible or tree.queries))
            return new_trees

        return Application(self.name, self.category, f"split tree {idx}", apply)


#: The default rule set, in the order the paper presents them.
DEFAULT_RULES: list[TransformRule] = [
    PushAnyRule(),
    PushOptListRule(),
    PartitionRule(),
    MergeTreesRule(),
    SplitTreeRule(),
    AnyToValRule(),
    AnyToMultiRule(),
    AnyToSubsetRule(),
    NoopRule(),
    MergeAnyRule(),
]
