"""PI1 baseline: widget-only interface mining (Zhang et al., SIGMOD 2019).

The paper's predecessor system ("precision interfaces") models an interface
as an *unordered set of widgets*: it aligns the query ASTs, extracts the
subtrees that differ, groups the differences, and maps each group to an
interactive widget.  It does **not** consider how results are rendered, so it
cannot produce visualization interactions, multiple coordinated views, or
layouts — exactly the gap PI2's evaluation (Figure 1) highlights.

This reimplementation reuses the Difftree machinery to perform the alignment
(Merge + PushANY + ANY→VAL to a fixed point) and then maps every choice node
to its cheapest *widget*; visualizations and layout are intentionally absent.
It exists so the benchmarks can compare PI2's interfaces against the PI1
output on the same query logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..cost.model import CostModel
from ..database.catalog import Catalog
from ..database.datasets import standard_catalog
from ..database.executor import Executor
from ..difftree.builder import initial_difftrees, merge_difftrees, parse_queries
from ..difftree.tree import Difftree
from ..mapping.widgets import WidgetCandidate, candidate_widgets
from ..sqlparser.ast_nodes import Node
from ..transform.engine import TransformEngine
from ..transform.rules import (
    AnyToValRule,
    MergeAnyRule,
    NoopRule,
    PartitionRule,
    PushAnyRule,
)

QueryLike = Union[str, Node]


@dataclass
class PI1Interface:
    """PI1's output: a flat, unordered set of widgets over one merged Difftree."""

    tree: Difftree
    widgets: list[WidgetCandidate] = field(default_factory=list)

    def widget_kinds(self) -> set[str]:
        return {w.widget.name for w in self.widgets}

    @property
    def supports_visualizations(self) -> bool:
        """PI1 has no notion of visualizations."""
        return False

    @property
    def supports_layout(self) -> bool:
        """PI1 emits an unordered widget set, not a layout."""
        return False

    def manipulation_cost(self, queries: Sequence[Node]) -> float:
        """Total widget manipulation cost to express the query log."""
        cost_model = CostModel(list(queries))
        total = 0.0
        bindings_per_query = self.tree.derivations()
        previous: dict[int, tuple] = {}
        for derivation in bindings_per_query:
            if derivation is None:
                continue
            params: dict[int, tuple] = {}
            for b in derivation:
                params[b.node_id] = params.get(b.node_id, tuple()) + (b.param,)
            changed = {
                nid for nid, value in params.items() if previous.get(nid) != value
            }
            previous.update(params)
            counted = set()
            for widget in self.widgets:
                if widget.cover & changed and id(widget) not in counted:
                    counted.add(id(widget))
                    from ..interface.spec import AppliedWidget

                    total += cost_model.widget_manipulation_cost(
                        AppliedWidget(widget, 0)
                    )
        return total

    def describe(self) -> str:
        lines = [f"PI1 interface: {len(self.widgets)} widget(s), no visualization"]
        for w in self.widgets:
            lines.append(f"  {w.describe()}")
        return "\n".join(lines)


def pi1_generate(
    queries: Sequence[QueryLike],
    catalog: Optional[Catalog] = None,
    seed: int = 13,
    max_steps: int = 60,
) -> PI1Interface:
    """Run the PI1 baseline: align the queries and map differences to widgets."""
    catalog = catalog or standard_catalog(seed=seed, scale=0.2)
    executor = Executor(catalog)
    asts = parse_queries(queries)

    merged = merge_difftrees(initial_difftrees(asts))
    engine = TransformEngine(
        catalog,
        executor,
        rules=[PushAnyRule(), PartitionRule(), AnyToValRule(), NoopRule(), MergeAnyRule()],
        max_applications=32,
    )
    rng = random.Random(seed)
    state = [merged]
    for _ in range(max_steps):
        apps = engine.applications(state, rng)
        if not apps:
            break
        # PI1's alignment is deterministic: prefer refactoring over mutation
        apps.sort(key=lambda a: (a.category != "refactoring", a.rule_name))
        applied = None
        for app in apps:
            new_state = engine.apply(app)
            if new_state is not None and len(new_state) == 1:
                fingerprint_before = state[0].fingerprint()
                if new_state[0].fingerprint() != fingerprint_before:
                    applied = new_state
                    break
        if applied is None:
            break
        state = applied

    tree = state[0]
    bindings = tree.query_bindings()
    widgets: list[WidgetCandidate] = []
    covered: set[int] = set()
    for node in tree.choice_nodes():
        if node.node_id in covered:
            continue
        candidates = candidate_widgets(tree, node, catalog, bindings)
        if not candidates:
            continue
        # PI1 picks the simplest widget expressing the difference group
        candidates.sort(key=lambda c: (len(c.cover), c.widget.base_cost))
        chosen = candidates[0]
        widgets.append(chosen)
        covered.update(chosen.cover)
    return PI1Interface(tree=tree, widgets=widgets)
