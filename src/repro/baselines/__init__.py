"""Baseline systems PI2 is compared against (currently PI1)."""

from .pi1 import PI1Interface, pi1_generate

__all__ = ["PI1Interface", "pi1_generate"]
