"""Yi et al. interaction-taxonomy classification of generated interfaces."""

from .yi import DATA_CATEGORIES, OUT_OF_SCOPE, TaxonomyReport, classify_interface

__all__ = ["DATA_CATEGORIES", "OUT_OF_SCOPE", "TaxonomyReport", "classify_interface"]
