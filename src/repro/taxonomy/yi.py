"""Classifying generated interfaces under Yi et al.'s interaction taxonomy.

Section 7.1 of the paper evaluates PI2's expressiveness by showing interfaces
that cover the data-oriented categories of Yi et al. (InfoVis 2007):

* **Select** — mark something interesting (every clickable chart supports it);
* **Explore** — show a different subset of the data (pan / zoom);
* **Abstract** — change the level of detail (overview + detail, zoom);
* **Filter** — show something conditionally (predicates bound to widgets or
  brushes, cross-filtering);
* **Connect** — show related items (interactions in one view updating another);
* **Encode** / **Reconfigure** — visual-representation changes that are not
  query-level transformations (out of scope for PI2, as in the paper).

:func:`classify_interface` inspects a generated :class:`Interface` and
reports which categories its interactions realise, which is what the
Figure-14 benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interface.spec import Interface
from ..sqlparser.ast_nodes import L

#: The data-oriented categories PI2 claims to express.
DATA_CATEGORIES = ("select", "explore", "abstract", "filter", "connect")

#: Categories that are presentation-only and out of PI2's scope.
OUT_OF_SCOPE = ("encode", "reconfigure")


@dataclass
class TaxonomyReport:
    """Which Yi et al. categories an interface covers, with justifications."""

    categories: set[str] = field(default_factory=set)
    evidence: dict[str, list[str]] = field(default_factory=dict)

    def add(self, category: str, reason: str) -> None:
        self.categories.add(category)
        self.evidence.setdefault(category, []).append(reason)

    def covers(self, *categories: str) -> bool:
        return all(c in self.categories for c in categories)

    def describe(self) -> str:
        lines = []
        for category in DATA_CATEGORIES:
            mark = "✓" if category in self.categories else "✗"
            reasons = "; ".join(self.evidence.get(category, []))
            lines.append(f"{mark} {category}: {reasons}")
        return "\n".join(lines)


def classify_interface(interface: Interface) -> TaxonomyReport:
    """Classify the interaction types of a generated interface."""
    report = TaxonomyReport()

    clickable = any(
        "click" in view.vis.vis_type.interactions for view in interface.views
    )
    if clickable or interface.interactions:
        report.add("select", "charts support click selection")

    for applied in interface.interactions:
        candidate = applied.candidate
        name = candidate.interaction
        cross_view = any(
            target_tree != candidate.source_tree_index
            for _, _, target_tree in candidate.stream_bindings
        )
        binds_predicate = _binds_predicate(candidate)

        if name in ("pan", "zoom"):
            report.add("explore", f"{name} changes the visible data window")
            report.add("abstract", f"{name} changes the level of detail")
        if name.startswith("brush"):
            report.add("select", f"{name} selects a data interval")
            if binds_predicate:
                report.add("filter", f"{name} drives a range predicate")
            if cross_view:
                report.add("connect", f"{name} in one view updates another view")
                report.add("abstract", "overview chart drives a detail chart")
        if name in ("click", "multi-click"):
            report.add("select", f"{name} selects marks")
            if binds_predicate:
                report.add("filter", f"{name} drives a predicate value")
            if cross_view:
                report.add("connect", f"{name} highlights related data elsewhere")

    for widget in interface.widgets:
        if _widget_controls_predicate(widget):
            report.add("filter", f"{widget.candidate.widget.name} controls a predicate")
        if widget.candidate.widget.name == "toggle":
            report.add("filter", "toggle enables / disables a clause")

    if interface.num_views() >= 2 and any(
        any(
            target_tree != applied.candidate.source_tree_index
            for _, _, target_tree in applied.candidate.stream_bindings
        )
        for applied in interface.interactions
    ):
        report.add("connect", "multiple coordinated views")

    return report


def _parameterises_predicate(node) -> bool:
    """True when the node (or its subtree) parameterises a filter predicate.

    Two cases: the node is an ancestor dynamic node whose subtree contains a
    comparison / BETWEEN / IN, or the node is a choice node over literal
    values (literals only appear as predicate operands in the workloads PI2
    targets — interactions that emit data values bind exactly these).
    """
    from ..difftree.nodes import AnyNode, ValNode

    for descendant in node.walk():
        if descendant.label in (L.BINOP, L.BETWEEN, L.IN_LIST, L.IN_QUERY):
            return True
    if isinstance(node, ValNode):
        return True
    if isinstance(node, AnyNode) and node.children and all(
        c.label in (L.LITERAL_NUM, L.LITERAL_STR, L.LITERAL_BOOL, L.EMPTY)
        for c in node.children
    ):
        return True
    return False


def _binds_predicate(candidate) -> bool:
    """True when the interaction's target nodes parameterise predicates."""
    return any(
        _parameterises_predicate(node) for _, node, _ in candidate.stream_bindings
    )


def _widget_controls_predicate(widget) -> bool:
    return _parameterises_predicate(widget.candidate.node)
