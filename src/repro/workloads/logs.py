"""The paper's evaluation query logs (Listings 1-7, Section 7).

Each workload is a named, ordered sequence of SQL queries over the synthetic
datasets in :mod:`repro.database.datasets`.  Date constants in the covid and
sales logs are adjusted to the synthetic data's date ranges so the queries
return non-empty results, which the visualization-interaction safety check
relies on; the *structure* of every query follows the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Workload:
    """A named query log plus the interaction types it is expected to produce."""

    name: str
    description: str
    queries: tuple[str, ...]
    expected_interactions: tuple[str, ...] = ()
    expected_min_views: int = 1
    yi_categories: tuple[str, ...] = ()


# -- Listing 1: Explore -------------------------------------------------------

EXPLORE = Workload(
    name="explore",
    description="Pan/zoom over hp and mpg range predicates on the Cars table",
    queries=(
        "SELECT hp, mpg, origin FROM Cars "
        "WHERE hp BTWN 50 & 60 AND mpg BTWN 27 & 38",
        "SELECT hp, mpg, origin FROM Cars "
        "WHERE hp BTWN 60 & 90 AND mpg BTWN 16 & 30",
    ),
    expected_interactions=("pan", "zoom", "brush-xy"),
    expected_min_views=1,
    yi_categories=("explore", "abstract", "select"),
)

# -- Listing 2: Abstract (overview + detail) ------------------------------------

ABSTRACT = Workload(
    name="abstract",
    description="Overview-and-detail over the sp500 price history",
    queries=(
        "SELECT date, price FROM sp500",
        "SELECT date, price FROM sp500 "
        "WHERE date > '2001-01-01' AND date < '2003-01-01'",
        "SELECT date, price FROM sp500 "
        "WHERE date > '2001-02-01' AND date < '2003-02-01'",
    ),
    expected_interactions=("brush-x", "pan", "zoom"),
    expected_min_views=2,
    yi_categories=("abstract", "select"),
)

# -- Listing 3: Connect (linked selection) ----------------------------------------

CONNECT = Workload(
    name="connect",
    description="Linked selection between two Cars scatterplots",
    queries=(
        "SELECT hp, disp, id FROM Cars",
        "SELECT mpg, disp, id in (1, 2) as color FROM Cars",
        "SELECT mpg, disp, id in (20, 22) as color FROM Cars",
    ),
    expected_interactions=("click", "multi-click", "brush-x", "brush-xy"),
    expected_min_views=2,
    yi_categories=("connect", "select"),
)

# -- Listing 4: Filter (cross-filtering) --------------------------------------------

FILTER = Workload(
    name="filter",
    description="Cross-filtering between three flights histograms",
    queries=(
        "SELECT hour, count(*) FROM flights GROUP BY hour",
        "SELECT hour, count(*) FROM flights "
        "WHERE delay BTWN 0 & 50 AND dist BTWN 400 & 800 GROUP BY hour",
        "SELECT hour, count(*) FROM flights "
        "WHERE delay BTWN 10 & 60 AND dist BTWN 10 & 300 GROUP BY hour",
        "SELECT delay, count(*) FROM flights GROUP BY delay",
        "SELECT delay, count(*) FROM flights "
        "WHERE hour BTWN 10 & 16 AND dist BTWN 400 & 800 GROUP BY delay",
        "SELECT delay, count(*) FROM flights "
        "WHERE hour BTWN 15 & 20 AND dist BTWN 200 & 700 GROUP BY delay",
        "SELECT dist, count(*) FROM flights GROUP BY dist",
        "SELECT dist, count(*) FROM flights "
        "WHERE hour BTWN 10 & 16 AND delay BTWN 0 & 50 GROUP BY dist",
        "SELECT dist, count(*) FROM flights "
        "WHERE hour BTWN 8 & 19 AND delay BTWN 20 & 61 GROUP BY dist",
    ),
    expected_interactions=("brush-x", "click", "multi-click"),
    expected_min_views=3,
    yi_categories=("filter", "select"),
)

# -- Listing 5: SDSS case study -------------------------------------------------------

SDSS = Workload(
    name="sdss",
    description="SDSS sky-survey star selection: joined table plus location scatterplot",
    queries=(
        "SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec "
        "FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.z BTWN 0.1362 & 0.141 "
        "AND s.ra BTWN 213.3 & 214.1 AND s.dec BTWN -0.9 & -0.2",
        "SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec "
        "FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.z BTWN 0.1362 & 0.141 "
        "AND s.ra BTWN 213.4191 & 213.9 AND s.dec BTWN -0.565 & -0.3111",
        "SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec "
        "FROM galaxy as gal, specObj as s "
        "WHERE s.bestObjID = gal.objID AND s.z BTWN 0.1362 & 0.141 "
        "AND s.ra BTWN 213.5 & 213.8 AND s.dec BTWN -0.34 & -0.2",
        "SELECT DISTINCT ra, dec FROM specObj "
        "WHERE ra BTWN 213.2 & 213.6 AND dec BTWN -0.3 & -0.1",
        "SELECT DISTINCT ra, dec FROM specObj "
        "WHERE ra BTWN 213 & 214 AND dec BTWN -0.8 & -0.4",
    ),
    expected_interactions=("pan", "zoom", "brush-xy"),
    expected_min_views=2,
    yi_categories=("explore", "select", "connect"),
)

# -- Listing 6: Covid case study ----------------------------------------------------------

COVID = Workload(
    name="covid",
    description="Reproduction of Google's covid-19 search-result visualization",
    queries=(
        "SELECT date, cases FROM covid WHERE state = 'CA'",
        "SELECT date, cases FROM covid "
        "WHERE state = 'WA' and date > date(today(), '-30 days')",
        "SELECT date, cases FROM covid "
        "WHERE state = 'CA' and date > date(today(), '-7 days')",
        "SELECT date, deaths FROM covid WHERE state = 'CA'",
        "SELECT date, deaths FROM covid WHERE state = 'NY'",
        "SELECT date, deaths FROM covid "
        "WHERE state = 'WA' and date > date(today(), '-14 days')",
        "SELECT date, deaths FROM covid "
        "WHERE state = 'WA' and date > date(today(), '-7 days')",
        "SELECT date, deaths FROM covid "
        "WHERE state = 'NY' and date > date(today(), '-7 days')",
    ),
    expected_interactions=(),
    expected_min_views=1,
    yi_categories=("filter", "select", "abstract"),
)

# -- Listing 7: Sales dashboard case study ----------------------------------------------------

SALES = Workload(
    name="sales",
    description="Supermarket sales analysis dashboard with nested HAVING queries",
    queries=(
        "SELECT city, product, sum(total) FROM sales as ss "
        "GROUP BY city, product "
        "HAVING sum(total) >= (SELECT max(t) FROM "
        "(SELECT sum(total) as t FROM sales as s WHERE s.city = ss.city "
        "GROUP BY s.city, s.product))",
        "SELECT city, product, sum(total) FROM sales as ss "
        "WHERE ss.date BTWN '2019-01-25' & '2019-02-15' "
        "GROUP BY city, product "
        "HAVING sum(total) >= (SELECT max(t) FROM "
        "(SELECT sum(total) as t FROM sales as s WHERE s.city = ss.city "
        "AND s.date BTWN '2019-01-25' & '2019-02-15' "
        "GROUP BY s.city, s.product))",
        "SELECT city, product, sum(total) FROM sales as ss "
        "WHERE ss.date BTWN '2019-02-01' & '2019-03-10' "
        "GROUP BY city, product "
        "HAVING sum(total) >= (SELECT max(t) FROM "
        "(SELECT sum(total) as t FROM sales as s WHERE s.city = ss.city "
        "AND s.date BTWN '2019-02-01' & '2019-03-10' "
        "GROUP BY s.city, s.product))",
        "SELECT date, sum(total) FROM sales "
        "WHERE branch = 'A' AND product = 'Health and beauty' GROUP BY date",
        "SELECT date, sum(total) FROM sales "
        "WHERE branch = 'B' AND product = 'Electronics' GROUP BY date",
        "SELECT date, sum(total) FROM sales "
        "WHERE branch = 'C' AND product = 'Lifestyle' GROUP BY date",
    ),
    expected_interactions=(),
    expected_min_views=2,
    yi_categories=("filter", "select"),
)

#: All workloads, keyed by name (the seven logs of Section 7.3).
WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (EXPLORE, ABSTRACT, CONNECT, FILTER, SDSS, COVID, SALES)
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name (raises KeyError with the valid names)."""
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name]


def workload_names() -> list[str]:
    return sorted(WORKLOADS)
