"""Synthetic workload generators for the scalability experiments.

Section 7.3 evaluates PI2's runtime as the number of input queries grows from
9 to 900 by duplicating the Filter log.  :func:`scale_workload` reproduces
that construction (with slight literal perturbations so duplicated queries
are not textually identical, matching the effect of a longer real log), and
:func:`random_range_queries` produces parameterised range-predicate logs used
by property tests.
"""

from __future__ import annotations

import random
import re
from typing import Optional

from .logs import Workload


def scale_workload(
    base: Workload, total_queries: int, perturb: bool = True, seed: int = 11
) -> Workload:
    """Grow a workload to ``total_queries`` by repeating (and perturbing) it."""
    rng = random.Random(seed)
    queries: list[str] = []
    while len(queries) < total_queries:
        for q in base.queries:
            if len(queries) >= total_queries:
                break
            if perturb and len(queries) >= len(base.queries):
                q = _perturb_literals(q, rng)
            queries.append(q)
    return Workload(
        name=f"{base.name}_x{total_queries}",
        description=f"{base.description} (scaled to {total_queries} queries)",
        queries=tuple(queries),
        expected_interactions=base.expected_interactions,
        expected_min_views=base.expected_min_views,
        yi_categories=base.yi_categories,
    )


def _perturb_literals(query: str, rng: random.Random) -> str:
    """Shift integer literals in range predicates by a small random delta."""

    def shift(match: re.Match) -> str:
        value = int(match.group(0))
        return str(max(0, value + rng.randint(-3, 3)))

    # only touch standalone integers (not dates or identifiers)
    return re.sub(r"(?<![\w.'])\d+(?![\w.'])", shift, query)


def random_range_queries(
    table: str,
    attribute: str,
    count: int,
    lo: float,
    hi: float,
    seed: int = 5,
    select: Optional[str] = None,
) -> list[str]:
    """A log of ``count`` range-predicate queries over one numeric attribute."""
    rng = random.Random(seed)
    select_clause = select or f"SELECT {attribute} FROM {table}"
    queries = []
    for _ in range(count):
        a = rng.uniform(lo, hi)
        b = rng.uniform(lo, hi)
        start, end = (a, b) if a <= b else (b, a)
        queries.append(
            f"{select_clause} WHERE {attribute} BETWEEN {start:.1f} AND {end:.1f}"
        )
    return queries
