"""The paper's evaluation workloads and synthetic workload generators."""

from .generators import random_range_queries, scale_workload
from .logs import (
    ABSTRACT,
    CONNECT,
    COVID,
    EXPLORE,
    FILTER,
    SALES,
    SDSS,
    WORKLOADS,
    Workload,
    get_workload,
    workload_names,
)

__all__ = [
    "ABSTRACT",
    "CONNECT",
    "COVID",
    "EXPLORE",
    "FILTER",
    "SALES",
    "SDSS",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "random_range_queries",
    "scale_workload",
    "workload_names",
]
