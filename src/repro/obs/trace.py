"""The span tracer: low-overhead wall-clock attribution across the pipeline.

A *span* is one timed region of work — ``with span("search.round",
round=3):`` — named by a dotted path whose first segment is the subsystem
(``pipeline``, ``executor``, ``columnar``, ``search``, ``mapping``,
``service``, ``persist``, ``shm``).  The tracer records spans as plain,
picklable :class:`SpanEvent` records, so process-backend workers can ship
their events back to the coordinator inside the existing ``done`` sync
message and a single Chrome trace shows every process of a run.

Design constraints, in priority order:

1. **Disabled is (almost) free.**  Tracing is off by default; the
   instrumentation sites stay in the hot paths permanently, so the disabled
   path must cost one attribute read plus a no-op context manager —
   :data:`_NOOP_SPAN` is a shared singleton whose ``__enter__``/``__exit__``
   do nothing, and no :class:`SpanEvent`, dict or clock read is ever
   allocated.  The perf-smoke job gates this at <2% of pipeline wall-clock
   (``benchmarks/test_bench_obs.py``).
2. **Observability never perturbs determinism.**  Spans read monotonic
   clocks and thread-local stacks only; they never touch RNG streams,
   fingerprints or cache keys.  The ``no-wallclock-in-key`` rule of
   :mod:`repro.analysis` statically enforces the second half of that
   contract, and ``tests/test_obs.py`` pins byte-identical interfaces with
   tracing on vs. off across every workload log.
3. **Bounded memory.**  The event buffer is capped (``max_events``); spans
   beyond the cap are counted in ``dropped`` instead of recorded, so a
   pathological trace degrades to a counter, not an OOM.

Timestamps are ``time.perf_counter()`` deltas re-based onto an epoch taken
at tracer construction (``time.time() - time.perf_counter()``), which keeps
within-process durations monotonic-clock accurate while letting events from
different processes land on one roughly aligned timeline in the exported
trace.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SpanEvent", "Tracer", "TRACER", "span", "trace_enabled"]

#: Environment switch: set ``REPRO_TRACE=1`` to enable tracing at import
#: time.  The CLI's ``--trace`` flag sets it so process-backend workers
#: started with the ``spawn`` method come up tracing too (``fork`` workers
#: inherit the live tracer state directly).
TRACE_ENV_VAR = "REPRO_TRACE"


@dataclass
class SpanEvent:
    """One completed span: picklable, self-describing, process-tagged."""

    name: str
    #: epoch-aligned start time in seconds (see module docstring)
    start: float
    #: span duration in seconds (monotonic-clock accurate)
    duration: float
    pid: int
    tid: int
    #: nesting depth within this thread's span stack at entry (0 = root)
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def category(self) -> str:
        """The subsystem — the first dotted segment of the span name."""
        return self.name.split(".", 1)[0]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """The disabled-path context manager: a shared, do-nothing singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: records a :class:`SpanEvent` on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._record(self.name, self._start, duration, self._depth, self.attrs)
        return False


class Tracer:
    """Thread-safe span recorder with a no-op fast path when disabled.

    The event buffer and counters mutate only under ``self._lock`` (the
    ``unlocked-shared-mutation`` rule enforces this statically); the
    per-thread span stacks live in a ``threading.local`` and need no lock.
    """

    def __init__(self, max_events: int = 250_000) -> None:
        self._lock = threading.Lock()
        self._events: list[SpanEvent] = []
        self.dropped = 0
        self.max_events = max_events
        self.enabled = bool(os.environ.get(TRACE_ENV_VAR))
        self._local = threading.local()
        #: epoch aligning monotonic deltas across processes (module docstring)
        self._epoch = time.time() - time.perf_counter()

    # -- span API -----------------------------------------------------------

    def span(self, name: str, **attrs):
        """A context manager timing one region; no-op while disabled."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(
        self, name: str, start: float, duration: float, depth: int, attrs: dict
    ) -> None:
        event = SpanEvent(
            name=name,
            start=self._epoch + start,
            duration=duration,
            pid=os.getpid(),
            tid=threading.get_ident(),
            depth=depth,
            attrs=attrs,
        )
        with self._lock:
            if len(self._events) < self.max_events:
                self._events.append(event)
            else:
                self.dropped += 1

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        with self._lock:
            self.enabled = True

    def disable(self) -> None:
        with self._lock:
            self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events = []
            self.dropped = 0

    # -- event access -------------------------------------------------------

    def events(self) -> list[SpanEvent]:
        """A snapshot copy of the recorded events (record order)."""
        with self._lock:
            return list(self._events)

    def take_events(self) -> list[SpanEvent]:
        """Drain and return the recorded events (process workers ship these)."""
        with self._lock:
            events = self._events
            self._events = []
            return events

    def extend(self, events) -> None:
        """Adopt events recorded elsewhere (worker processes), respecting the cap."""
        with self._lock:
            room = self.max_events - len(self._events)
            if room >= len(events):
                self._events.extend(events)
            else:
                self._events.extend(events[:room])
                self.dropped += len(events) - max(0, room)

    def info(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "events": len(self._events),
                "dropped": self.dropped,
            }


#: The process-wide tracer every instrumentation site records into.
TRACER = Tracer()


def span(name: str, **attrs):
    """Module-level convenience: ``with span("executor.execute"): ...``."""
    if not TRACER.enabled:
        return _NOOP_SPAN
    return _Span(TRACER, name, attrs)


def trace_enabled() -> bool:
    return TRACER.enabled
