"""repro.obs — spans, the unified metrics registry, and trace export.

Three small modules:

* :mod:`repro.obs.trace` — the low-overhead span tracer (``with
  span("search.round", worker=w):``); a no-op singleton when disabled.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of named counters /
  gauges / histograms with picklable snapshots merged deterministically in
  worker order.
* :mod:`repro.obs.views` — the total field-by-field mapping from the stats
  dataclasses (``PlanStats`` / ``SearchStats`` / ``RequestStats`` /
  ``MapperStats``) onto registry metrics.
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` writers, the
  reader behind ``repro stats``, and phase/self-time attribution.
"""

from .export import (
    PHASES,
    cache_hit_rates,
    phase_attribution,
    read_trace,
    span_phase,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import GLOBAL_METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .trace import TRACE_ENV_VAR, TRACER, SpanEvent, Tracer, span, trace_enabled
from .views import (
    DETERMINISTIC_SEARCH_METRICS,
    MAPPER_STATS_EXEMPT,
    PLAN_STATS_EXEMPT,
    REQUEST_STATS_COUNTERS,
    REQUEST_STATS_EXEMPT,
    REQUEST_STATS_GAUGES,
    SEARCH_STATS_COUNTERS,
    SEARCH_STATS_EXEMPT,
    SEARCH_STATS_GAUGES,
    publish_cache_info,
    publish_mapper_stats,
    publish_plan_stats,
    publish_request_stats,
    publish_search_stats,
    registry_field_partition,
    worker_metrics_snapshot,
)

__all__ = [
    "TRACE_ENV_VAR",
    "TRACER",
    "SpanEvent",
    "Tracer",
    "span",
    "trace_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GLOBAL_METRICS",
    "DETERMINISTIC_SEARCH_METRICS",
    "SEARCH_STATS_COUNTERS",
    "SEARCH_STATS_GAUGES",
    "SEARCH_STATS_EXEMPT",
    "REQUEST_STATS_COUNTERS",
    "REQUEST_STATS_GAUGES",
    "REQUEST_STATS_EXEMPT",
    "PLAN_STATS_EXEMPT",
    "MAPPER_STATS_EXEMPT",
    "registry_field_partition",
    "publish_search_stats",
    "publish_plan_stats",
    "publish_mapper_stats",
    "publish_request_stats",
    "publish_cache_info",
    "worker_metrics_snapshot",
    "PHASES",
    "span_phase",
    "phase_attribution",
    "cache_hit_rates",
    "write_jsonl",
    "write_chrome_trace",
    "read_trace",
]
