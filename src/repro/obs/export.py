"""Exporters: JSONL event logs, Chrome ``trace_event`` JSON, stats tables.

Two on-disk formats, one reader:

* **JSONL** — one JSON object per line; ``{"type": "span", ...}`` records
  (the :meth:`SpanEvent.as_dict` shape) followed by a single trailing
  ``{"type": "metrics", "metrics": {...}}`` record.  Grep/jq-friendly and
  append-safe.
* **Chrome trace** — the ``trace_event`` format chrome://tracing and
  Perfetto load directly: complete (``"ph": "X"``) events with microsecond
  ``ts``/``dur``, real ``pid``/``tid`` so each worker process gets its own
  track, and the run's metrics registry embedded under
  ``metadata.metrics``.

:func:`read_trace` auto-detects either format, so ``repro stats`` works on
both.  :func:`phase_attribution` turns a span list into the
parse → plan → execute → map → reward → sync wall-clock breakdown using
*self time* (each span's duration minus its direct children's), so nested
instrumentation — ``executor.execute`` wrapping ``executor.plan`` wrapping
nothing — never double-counts.
"""

from __future__ import annotations

import json
from typing import Optional

from .trace import SpanEvent

__all__ = [
    "PHASES",
    "SPAN_PHASES",
    "span_phase",
    "phase_attribution",
    "cache_hit_rates",
    "write_jsonl",
    "write_chrome_trace",
    "read_trace",
]

#: Pipeline phases in execution order (the ``repro stats`` table rows).
PHASES = ("parse", "plan", "execute", "map", "reward", "sync", "cache", "other")

#: span name -> phase.  Names absent here fall back to their subsystem
#: category, then to "other" — attribution must be total over any event set.
SPAN_PHASES = {
    "pipeline.parse": "parse",
    "pipeline.plan": "plan",
    "executor.plan": "plan",
    "executor.execute": "execute",
    "columnar.execute": "execute",
    "pipeline.map": "map",
    "mapping.generate": "map",
    "search.reward": "reward",
    "search.sync": "sync",
    "persist.load": "cache",
    "persist.save": "cache",
    "shm.register": "cache",
    "shm.attach": "cache",
}

#: subsystem category -> phase, for span names without an exact entry.
_CATEGORY_PHASES = {
    "executor": "execute",
    "columnar": "execute",
    "mapping": "map",
    "persist": "cache",
    "shm": "cache",
}


def span_phase(name: str) -> str:
    phase = SPAN_PHASES.get(name)
    if phase is not None:
        return phase
    return _CATEGORY_PHASES.get(name.split(".", 1)[0], "other")


def _self_times(events: list[SpanEvent]) -> list[float]:
    """Per-event self time: duration minus direct children's durations.

    Children are detected per (pid, tid) track by interval containment —
    events are sorted by start (ties: outermost first) and walked with an
    enclosing-span stack, the same reconstruction a trace viewer performs.
    """
    order = sorted(
        range(len(events)),
        key=lambda i: (
            events[i].pid,
            events[i].tid,
            events[i].start,
            -events[i].duration,
        ),
    )
    self_times = [e.duration for e in events]
    stack: list[int] = []  # indices of currently open enclosing spans
    track = None
    for i in order:
        ev = events[i]
        if (ev.pid, ev.tid) != track:
            track = (ev.pid, ev.tid)
            stack = []
        while stack:
            top = events[stack[-1]]
            if top.start + top.duration <= ev.start:
                stack.pop()
            else:
                break
        if stack:
            self_times[stack[-1]] -= ev.duration
        stack.append(i)
    return [max(0.0, s) for s in self_times]


def phase_attribution(events: list[SpanEvent]) -> dict:
    """``{phase: seconds}`` of self time, every phase present (0.0 if unused)."""
    totals = {phase: 0.0 for phase in PHASES}
    for event, self_time in zip(events, _self_times(events)):
        totals[span_phase(event.name)] += self_time
    return totals


def cache_hit_rates(metrics: dict) -> list[dict]:
    """Hit-rate rows for every ``cache.<name>.{hits,misses}`` counter pair.

    ``metrics`` is a flat ``{name: value}`` dict (``MetricsRegistry.as_dict``
    shape).  Also surfaces the persisted-cache load counters
    (``persist.loads`` vs ``persist.misses``) when present.
    """
    rows = []
    prefixes = set()
    for name in metrics:
        if name.startswith("cache.") and name.endswith((".hits", ".misses")):
            prefixes.add(name.rsplit(".", 1)[0])
    for prefix in sorted(prefixes):
        hits = int(metrics.get(f"{prefix}.hits", 0) or 0)
        misses = int(metrics.get(f"{prefix}.misses", 0) or 0)
        total = hits + misses
        rows.append(
            {
                "cache": prefix[len("cache."):],
                "hits": hits,
                "misses": misses,
                "rate": (hits / total) if total else None,
            }
        )
    loads = int(metrics.get("persist.loads", 0) or 0)
    load_misses = int(metrics.get("persist.misses", 0) or 0)
    if loads or load_misses:
        total = loads + load_misses
        rows.append(
            {
                "cache": "persisted",
                "hits": loads,
                "misses": load_misses,
                "rate": (loads / total) if total else None,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# writers
# ---------------------------------------------------------------------------


def write_jsonl(path, events: list[SpanEvent], metrics: Optional[dict] = None) -> None:
    """One span record per line, then one trailing metrics record."""
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            record = {"type": "span"}
            record.update(event.as_dict())
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.write(
            json.dumps({"type": "metrics", "metrics": metrics or {}}, sort_keys=True)
            + "\n"
        )


def write_chrome_trace(
    path,
    events: list[SpanEvent],
    metrics: Optional[dict] = None,
    metadata: Optional[dict] = None,
) -> None:
    """Chrome ``trace_event`` JSON: complete events + named process tracks."""
    trace_events: list[dict] = []
    seen_pids: list[int] = []
    for event in events:
        if event.pid not in seen_pids:
            seen_pids.append(event.pid)
    for index, pid in enumerate(seen_pids):
        label = "coordinator" if index == 0 else f"worker pid={pid}"
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for event in events:
        # depth rides as a reserved arg so the round-trip through the Chrome
        # format is lossless (viewers just show it next to the span's attrs)
        args = dict(event.attrs)
        args["depth"] = event.depth
        trace_events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "X",
                "ts": event.start * 1e6,
                "dur": event.duration * 1e6,
                "pid": event.pid,
                "tid": event.tid,
                "args": args,
            }
        )
    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": dict(metadata or {}),
    }
    doc["metadata"]["metrics"] = dict(metrics or {})
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# reader (repro stats)
# ---------------------------------------------------------------------------


def _event_from_record(record: dict) -> SpanEvent:
    return SpanEvent(
        name=record["name"],
        start=record["start"],
        duration=record["duration"],
        pid=record.get("pid", 0),
        tid=record.get("tid", 0),
        depth=record.get("depth", 0),
        attrs=dict(record.get("attrs", {})),
    )


def read_trace(path) -> tuple[list[SpanEvent], dict]:
    """Load ``(events, metrics)`` from either export format (auto-detected)."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    doc = None
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError:
        parsed = None  # multiple lines -> JSONL
    if isinstance(parsed, dict) and "traceEvents" in parsed:
        doc = parsed
    if doc is not None:
        events = []
        for raw in doc.get("traceEvents", []):
            if raw.get("ph") != "X":
                continue
            args = dict(raw.get("args", {}))
            depth = args.pop("depth", 0)
            events.append(
                SpanEvent(
                    name=raw["name"],
                    start=raw["ts"] / 1e6,
                    duration=raw["dur"] / 1e6,
                    pid=raw.get("pid", 0),
                    tid=raw.get("tid", 0),
                    depth=int(depth),
                    attrs=args,
                )
            )
        metrics = dict(doc.get("metadata", {}).get("metrics", {}))
        return events, metrics
    events = []
    metrics: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "span":
            events.append(_event_from_record(record))
        elif record.get("type") == "metrics":
            metrics = dict(record.get("metrics", {}))
    return events, metrics
