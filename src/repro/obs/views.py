"""Stats dataclasses as views over the metrics registry.

``PlanStats`` / ``SearchStats`` / ``RequestStats`` / ``MapperStats`` remain
the in-band collection surface (lock-free field bumps on hot paths, already
pickled through the sync protocols); this module is the single place that
maps every one of their fields onto a registry metric — or explicitly
exempts it, with the reason.

The maps are *total* by contract: ``tests/test_obs.py`` asserts that the
published and exempt field sets partition each dataclass exactly (mirroring
``test_every_planner_flag_partitions_the_plan_cache``), so adding a stats
field without deciding its registry story is a test failure, not silent
per-worker drift.

``DETERMINISTIC_SEARCH_METRICS`` names the search metrics whose merged
totals are a pure function of (seed, workload, worker count) — equal across
the serial, thread and process backends on pinned seeds.  Wall-clock gauges
and cache-shape counters are deliberately outside that set: per-process
caches make e.g. ``plans_compiled`` backend-dependent even though results
are byte-identical.
"""

from __future__ import annotations

import dataclasses

from .metrics import MetricsRegistry

__all__ = [
    "SEARCH_STATS_COUNTERS",
    "SEARCH_STATS_GAUGES",
    "SEARCH_STATS_EXEMPT",
    "REQUEST_STATS_COUNTERS",
    "REQUEST_STATS_GAUGES",
    "REQUEST_STATS_EXEMPT",
    "PLAN_STATS_EXEMPT",
    "MAPPER_STATS_EXEMPT",
    "DETERMINISTIC_SEARCH_METRICS",
    "publish_search_stats",
    "publish_plan_stats",
    "publish_mapper_stats",
    "publish_request_stats",
    "publish_cache_info",
    "worker_metrics_snapshot",
    "registry_field_partition",
]


# ---------------------------------------------------------------------------
# SearchStats
# ---------------------------------------------------------------------------

#: field -> counter name (monotone totals; merge by addition)
SEARCH_STATS_COUNTERS = {
    "iterations": "search.iterations",
    "states_evaluated": "search.states_evaluated",
    "rule_applications": "search.rule_applications",
    "reward_cache_hits": "search.reward_cache_hits",
    "rewards_seeded": "search.rewards_seeded",
    "reward_table_hits": "search.reward_table_hits",
    "reward_table_loaded": "search.reward_table_loaded",
    "sync_rounds": "search.sync_rounds",
}

#: field -> gauge name (point-in-time values; merge first-writer-wins)
SEARCH_STATS_GAUGES = {
    "best_reward": "search.best_reward",
    "best_iteration": "search.best_iteration",
    "early_stopped": "search.early_stopped",
    "search_seconds": "search.seconds",
    "warmup_seconds": "search.warmup_seconds",
}

#: field -> why it has no registry metric of its own
SEARCH_STATS_EXEMPT = {
    "per_worker_iterations": "list breakdown; its sum is search.iterations",
    "plan_cache": "nested cache snapshot; published as cache.plan.* via publish_cache_info",
    "mapping_memo": "nested cache snapshot; published as cache.memo.* via publish_cache_info",
    "reward_table": "nested cache snapshot; published as cache.rewards.* via publish_cache_info",
    "backend": "string label, not a quantity; exported on spans and trace metadata",
    "pool": "string label (warm/cold), mirrored by service.* counters",
    "metrics": "the per-worker registry snapshot itself (the merge payload)",
    "spans": "per-worker span events shipped to the coordinator tracer",
    "degraded": "string rung label; counted via the search.degraded counter",
}

#: search metrics whose merged totals are deterministic across backends on a
#: pinned seed (trajectory identity — the cross-process aggregation test
#: compares exactly these between serial and process runs)
DETERMINISTIC_SEARCH_METRICS = frozenset(
    {
        "search.iterations",
        "search.states_evaluated",
        "search.rule_applications",
        "search.reward_cache_hits",
        "search.rewards_seeded",
        "search.reward_table_hits",
        "search.sync_rounds",
        "search.best_reward",
        "search.best_iteration",
        "search.early_stopped",
    }
)


def publish_search_stats(stats, registry: MetricsRegistry) -> None:
    """Publish one (aggregated) ``SearchStats`` into the registry."""
    for fname, metric in sorted(SEARCH_STATS_COUNTERS.items()):
        registry.counter(metric).inc(int(getattr(stats, fname)))
    for fname, metric in sorted(SEARCH_STATS_GAUGES.items()):
        registry.gauge(metric).set(float(getattr(stats, fname)))
    if getattr(stats, "degraded", None):
        registry.counter("search.degraded").inc()


# ---------------------------------------------------------------------------
# RequestStats (service layer)
# ---------------------------------------------------------------------------

REQUEST_STATS_COUNTERS = {
    "reward_table_loaded": "service.reward_table_loaded",
    "reward_table_hits": "service.reward_table_hits",
    "retries": "service.retries",
    "workers_replaced": "service.workers_replaced",
    "deadline_exceeded": "service.deadline_exceeded",
}

REQUEST_STATS_GAUGES = {
    "seconds": "service.request_seconds",
    "warmup_seconds": "service.warmup_seconds",
}

REQUEST_STATS_EXEMPT = {
    "pool": "string label; counted via service.requests_warm / service.requests_cold",
    "backend": "string label, not a quantity",
    "degraded": "string rung label; counted via service.degraded_fresh_pool "
    "/ service.degraded_serial",
}


def publish_request_stats(stats, registry: MetricsRegistry) -> None:
    """Publish one service ``RequestStats`` (plus warm/cold request counters)."""
    for fname, metric in sorted(REQUEST_STATS_COUNTERS.items()):
        registry.counter(metric).inc(int(getattr(stats, fname)))
    for fname, metric in sorted(REQUEST_STATS_GAUGES.items()):
        registry.gauge(metric).set(float(getattr(stats, fname)))
    registry.counter("service.requests").inc()
    if stats.pool == "warm":
        registry.counter("service.requests_warm").inc()
    elif stats.pool == "cold":
        registry.counter("service.requests_cold").inc()
    degraded = getattr(stats, "degraded", None)
    if degraded:
        registry.counter(f"service.degraded_{degraded.replace('-', '_')}").inc()


# ---------------------------------------------------------------------------
# PlanStats (planner / executor) and MapperStats (Algorithm 1)
# ---------------------------------------------------------------------------

PLAN_STATS_EXEMPT = {
    "fallback_reasons": "reason -> count dict; published as labelled "
    "executor.fallback.<reason> counters",
}

MAPPER_STATS_EXEMPT: dict = {}


def publish_plan_stats(stats, registry: MetricsRegistry, prefix: str = "executor") -> None:
    """Publish every ``PlanStats`` counter under ``<prefix>.*``.

    All fields are int counters except the reason-labelled fallback dict,
    which becomes one counter per (sorted) reason so coverage gaps stay
    observable in the registry too.
    """
    for fld in dataclasses.fields(stats):
        if fld.name in PLAN_STATS_EXEMPT:
            continue
        registry.counter(f"{prefix}.{fld.name}").inc(int(getattr(stats, fld.name)))
    for reason in sorted(stats.fallback_reasons):
        registry.counter(f"{prefix}.fallback.{reason}").inc(
            stats.fallback_reasons[reason]
        )


def publish_mapper_stats(stats, registry: MetricsRegistry, prefix: str = "mapping") -> None:
    """Publish every ``MapperStats`` counter under ``<prefix>.*``."""
    for fld in dataclasses.fields(stats):
        if fld.name in MAPPER_STATS_EXEMPT:
            continue
        registry.counter(f"{prefix}.{fld.name}").inc(int(getattr(stats, fld.name)))


# ---------------------------------------------------------------------------
# cache snapshots (plan cache / mapping memo / reward table)
# ---------------------------------------------------------------------------


def publish_cache_info(info, registry: MetricsRegistry, prefix: str) -> None:
    """Publish a cache ``info()`` dict (hits/misses/size) under ``<prefix>.*``.

    ``prefix`` is used verbatim (``"cache.plan"``, ``"workers.cache.memo"``,
    …); non-numeric entries are skipped.
    """
    if not info:
        return
    for key in sorted(info):
        value = info[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.counter(f"{prefix}.{key}").inc(int(value))


def worker_metrics_snapshot(
    plan_stats=None,
    mapper_stats=None,
    plan_cache_info=None,
    memo_info=None,
    extra=None,
) -> dict:
    """One worker process's picklable registry snapshot (``workers.*``).

    Built at ``finish`` time from the worker's private stats sinks and cache
    infos; ``extra`` folds in a persistent registry the worker kept itself
    (the pool's setup-cache counters).  The coordinator merges these
    snapshots in worker order, so the totals are deterministic — but note
    they describe *per-process* caches (cold in every worker), which is why
    they live in their own namespace instead of the ``executor.*`` /
    ``mapping.*`` metrics the parent publishes.
    """
    registry = MetricsRegistry()
    if plan_stats is not None:
        publish_plan_stats(plan_stats, registry, prefix="workers.executor")
    if mapper_stats is not None:
        publish_mapper_stats(mapper_stats, registry, prefix="workers.mapping")
    publish_cache_info(plan_cache_info, registry, "workers.cache.plan")
    publish_cache_info(memo_info, registry, "workers.cache.memo")
    if extra:
        registry.merge(extra)
    return registry.snapshot()


# ---------------------------------------------------------------------------
# completeness contract
# ---------------------------------------------------------------------------


def registry_field_partition(stats_cls, counters: dict, gauges: dict, exempt: dict):
    """``(fields, covered)`` sets for the completeness test of ``stats_cls``.

    ``covered`` is the union of the mapped and exempt field names; the test
    asserts it equals the dataclass's actual field set and that the three
    maps are pairwise disjoint.
    """
    fields = {f.name for f in dataclasses.fields(stats_cls)}
    covered = set(counters) | set(gauges) | set(exempt)
    return fields, covered
