"""The unified metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` holds every metric of a pipeline run under a
dotted namespace (``search.*``, ``executor.*``, ``mapping.*``, ``cache.*``,
``service.*``, ``persist.*``, ``workers.*``).  The scattered stats
dataclasses (``PlanStats``, ``SearchStats``, ``RequestStats``,
``MapperStats``) remain the *collection* surface — they are cheap,
lock-free, and already travel through the sync protocols — but they are now
*views over the registry*: :mod:`repro.obs.views` declares, field by field,
which registry metric each one publishes to (or why it is exempt), and a
completeness test keeps the mapping total so a new stats field can never
silently stay unobservable.

Cross-process semantics mirror the reward table's: per-worker registry
snapshots are picklable plain dicts, and :meth:`MetricsRegistry.merge`
folds them in **worker order** — counters and histograms accumulate
(order-insensitive sums), gauges keep the first writer's value — so the
merged totals are deterministic no matter how the workers were scheduled,
and observability never perturbs determinism.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GLOBAL_METRICS",
]


class Counter:
    """A monotonically increasing count (merges by addition)."""

    __slots__ = ("name", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def get(self):
        return self.value


class Gauge:
    """A point-in-time value (merges first-writer-wins, like the reward table)."""

    __slots__ = ("name", "value", "set_count", "_lock")

    kind = "gauge"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self.set_count = 0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self.set_count += 1

    def get(self):
        return self.value


class Histogram:
    """Aggregate distribution summary: count / total / min / max.

    Deliberately bucket-free: the merge must be deterministic and compact
    enough to ship in sync messages, and per-phase latency questions are
    answered by the span tracer, not the registry.
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "_lock")

    kind = "histogram"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.vmin is None or value < self.vmin:
                self.vmin = value
            if self.vmax is None or value > self.vmax:
                self.vmax = value

    def get(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }


class MetricsRegistry:
    """Thread-safe name → metric map with deterministic snapshot merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict = {}

    # -- get-or-create accessors -------------------------------------------

    def _metric(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, self._lock)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._metric(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._metric(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._metric(name, Histogram)

    # -- convenience write paths -------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read paths ---------------------------------------------------------

    def value(self, name: str, default=None):
        with self._lock:
            metric = self._metrics.get(name)
        return default if metric is None else metric.get()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def view(self, prefix: str) -> dict:
        """``{name: value}`` for every metric under ``prefix.`` (sorted)."""
        dot = prefix if prefix.endswith(".") else prefix + "."
        with self._lock:
            items = [
                (name, metric)
                for name, metric in self._metrics.items()
                if name.startswith(dot)
            ]
        return {name: metric.get() for name, metric in sorted(items)}

    def as_dict(self) -> dict:
        """Every metric's plain value, sorted by name (for JSON output)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.get() for name, metric in items}

    # -- snapshot / merge (the cross-worker protocol) -----------------------

    def snapshot(self) -> dict:
        """A picklable ``{name: (kind, payload)}`` copy of every metric.

        Counter payloads are ints, gauge payloads floats, histogram payloads
        ``(count, total, min, max)`` tuples — plain builtins only, so the
        snapshot travels inside the existing pickled sync messages.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        out: dict = {}
        for name, metric in items:
            if metric.kind == "histogram":
                out[name] = ("histogram", (metric.count, metric.total,
                                           metric.vmin, metric.vmax))
            else:
                out[name] = (metric.kind, metric.get())
        return out

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold one snapshot in: counters/histograms add, gauges keep the
        first written value.  Callers merge per-worker snapshots in worker
        order, making the result deterministic under any scheduling (the
        reward table's first-writer-wins discipline)."""
        if not snapshot:
            return
        for name in sorted(snapshot):
            kind, payload = snapshot[name]
            if kind == "counter":
                self.counter(name).inc(payload)
            elif kind == "gauge":
                gauge = self.gauge(name)
                with self._lock:
                    if gauge.set_count == 0:
                        gauge.value = payload
                        gauge.set_count = 1
            elif kind == "histogram":
                count, total, vmin, vmax = payload
                hist = self.histogram(name)
                with self._lock:
                    hist.count += count
                    hist.total += total
                    if vmin is not None and (hist.vmin is None or vmin < hist.vmin):
                        hist.vmin = vmin
                    if vmax is not None and (hist.vmax is None or vmax > hist.vmax):
                        hist.vmax = vmax
            else:  # pragma: no cover - forward compatibility
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def clear(self) -> None:
        with self._lock:
            self._metrics = {}


#: Process-lifetime accumulator: every pipeline run merges its per-run
#: registry snapshot here, so a long-lived generation service exposes
#: totals across all requests it served.
GLOBAL_METRICS = MetricsRegistry()
