"""The end-to-end PI2 pipeline (paper Figure 6).

``generate_interface(queries, …)`` is the library's main entry point.  It:

1. parses the input query sequence into per-query Difftrees (optionally
   clustering them by result schema, the paper's initial Partition),
2. runs parallel MCTS over the transformation-rule search space, estimating
   each state's reward from K random interface mappings,
3. runs Algorithm 1 (visualization / interaction / layout mapping) on the
   best Difftree state, and
4. returns the lowest-cost interface together with search diagnostics.
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence, Union

from ..cost.model import CostModel
from ..database.catalog import Catalog
from ..database.datasets import standard_catalog
from ..database.executor import Executor
from ..database.plancache import SHARED_PLAN_CACHE
from ..difftree.builder import (
    cluster_by_result_schema,
    initial_difftrees,
    merge_difftrees,
    parse_queries,
)
from ..interface.spec import Interface
from ..mapping.mapper import InterfaceMapper
from ..mapping.memo import SHARED_MAPPING_MEMO
from ..search.parallel import parallel_search
from ..search.state import SearchState
from ..sqlparser.ast_nodes import Node
from ..transform.engine import TransformEngine
from .config import PipelineConfig, PipelineResult

QueryLike = Union[str, Node]


class PipelineError(RuntimeError):
    """Raised when the pipeline cannot produce any candidate interface."""


def best_interface_cost(interfaces: Sequence) -> float:
    """The minimum total cost over candidate interfaces.

    Candidates whose cost could not be computed carry ``cost is None``; when
    *every* candidate is costless this returns ``+inf`` (worst possible cost)
    rather than raising ``ValueError`` on an empty ``min()`` — the reward
    closure in :func:`generate_interface` then maps that to a ``-inf`` reward.
    """
    costs = [i.cost.total for i in interfaces if i.cost is not None]
    if not costs:
        return float("inf")
    return min(costs)


def generate_interface(
    queries: Sequence[QueryLike],
    catalog: Optional[Catalog] = None,
    config: Optional[PipelineConfig] = None,
) -> PipelineResult:
    """Generate the lowest-cost interactive interface for a query sequence.

    Args:
        queries: the example analysis queries (SQL strings or parsed ASTs),
            in the order the analyst issued them.
        catalog: the database catalogue to run against; defaults to the
            synthetic catalogue containing every table the paper uses.
        config: pipeline configuration; defaults to the paper's defaults.

    Returns:
        A :class:`PipelineResult` whose ``interface`` is the generated
        :class:`repro.interface.spec.Interface`.
    """
    config = config or PipelineConfig()
    catalog = catalog or standard_catalog(seed=config.seed, scale=config.catalog_scale)
    # the executor compiles through the process-wide shared plan cache, so
    # every MCTS worker's reward queries — and any executor a caller builds
    # later over the same catalogue — reuse one compiled plan set
    executor = Executor(catalog, plan_cache=SHARED_PLAN_CACHE)
    # the reward loop never observes row order (schemas, safety checks and
    # costs are all multiset-level), so its executor opts into cost-based
    # join reordering without the ORDER-BY gate; the final Algorithm-1
    # mapping keeps the strict executor.  Both share one PlanStats sink.
    reward_executor = Executor(
        catalog,
        plan_cache=SHARED_PLAN_CACHE,
        order_insensitive=True,
        stats=executor.stats,
    )
    asts = parse_queries(queries)

    total_start = time.perf_counter()

    # step 1: initial Difftrees (optionally clustered by result schema)
    trees = initial_difftrees(asts)
    if config.initial_partition and len(trees) > 1:
        clusters = cluster_by_result_schema(trees, executor)
        trees = [merge_difftrees(cluster) for cluster in clusters]

    # step 2: MCTS over transformation rules
    engine = TransformEngine(
        catalog, executor, max_applications=config.search.max_applications
    )
    if config.initial_refactor:
        trees = engine.refactor_to_fixpoint(trees)
    cost_model = CostModel(asts, config.cost)
    # two-level cache hierarchy: both mappers share the process-wide mapping
    # memo (level 2) on top of the shared plan cache (level 1), so fragments
    # derived during the reward loop are reused by the final Algorithm-1
    # mapping — and vice versa across pipeline runs on the same catalogue
    memo = SHARED_MAPPING_MEMO if config.mapper.memoize else None
    mapper = InterfaceMapper(catalog, executor, cost_model, config.mapper, memo=memo)
    reward_mapper = InterfaceMapper(
        catalog,
        reward_executor,
        cost_model,
        config.mapper,
        memo=memo,
        stats=mapper.stats,
    )

    reward_rng = random.Random(config.seed + 101)

    def reward_fn(state: SearchState) -> float:
        interfaces = reward_mapper.random_interfaces(
            state.trees, config.search.reward_mappings, reward_rng
        )
        if not interfaces:
            return float("-inf")
        best = best_interface_cost(interfaces)
        if best == float("inf"):
            # every candidate came back costless: worst possible reward
            return float("-inf")
        return -best

    search_start = time.perf_counter()
    result = parallel_search(
        trees,
        engine,
        reward_fn,
        config.search,
        executor=executor,
        mapping_memo=memo,
    )
    search_seconds = time.perf_counter() - search_start

    # step 3: exhaustive interface mapping on the best state (Algorithm 1)
    mapping_start = time.perf_counter()
    candidates = mapper.generate(result.best_state.trees)
    mapping_seconds = time.perf_counter() - mapping_start
    if not candidates:
        raise PipelineError(
            "interface mapping produced no candidates for the best search "
            f"state ({len(result.best_state.trees)} tree(s)); the state may "
            "contain queries whose results violate every chart's constraints"
        )
    interface = candidates[0]

    return PipelineResult(
        interface=interface,
        state=result.best_state,
        search_seconds=search_seconds,
        mapping_seconds=mapping_seconds,
        total_seconds=time.perf_counter() - total_start,
        search_stats=result.stats,
        mapper_stats=mapper.stats,
        best_reward=result.best_reward,
        candidates=candidates,
        executor_stats=executor.stats,
    )


def generate_for_workload(
    workload, catalog: Optional[Catalog] = None, config: Optional[PipelineConfig] = None
) -> PipelineResult:
    """Convenience wrapper: generate the interface for a named workload."""
    from ..workloads.logs import Workload, get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    assert isinstance(workload, Workload)
    return generate_interface(list(workload.queries), catalog=catalog, config=config)


def best_static_interface(
    queries: Sequence[QueryLike],
    catalog: Optional[Catalog] = None,
    config: Optional[PipelineConfig] = None,
) -> Interface:
    """The no-search baseline: map each query to its own static chart.

    Used by benchmarks to quantify how much the Difftree search contributes
    over simply rendering every query separately.
    """
    config = config or PipelineConfig()
    catalog = catalog or standard_catalog(seed=config.seed, scale=config.catalog_scale)
    executor = Executor(catalog)
    asts = parse_queries(queries)
    trees = initial_difftrees(asts)
    cost_model = CostModel(asts, config.cost)
    mapper = InterfaceMapper(catalog, executor, cost_model, config.mapper)
    return mapper.generate(trees)[0]
