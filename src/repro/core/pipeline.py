"""The end-to-end PI2 pipeline (paper Figure 6).

``generate_interface(queries, …)`` is the library's main entry point.  It:

1. parses the input query sequence into per-query Difftrees (optionally
   clustering them by result schema, the paper's initial Partition),
2. runs parallel MCTS over the transformation-rule search space, estimating
   each state's reward from K random interface mappings,
3. runs Algorithm 1 (visualization / interaction / layout mapping) on the
   best Difftree state, and
4. returns the lowest-cost interface together with search diagnostics.

The MCTS step executes on a pluggable backend (serial round-robin, threads,
or true worker processes — :mod:`repro.search.backends`).  The reward
context each worker needs (executors, cost model, mappers) is built by
:func:`build_reward_setup`, used both in this process and — via the
picklable :class:`PipelineWorkerSpec` — inside each process-backend worker,
so every backend runs the same reward code against the same catalogue.
"""

from __future__ import annotations

import hashlib
import pickle
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .. import faults
from ..cost.model import CostModel
from ..database.catalog import Catalog
from ..database.datasets import standard_catalog
from ..database.executor import Executor
from ..database.plancache import SHARED_PLAN_CACHE
from ..difftree.builder import (
    cluster_by_result_schema,
    initial_difftrees,
    merge_difftrees,
    parse_queries,
)
from ..interface.spec import Interface
from ..mapping.mapper import InterfaceMapper
from ..mapping.memo import SHARED_MAPPING_MEMO, MappingMemo
from ..obs import (
    GLOBAL_METRICS,
    MetricsRegistry,
    publish_cache_info,
    publish_mapper_stats,
    publish_plan_stats,
    publish_search_stats,
    span,
    worker_metrics_snapshot,
)
from ..search.backends import resolve_backend_name
from ..search.mcts import RewardFn
from ..search.parallel import parallel_search
from ..search.state import SearchState
from ..sqlparser.ast_nodes import Node
from ..transform.engine import TransformEngine
from .config import PipelineConfig, PipelineResult

QueryLike = Union[str, Node]


class PipelineError(RuntimeError):
    """Raised when the pipeline cannot produce any candidate interface."""


def best_interface_cost(interfaces: Sequence) -> float:
    """The minimum total cost over candidate interfaces.

    Candidates whose cost could not be computed carry ``cost is None``; when
    *every* candidate is costless this returns ``+inf`` (worst possible cost)
    rather than raising ``ValueError`` on an empty ``min()`` — the reward
    closure in :func:`generate_interface` then maps that to a ``-inf`` reward.
    """
    costs = [i.cost.total for i in interfaces if i.cost is not None]
    if not costs:
        return float("inf")
    return min(costs)


# ---------------------------------------------------------------------------
# reward context — shared by the in-process pipeline and process workers
# ---------------------------------------------------------------------------


@dataclass
class RewardSetup:
    """Everything the reward loop needs, built once per process."""

    catalog: Catalog
    executor: Executor
    reward_executor: Executor
    cost_model: CostModel
    mapper: InterfaceMapper
    reward_mapper: InterfaceMapper
    memo: Optional[MappingMemo]


def build_reward_setup(
    catalog: Catalog, asts: Sequence[Node], config: PipelineConfig
) -> RewardSetup:
    """Build executors, cost model and mappers for one process.

    The executor compiles through the process-wide shared plan cache, so
    every MCTS worker's reward queries — and any executor a caller builds
    later over the same catalogue — reuse one compiled plan set.  The reward
    loop never observes row order (schemas, safety checks and costs are all
    multiset-level), so its executor opts into cost-based join reordering
    without the ORDER-BY gate; the final Algorithm-1 mapping keeps the strict
    executor.  Both share one PlanStats sink, and both mappers share the
    process-wide mapping memo (two-level cache hierarchy, see PR 3).
    """
    executor = Executor(catalog, plan_cache=SHARED_PLAN_CACHE)
    reward_executor = Executor(
        catalog,
        plan_cache=SHARED_PLAN_CACHE,
        order_insensitive=True,
        stats=executor.stats,
    )
    cost_model = CostModel(asts, config.cost)
    memo = SHARED_MAPPING_MEMO if config.mapper.memoize else None
    mapper = InterfaceMapper(catalog, executor, cost_model, config.mapper, memo=memo)
    reward_mapper = InterfaceMapper(
        catalog,
        reward_executor,
        cost_model,
        config.mapper,
        memo=memo,
        stats=mapper.stats,
    )
    return RewardSetup(
        catalog=catalog,
        executor=executor,
        reward_executor=reward_executor,
        cost_model=cost_model,
        mapper=mapper,
        reward_mapper=reward_mapper,
        memo=memo,
    )


def make_reward_fn(
    setup: RewardSetup, config: PipelineConfig, worker_index: int = 0
) -> RewardFn:
    """The reward estimator (K random mappings, reward = −min cost).

    A state's reward is a *pure function* of ``(config.seed, state)``: the K
    random mappings are drawn from a throwaway RNG seeded by hashing the
    seed with the state's structural fingerprint.  Purity is what makes the
    whole caching hierarchy value-neutral — a reward-table hit (same round,
    another worker, a previous request on a warm pool, or a persisted cache
    file reloaded in a fresh process) returns exactly the value this function
    would have computed, so caching changes cost, never trajectories, and
    which worker evaluates a state first cannot matter.  ``worker_index`` is
    kept for the worker-spec build signature but no longer affects rewards.
    """
    reward_mapper = setup.reward_mapper
    mappings = config.search.reward_mappings
    seed = config.seed

    def reward_fn(state: SearchState) -> float:
        # supervision test hook: a no-op None check unless a fault plan is
        # installed (see repro.faults)
        faults.maybe_hang("hang-in-reward-eval", worker=worker_index)
        digest = hashlib.sha256(
            f"{seed}|{state.trees_fingerprint()}".encode("utf-8")
        ).digest()
        reward_rng = random.Random(int.from_bytes(digest[:8], "big"))
        interfaces = reward_mapper.random_interfaces(
            state.trees, mappings, reward_rng
        )
        if not interfaces:
            return float("-inf")
        best = best_interface_cost(interfaces)
        if best == float("inf"):
            # every candidate came back costless: worst possible reward
            return float("-inf")
        return -best

    return reward_fn


@dataclass
class PipelineWorkerSpec:
    """Picklable recipe for rebuilding the reward context in a worker process.

    Implements the :class:`repro.search.backends.ProcessWorkerSpec` protocol:
    each process-backend worker unpickles this, rebuilds catalogue, executors
    and mappers via :func:`build_reward_setup` (warming its private plan
    cache and mapping memo in the process), and evaluates rewards with the
    exact code the serial backend runs in the parent.
    """

    catalog: Catalog
    query_asts: list
    config: PipelineConfig
    #: built lazily inside the worker process; never pickled (the parent
    #: pickles the spec before any build happens)
    setup: Optional[RewardSetup] = field(default=None, repr=False, compare=False)

    def build(self, worker_index: int, search_config) -> tuple:
        self.setup = build_reward_setup(self.catalog, self.query_asts, self.config)
        engine = TransformEngine(
            self.catalog,
            self.setup.executor,
            max_applications=search_config.max_applications,
        )
        return engine, make_reward_fn(self.setup, self.config, worker_index)

    def cache_info(self) -> tuple[Optional[dict], Optional[dict]]:
        if self.setup is None:
            return None, None
        memo_info = self.setup.memo.info() if self.setup.memo is not None else None
        return self.setup.executor.plan_cache.info(), memo_info

    def metrics_snapshot(self) -> Optional[dict]:
        """This worker process's registry snapshot (``workers.*``), shipped
        back in the ``done`` reply and merged by the coordinator."""
        if self.setup is None:
            return None
        plan_info, memo_info = self.cache_info()
        return worker_metrics_snapshot(
            plan_stats=self.setup.executor.stats,
            mapper_stats=self.setup.mapper.stats,
            plan_cache_info=plan_info,
            memo_info=memo_info,
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        state["setup"] = None
        return state


def _process_spec_for(
    catalog: Catalog, asts: Sequence[Node], config: PipelineConfig
) -> Optional[PipelineWorkerSpec]:
    """A worker spec when the process backend is in play, else ``None``.

    Only built (and test-pickled) when the resolved backend is ``process`` —
    a custom catalogue that cannot be pickled silently falls back to the
    serial backend rather than failing the search.
    """
    if resolve_backend_name(config.search.backend, has_process_spec=True) != "process":
        return None
    spec = PipelineWorkerSpec(catalog=catalog, query_asts=list(asts), config=config)
    try:
        pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    return spec


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------


@dataclass
class GenerationRuntime:
    """Execution context a long-lived generation service threads through
    :func:`generate_interface`.

    One-shot callers never build one — every field has a cold default.  The
    service (:mod:`repro.service.service`) uses it to (a) run the search on
    a live :class:`~repro.service.pool.WorkerPool` backend instead of
    spawning fresh workers, (b) hand in the per-(catalogue, workload) reward
    table it keeps across requests, and (c) label the request's
    :class:`~repro.search.config.SearchStats` as pool-warm or pool-cold.
    """

    #: a live backend instance (e.g. a pooled process backend) to run the
    #: search on; ``None`` selects the configured backend by name
    backend_instance: Optional[object] = None
    #: pre-populated cross-worker reward table carried across requests
    reward_table: Optional[object] = None
    #: ``"warm"`` / ``"cold"`` pool state for the request's stats
    pool: Optional[str] = None


def generate_interface(
    queries: Sequence[QueryLike],
    catalog: Optional[Catalog] = None,
    config: Optional[PipelineConfig] = None,
    runtime: Optional[GenerationRuntime] = None,
) -> PipelineResult:
    """Generate the lowest-cost interactive interface for a query sequence.

    Args:
        queries: the example analysis queries (SQL strings or parsed ASTs),
            in the order the analyst issued them.
        catalog: the database catalogue to run against; defaults to the
            synthetic catalogue containing every table the paper uses.
        config: pipeline configuration; defaults to the paper's defaults.
        runtime: execution context threaded in by the generation service
            (warm worker pool, carried-over reward table); ``None`` runs the
            one-shot cold path.

    Returns:
        A :class:`PipelineResult` whose ``interface`` is the generated
        :class:`repro.interface.spec.Interface`.
    """
    config = config or PipelineConfig()
    catalog = catalog or standard_catalog(seed=config.seed, scale=config.catalog_scale)
    runtime = runtime or GenerationRuntime()
    with span("pipeline.parse", queries=len(queries)):
        asts = parse_queries(queries)
    setup = build_reward_setup(catalog, asts, config)
    executor = setup.executor

    # cross-run cache persistence: reload previously explored states keyed by
    # (catalogue, workload, reward-relevant config) before the search starts,
    # and save the extended state afterwards.  Imported via a function-level
    # import so the core pipeline has no hard dependency on the service layer
    reward_table = runtime.reward_table
    cache_store = cache_key = None
    if config.cache_dir is not None:
        from ..search.backends.base import RewardTable
        from ..service.persist import CacheStore, persistence_key

        cache_store = CacheStore(config.cache_dir)
        cache_key = persistence_key(catalog, asts, config)
        if reward_table is None:
            reward_table = RewardTable()
        if reward_table.size() == 0:
            bundle = cache_store.load(cache_key)
            if bundle is not None:
                reward_table.seed(bundle.rewards)
                SHARED_PLAN_CACHE.import_entries(catalog, bundle.plans)
                if setup.memo is not None:
                    setup.memo.import_entries(catalog, bundle.memo)

    total_start = time.perf_counter()

    # step 1: initial Difftrees (optionally clustered by result schema)
    with span("pipeline.plan", queries=len(asts)):
        trees = initial_difftrees(asts)
        if config.initial_partition and len(trees) > 1:
            clusters = cluster_by_result_schema(trees, executor)
            trees = [merge_difftrees(cluster) for cluster in clusters]

        # step 2: MCTS over transformation rules
        engine = TransformEngine(
            catalog, executor, max_applications=config.search.max_applications
        )
        if config.initial_refactor:
            trees = engine.refactor_to_fixpoint(trees)

    # every worker gets a private engine (its rule-application cache must not
    # couple workers across rounds) and a private reward-RNG stream; the
    # process backend rebuilds the same pair inside each worker process
    def engine_factory(worker_index: int) -> TransformEngine:
        return TransformEngine(
            catalog, executor, max_applications=config.search.max_applications
        )

    def reward_factory(worker_index: int) -> RewardFn:
        return make_reward_fn(setup, config, worker_index)

    search_start = time.perf_counter()
    try:
        with span("pipeline.search", workers=config.search.workers):
            result = parallel_search(
                trees,
                config=config.search,
                executor=executor,
                mapping_memo=setup.memo,
                engine_factory=engine_factory,
                reward_factory=reward_factory,
                process_spec=_process_spec_for(catalog, asts, config),
                reward_table=reward_table,
                backend_instance=runtime.backend_instance,
            )
    except (faults.WorkerFailure, faults.DeadlineExceeded):
        if runtime.backend_instance is not None:
            # a service-managed backend: its degradation ladder (fresh pool,
            # then serial) owns the recovery — don't double-degrade here
            raise
        # one-shot process backend failed beyond its own retries: re-run on
        # the serial in-process backend.  Rewards are pure functions of
        # (seed, state), so the serial result is byte-identical to what the
        # process run would have produced
        from ..search.backends.serial import SerialBackend

        with span("pipeline.search", workers=config.search.workers, degraded="serial"):
            result = parallel_search(
                trees,
                config=config.search,
                executor=executor,
                mapping_memo=setup.memo,
                engine_factory=engine_factory,
                reward_factory=reward_factory,
                reward_table=reward_table,
                backend_instance=SerialBackend(),
            )
        result.stats.degraded = "serial"
    search_seconds = time.perf_counter() - search_start
    if runtime.pool is not None:
        result.stats.pool = runtime.pool

    # step 3: exhaustive interface mapping on the best state (Algorithm 1)
    mapper = setup.mapper
    mapping_start = time.perf_counter()
    with span("pipeline.map", trees=len(result.best_state.trees)):
        candidates = mapper.generate(result.best_state.trees)
    mapping_seconds = time.perf_counter() - mapping_start
    if not candidates:
        raise PipelineError(
            "interface mapping produced no candidates for the best search "
            f"state ({len(result.best_state.trees)} tree(s)); the state may "
            "contain queries whose results violate every chart's constraints"
        )
    interface = candidates[0]

    # persist *after* Algorithm 1 so the saved bundle also carries the final
    # mapping's fragments, not just the reward loop's
    if cache_store is not None and reward_table is not None:
        memo_entries = (
            setup.memo.export_entries(catalog) if setup.memo is not None else []
        )
        cache_store.save(
            cache_key,
            rewards=reward_table.snapshot(),
            plans=SHARED_PLAN_CACHE.export_entries(catalog),
            memo=memo_entries,
        )

    # publish every stats sink into the run's unified registry (the stats
    # dataclasses are views over it — repro.obs.views declares the total
    # field maps) and fold it into the process-lifetime accumulator
    registry = MetricsRegistry()
    publish_search_stats(result.stats, registry)
    publish_plan_stats(executor.stats, registry)
    publish_mapper_stats(mapper.stats, registry)
    publish_cache_info(result.stats.plan_cache, registry, "cache.plan")
    publish_cache_info(result.stats.mapping_memo, registry, "cache.memo")
    publish_cache_info(result.stats.reward_table, registry, "cache.rewards")
    if cache_store is not None:
        registry.counter("persist.loads").inc(cache_store.loads)
        registry.counter("persist.misses").inc(
            cache_store.misses + cache_store.load_rejects
        )
        registry.counter("persist.rejects").inc(cache_store.load_rejects)
        registry.counter("persist.saves").inc(cache_store.saves)
    registry.merge(result.stats.metrics)  # workers.* (process backend)
    GLOBAL_METRICS.merge(registry.snapshot())

    return PipelineResult(
        interface=interface,
        state=result.best_state,
        search_seconds=search_seconds,
        mapping_seconds=mapping_seconds,
        total_seconds=time.perf_counter() - total_start,
        search_stats=result.stats,
        mapper_stats=mapper.stats,
        best_reward=result.best_reward,
        candidates=candidates,
        executor_stats=executor.stats,
        metrics=registry.as_dict(),
    )


def generate_for_workload(
    workload,
    catalog: Optional[Catalog] = None,
    config: Optional[PipelineConfig] = None,
    runtime: Optional[GenerationRuntime] = None,
) -> PipelineResult:
    """Convenience wrapper: generate the interface for a named workload."""
    from ..workloads.logs import Workload, get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    assert isinstance(workload, Workload)
    return generate_interface(
        list(workload.queries), catalog=catalog, config=config, runtime=runtime
    )


def best_static_interface(
    queries: Sequence[QueryLike],
    catalog: Optional[Catalog] = None,
    config: Optional[PipelineConfig] = None,
) -> Interface:
    """The no-search baseline: map each query to its own static chart.

    Used by benchmarks to quantify how much the Difftree search contributes
    over simply rendering every query separately.
    """
    config = config or PipelineConfig()
    catalog = catalog or standard_catalog(seed=config.seed, scale=config.catalog_scale)
    executor = Executor(catalog)
    asts = parse_queries(queries)
    trees = initial_difftrees(asts)
    cost_model = CostModel(asts, config.cost)
    mapper = InterfaceMapper(catalog, executor, cost_model, config.mapper)
    return mapper.generate(trees)[0]
