"""End-to-end pipeline configuration.

Bundles the search, mapping and cost-model knobs into a single object that
the public API (:func:`repro.core.pipeline.generate_interface`) accepts; the
defaults match the paper's defaults (es=30, p=3, s=10, K=5, k=10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cost.model import CostModelConfig
from ..mapping.mapper import MapperConfig
from ..search.config import SearchConfig


@dataclass
class PipelineConfig:
    """All tunables of the PI2 pipeline in one place."""

    search: SearchConfig = field(default_factory=SearchConfig)
    mapper: MapperConfig = field(default_factory=MapperConfig)
    cost: CostModelConfig = field(default_factory=CostModelConfig)
    #: data scale factor for the synthetic catalogue (1.0 = paper-like sizes)
    catalog_scale: float = 1.0
    #: random seed shared by catalogue generation and the search
    seed: int = 42
    #: cluster the initial per-query Difftrees by result schema before the
    #: search starts (the paper's initial Partition optimisation)
    initial_partition: bool = True
    #: deterministically refactor the clustered Difftrees to a fixpoint
    #: (Figure 12's canonical Merge → PushANY → ANY→VAL sequence) before MCTS
    initial_refactor: bool = True
    #: directory for cross-run cache persistence: when set, the reward
    #: table, plan cache and mapping memo are loaded before the search and
    #: saved after it, keyed by (catalogue fingerprint, workload fingerprint,
    #: reward-relevant config fingerprint) — see :mod:`repro.service.persist`.
    #: Rewards are pure functions of (seed, state), so reloads change cost,
    #: never results
    cache_dir: Optional[str] = None

    def replace(self, **kwargs) -> "PipelineConfig":
        data = {**self.__dict__}
        data.update(kwargs)
        return PipelineConfig(**data)

    @staticmethod
    def fast(seed: int = 42) -> "PipelineConfig":
        """A configuration tuned for unit tests: small search budgets."""
        return PipelineConfig(
            search=SearchConfig(
                max_iterations=64,
                early_stop=24,
                workers=2,
                sync_interval=8,
                rollout_depth=12,
                reward_mappings=2,
                seed=seed,
            ),
            mapper=MapperConfig(top_k=5, max_vis_per_tree=3, max_joint_vis=8),
            catalog_scale=0.15,
            seed=seed,
        )

    @staticmethod
    def paper_defaults(seed: int = 42) -> "PipelineConfig":
        """The paper's default parameters (es=30, p=3, s=10)."""
        return PipelineConfig(
            search=SearchConfig(
                max_iterations=120,
                early_stop=30,
                workers=3,
                sync_interval=10,
                reward_mappings=5,
                seed=seed,
            ),
            seed=seed,
        )


@dataclass
class PipelineResult:
    """The pipeline's output: the interface plus timing / search diagnostics."""

    interface: object
    state: object
    search_seconds: float
    mapping_seconds: float
    total_seconds: float
    search_stats: object
    mapper_stats: object
    best_reward: float
    candidates: list = field(default_factory=list)
    #: query-plan / executor counters (:class:`repro.database.planner.PlanStats`)
    #: for the run — hash joins vs fallbacks, pushdowns, cache hit rates
    executor_stats: object = None
    #: the run's unified metrics registry as a flat ``{name: value}`` dict
    #: (:meth:`repro.obs.metrics.MetricsRegistry.as_dict`): every stats
    #: dataclass above published through :mod:`repro.obs.views`, plus merged
    #: per-worker snapshots under ``workers.*``
    metrics: Optional[dict] = None

    @property
    def cost(self) -> Optional[float]:
        if self.interface is None or self.interface.cost is None:
            return None
        return self.interface.cost.total
