"""End-to-end PI2 pipeline: queries → Difftrees → search → interface."""

from .config import PipelineConfig, PipelineResult
from .pipeline import best_static_interface, generate_for_workload, generate_interface

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "best_static_interface",
    "generate_for_workload",
    "generate_interface",
]
