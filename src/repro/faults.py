"""repro.faults — deterministic fault injection and supervision errors.

The generation service recovers from worker crashes, hangs, lost messages,
torn cache files and vanished shared-memory segments (see
:mod:`repro.service.pool` and ``ARCHITECTURE.md`` → *Failure modes and
recovery*).  None of those paths are testable without a way to *cause* the
faults on demand — this module is that way.  A fault plan is a small spec
string, installed via :func:`install` or the ``REPRO_FAULTS`` environment
variable::

    REPRO_FAULTS="kill-worker-before-sync:worker=1:once=/tmp/tok"

Grammar: ``spec[;spec...]``, each ``spec`` is ``site[:key=value]*`` with

``worker=<int>``    only fire in the worker with this index (default: any)
``hit=<int>``       first matching call that fires, 1-based (default 1)
``count=<int>``     how many consecutive matching calls fire (default 1)
``seconds=<float>`` sleep duration for hang sites (default 30)
``once=<path>``     a token file claimed with ``O_CREAT|O_EXCL``: across
                    every process and every retry, only the first claimant
                    fires.  This is what keeps injected faults *transient* —
                    a respawned worker replaying the same task does not
                    re-fire, so recovery tests converge deterministically.

Sites threaded through the codebase (grep for ``faults.fire``):

=============================  ============================================
``kill-worker-before-sync``    worker ``os._exit``\\ s before its sync reply
``hang-in-reward-eval``        reward evaluation sleeps ``seconds``
``drop-sync-message``          worker computes a round but never reports it
``duplicate-sync-message``     worker sends the same sync reply twice
``corrupt-persisted-cache``    a saved cache bundle's payload is bit-flipped
``unlink-shm-segment``         the catalogue segment vanishes before attach
=============================  ============================================

Zero overhead when disabled: every hook goes through :func:`fire`, whose
first statement returns when no plan is installed — one ``None`` check on
hot paths, nothing else.  Determinism: firing depends only on the spec, the
per-(process, task) hit counters and the once-token file, never on time or
randomness, so a faulty run is exactly reproducible.

Pooled workers receive the coordinator's spec inside each task message and
(re)install it via :func:`install_local` — environment inheritance only
covers processes forked *after* :func:`install`, while the task channel
reaches workers that were already alive.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FAULTS_ENV_VAR",
    "KILL_EXIT_CODE",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "GenerationFailure",
    "WorkerFailure",
    "backoff_delays",
    "current_spec",
    "fire",
    "install",
    "install_local",
    "maybe_hang",
    "maybe_kill",
    "reset",
]

#: Environment variable carrying the fault plan into spawned processes.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit status of a worker killed by ``maybe_kill`` — distinct from 0 and
#: from Python's unhandled-exception 1, so supervision logs are unambiguous.
KILL_EXIT_CODE = 57


# ---------------------------------------------------------------------------
# supervision errors (shared vocabulary of pool, backend and service)
# ---------------------------------------------------------------------------


class WorkerFailure(RuntimeError):
    """A worker process crashed, hung past a deadline, or broke protocol.

    ``kind`` is ``"crashed"`` (process exited / connection dropped),
    ``"hung"`` (no reply within the round deadline), ``"faulted"`` (the
    worker reported an exception) or ``"protocol"`` (an out-of-sequence
    reply).  Subclasses ``RuntimeError`` so pre-supervision callers that
    caught worker errors generically keep working.
    """

    def __init__(self, worker: Optional[int], kind: str, detail: str) -> None:
        label = f"worker {worker}" if worker is not None else "worker"
        super().__init__(f"{label} {kind}: {detail}")
        self.worker = worker
        self.kind = kind
        self.detail = detail


class DeadlineExceeded(RuntimeError):
    """The request-level deadline expired while waiting on workers."""


class GenerationFailure(RuntimeError):
    """Every rung of the degradation ladder failed for one request."""


def backoff_delays(attempts: int, base: float, seed: int) -> list[float]:
    """Jittered exponential backoff delays, deterministic for a seed.

    ``delay[i] = base * 2**i * (0.5 + u_i)`` with ``u_i`` drawn from an RNG
    seeded only by ``seed`` — retries spread out (jitter) yet every run of
    the same configuration sleeps the same schedule (determinism).
    """
    import random

    rng = random.Random(seed * 2654435761 % (2**31))
    return [base * (2**i) * (0.5 + rng.random()) for i in range(max(0, attempts))]


# ---------------------------------------------------------------------------
# the fault plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``site[:key=value]*`` clause."""

    site: str
    worker: Optional[int] = None
    hit: int = 1
    count: int = 1
    seconds: float = 30.0
    once: Optional[str] = None


class FaultPlan:
    """Parsed specs plus this process's per-site hit counters."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.specs: list[FaultSpec] = []
        self._counts: dict[tuple[str, Optional[int]], int] = {}
        self._lock = threading.Lock()
        for clause in spec.split(";"):
            clause = clause.strip()
            if clause:
                self.specs.append(_parse_clause(clause))

    def fire(self, site: str, worker: Optional[int] = None) -> Optional[FaultSpec]:
        """The matching spec when this call should fault, else ``None``."""
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.worker is not None and spec.worker != worker:
                continue
            with self._lock:
                key = (site, worker)
                self._counts[key] = self._counts.get(key, 0) + 1
                hits = self._counts[key]
            if not (spec.hit <= hits < spec.hit + spec.count):
                continue
            if spec.once is not None and not _claim_token(spec.once):
                continue
            return spec
        return None


def _parse_clause(clause: str) -> FaultSpec:
    parts = clause.split(":")
    site, options = parts[0].strip(), parts[1:]
    kwargs: dict = {}
    for option in options:
        key, _, value = option.partition("=")
        key = key.strip()
        if key == "worker":
            kwargs["worker"] = int(value)
        elif key == "hit":
            kwargs["hit"] = int(value)
        elif key == "count":
            kwargs["count"] = int(value)
        elif key == "seconds":
            kwargs["seconds"] = float(value)
        elif key == "once":
            kwargs["once"] = value
        else:
            raise ValueError(f"unknown fault option {key!r} in {clause!r}")
    return FaultSpec(site=site, **kwargs)


def _claim_token(path: str) -> bool:
    """Atomically claim a cross-process once-token; True for the claimant."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        # unreachable token directory: fail open (fire) rather than silently
        # disabling the fault the test asked for
        return True
    os.close(fd)
    return True


# ---------------------------------------------------------------------------
# module plan + hooks
# ---------------------------------------------------------------------------

_plan: Optional[FaultPlan] = None


def _parse(spec: Optional[str]) -> Optional[FaultPlan]:
    if not spec or not spec.strip():
        return None
    return FaultPlan(spec)


def install(spec: Optional[str]) -> None:
    """Install a fault plan in this process *and* the environment.

    The environment copy is what processes spawned after this call inherit;
    already-running pool workers are reached through the per-task spec the
    coordinator ships instead (see :func:`install_local`).
    """
    global _plan
    _plan = _parse(spec)
    if spec:
        os.environ[FAULTS_ENV_VAR] = spec
    else:
        os.environ.pop(FAULTS_ENV_VAR, None)


def install_local(spec: Optional[str]) -> None:
    """Install (or clear, for ``None``) a plan in this process only.

    Called by pool workers at every task boundary with the spec the
    coordinator embedded in the task message, so the plan is per-task and
    its hit counters restart with each (re)play.
    """
    global _plan
    _plan = _parse(spec)


def reset() -> None:
    """Remove any installed plan (tests)."""
    install(None)


def current_spec() -> Optional[str]:
    """The raw spec string active in this process (for task propagation)."""
    if _plan is not None:
        return _plan.spec
    return os.environ.get(FAULTS_ENV_VAR) or None


def fire(site: str, worker: Optional[int] = None) -> Optional[FaultSpec]:
    """The hook: truthy (the spec) when this call site should fault.

    The disabled path is one global load and a ``None`` check — cheap enough
    for reward-evaluation hot loops.
    """
    if _plan is None:
        return None
    spec = _plan.fire(site, worker)
    if spec is not None:
        # record the injection where the recovery it forces will also be
        # visible (service.* / pool.* counters)
        from .obs import GLOBAL_METRICS

        GLOBAL_METRICS.counter(f"faults.fired.{site}").inc()
    return spec


def maybe_kill(site: str, worker: Optional[int] = None) -> None:
    """Die instantly — no cleanup, no ``finally`` — when ``site`` fires."""
    if _plan is None:
        return
    if fire(site, worker) is not None:
        os._exit(KILL_EXIT_CODE)


def maybe_hang(site: str, worker: Optional[int] = None) -> None:
    """Sleep through the supervisor's deadline when ``site`` fires."""
    if _plan is None:
        return
    spec = fire(site, worker)
    if spec is not None:
        time.sleep(spec.seconds)


# initialise from the environment at import: spawned children see the
# coordinator's plan without any explicit hand-off
_plan = _parse(os.environ.get(FAULTS_ENV_VAR))
