"""``cache-key-field``: every behavior-altering planner flag is in the key.

PR 5's hardest bug class: an ``Executor`` option that changes the *compiled
plan* (join order, engine gating, pushdown shape) but is missing from
``repro.database.plancache.plan_key`` lets two executors with different
settings exchange plans through the shared process-wide cache — silently,
and only when their fingerprints collide, which no fixed test seed may ever
exercise.  This checker proves the absence of that hole structurally:

1. locate ``Executor.__init__`` and collect the **planner-flag set**: every
   ``__init__`` parameter forwarded as a keyword argument to the
   ``Planner(...)`` construction (those are, by definition, the options the
   compiled artifact depends on);
2. locate ``def plan_key(...)`` in the plan-cache module and collect its
   parameter names;
3. flag any planner flag that is *not* a ``plan_key`` parameter — and any
   ``plan_key(...)`` call site that does not mention every non-fingerprint
   parameter (positionally counted or by keyword / ``self.<flag>``).

The checker is generic over the file set it is given: fixtures simulate the
executor/plancache pair with small snippets, and renaming or moving the real
modules updates the lookup through the project module index.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, Project, register

#: class whose __init__ owns the planner flags, and the planner it builds
EXECUTOR_CLASS = "Executor"
PLANNER_CLASS = "Planner"
KEY_FUNCTION = "plan_key"


def _find_class(ctx: FileContext, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_function(ctx: FileContext, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _init_params(cls: ast.ClassDef) -> list[str]:
    init = next(
        (
            n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return []
    args = init.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [n for n in names if n != "self"]


def _planner_flags(cls: ast.ClassDef, init_params: list[str]) -> dict[str, ast.AST]:
    """__init__ params forwarded into ``Planner(...)`` keywords, with call site."""
    flags: dict[str, ast.AST] = {}
    params = set(init_params)
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id != PLANNER_CLASS:
            continue
        for kw in node.keywords:
            if kw.arg is None:
                continue
            value = kw.value
            source: Optional[str] = None
            if isinstance(value, ast.Name) and value.id in params:
                source = value.id
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and value.attr in params
            ):
                source = value.attr
            if source is not None:
                flags[source] = node
    return flags


def _names_in(node: ast.AST) -> set[str]:
    """Bare names and ``self.<attr>`` tails mentioned anywhere inside."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            out.add(sub.attr)
    return out


@register
class CacheKeyChecker(Checker):
    rule = "cache-key-field"
    description = (
        "planner flags forwarded from Executor.__init__ must be plan_key "
        "parameters and appear at every plan_key(...) call site"
    )
    dynamic_backstop = (
        "tests/test_planner.py cross-option plan-cache isolation; "
        "tests/test_columnar.py columnar_subqueries kill-switch equivalence"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        executor_ctx = exec_cls = None
        key_ctx = key_fn = None
        for ctx in project:
            if exec_cls is None:
                found = _find_class(ctx, EXECUTOR_CLASS)
                if found is not None and _planner_flags(
                    found, _init_params(found)
                ):
                    executor_ctx, exec_cls = ctx, found
            if key_fn is None:
                found_fn = _find_function(ctx, KEY_FUNCTION)
                if found_fn is not None:
                    key_ctx, key_fn = ctx, found_fn
        if exec_cls is None or executor_ctx is None:
            return []  # nothing to cross-reference in this file set

        findings: list[Finding] = []
        init_params = _init_params(exec_cls)
        flags = _planner_flags(exec_cls, init_params)

        if key_fn is None or key_ctx is None:
            for flag, site in sorted(flags.items()):
                findings.append(
                    self.finding(
                        executor_ctx,
                        site,
                        f"planner flag {flag!r} found but no {KEY_FUNCTION}() "
                        "definition is in the analyzed file set — the plan "
                        "cache cannot be keyed on it",
                    )
                )
            return findings

        key_args = key_fn.args
        key_params = [
            a.arg for a in key_args.posonlyargs + key_args.args + key_args.kwonlyargs
        ]

        # rule 1: every planner flag is a parameter of plan_key
        for flag, site in sorted(flags.items()):
            if flag not in key_params:
                findings.append(
                    self.finding(
                        executor_ctx,
                        site,
                        f"planner flag {flag!r} is forwarded to {PLANNER_CLASS} "
                        f"but is not a parameter of {KEY_FUNCTION}() — executors "
                        "differing only in this flag would share cached plans",
                    )
                )

        # rule 2: every plan_key(...) call site mentions every key parameter
        # (the fingerprint argument is whatever the first positional is)
        required = [p for p in key_params if p not in ("fingerprint",)]
        for ctx in project:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
                if name != KEY_FUNCTION or node is key_fn:
                    continue
                mentioned = _names_in(node)
                positional_ok = len(node.args) >= len(key_params)
                for param in required:
                    if positional_ok or param in mentioned or any(
                        kw.arg == param for kw in node.keywords
                    ):
                        continue
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{KEY_FUNCTION}() call does not thread the "
                            f"{param!r} flag (neither positionally complete "
                            "nor named) — the cached plan would be looked up "
                            "under an incomplete key",
                        )
                    )
        return findings
