"""``shm-lifecycle``: shared-memory segments need an owner that cleans up.

A ``multiprocessing.shared_memory.SharedMemory`` segment is a *system*
resource: unlike ordinary objects it survives the creating process unless
someone calls ``close()`` (drop this process's mapping) and — for the owner
— ``unlink()`` (remove the segment).  A creation site with no reachable
cleanup leaks ``/dev/shm`` space on every crash, which is exactly the
failure mode the service's catalogue registry must never have
(:mod:`repro.service.shm`).

The rule flags every ``SharedMemory(...)`` construction unless one of the
sanctioned ownership patterns is visible:

* **scoped** — the enclosing function reaches ``.close()`` / ``.unlink()``
  from a ``try``/``finally`` (or an ``except`` handler that cleans up the
  partially-created segment before re-raising);
* **class-managed** — the creation happens in a method of a class whose
  ``close()`` / ``__exit__`` / ``__del__`` / ``weakref.finalize`` callback
  performs the cleanup (the registry pattern: segments stored on ``self``,
  released by the owner's ``close``);
* **ownership transfer** — the segment is immediately ``return``-ed, handing
  the cleanup obligation to the caller (e.g. an attach helper wrapped in
  the caller's ``try``/``finally``).

Everything else is a finding.  Suppress intentional exceptions with
``# repro: allow-shm-lifecycle -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, register

_CLEANUP_ATTRS = {"close", "unlink"}
_CLASS_CLEANUP_METHODS = {"close", "__exit__", "__del__"}


def _is_shared_memory_call(node: ast.AST) -> bool:
    """True for ``SharedMemory(...)`` / ``shared_memory.SharedMemory(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


def _mentions_cleanup(nodes: Iterable[ast.AST]) -> bool:
    """True when any node calls ``.close()`` or ``.unlink()``."""
    for root in nodes:
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLEANUP_ATTRS
            ):
                return True
    return False


def _function_has_scoped_cleanup(func: ast.AST) -> bool:
    """A ``finally`` or ``except`` block in the function performs cleanup."""
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            if node.finalbody and _mentions_cleanup(node.finalbody):
                return True
            if node.handlers and _mentions_cleanup(node.handlers):
                return True
    return False


def _class_has_managed_cleanup(cls: ast.ClassDef) -> bool:
    """The class releases segments in close/__exit__/__del__ or a finalizer."""
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name in _CLASS_CLEANUP_METHODS
            and _mentions_cleanup([stmt])
        ):
            return True
    # weakref.finalize(self, <callback>, ...) registered anywhere in the
    # class counts when the callback is a method/function of this class
    # that performs cleanup
    finalize_targets: set[str] = set()
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "finalize"
            and len(node.args) >= 2
        ):
            callback = node.args[1]
            if isinstance(callback, ast.Attribute):
                finalize_targets.add(callback.attr)
            elif isinstance(callback, ast.Name):
                finalize_targets.add(callback.id)
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name in finalize_targets
            and _mentions_cleanup([stmt])
        ):
            return True
    return False


def _is_direct_return(creation: ast.Call, func: ast.AST) -> bool:
    """The creation is ``return SharedMemory(...)`` — ownership transfers."""
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is creation:
            return True
    return False


@register
class ShmLifecycleChecker(Checker):
    rule = "shm-lifecycle"
    description = (
        "SharedMemory segments must be released via try/finally (or except "
        "cleanup), an owning class's close/__exit__/finalizer, or returned "
        "to a caller that does"
    )
    dynamic_backstop = (
        "tests/test_service.py shared-memory registry lifecycle tests "
        "(segments unlinked after close; attach never unlinks)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        # walk with an explicit scope stack so each creation site knows its
        # enclosing function and class
        self._visit(ctx, ctx.tree, None, None, findings)
        return findings

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        func: Optional[ast.AST],
        cls: Optional[ast.ClassDef],
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node
        elif isinstance(node, ast.ClassDef):
            cls, func = node, None
        if _is_shared_memory_call(node):
            sanctioned = (
                func is not None
                and (
                    _function_has_scoped_cleanup(func)
                    or _is_direct_return(node, func)
                )
            ) or (cls is not None and _class_has_managed_cleanup(cls))
            if not sanctioned:
                where = (
                    f"in {getattr(func, 'name', '<module>')}" if func else "at module level"
                )
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"SharedMemory created {where} without a matching "
                        "close()/unlink() in a finally/except block, an "
                        "owning class close/__exit__/finalizer, or a direct "
                        "ownership-transferring return",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, func, cls, findings)
