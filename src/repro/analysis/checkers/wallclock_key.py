"""``no-wallclock-in-key``: timing values must not flow into keys.

The observability layer (:mod:`repro.obs`) makes wall-clock readings — span
starts, durations, phase attributions — ubiquitous next to the code that
mints cache keys and fingerprints.  A timing value that lands in a key is a
worse bug than most nondeterminism: the key *looks* stable in a single run
(the same object keeps its key) but never matches across runs, silently
turning every persisted cache lookup into a miss.

:mod:`repro.analysis.checkers.nondet_key` already bans *direct* clock calls
inside key contexts.  This rule adds the one-hop flow the direct scan cannot
see::

    start = time.perf_counter()        # fine: timing for stats
    ...
    key = (sql, start)                 # flagged: timing flowed into a key

A name becomes *tainted* when it is assigned from a wall-clock source — any
``time.*`` clock (``time``/``monotonic``/``perf_counter``/``process_time``
and their ``_ns`` variants, also as bare from-imports), ``datetime``'s
``now``/``utcnow``/``today``, or a tracer span (``span(...)`` /
``TRACER.span(...)`` — span objects carry start timestamps and per-run
identity).  The rule fires when a tainted name (or a direct clock call) is

* used anywhere inside a key-producer function (``fingerprint``/``*_key``,
  the :data:`~repro.analysis.checkers.unordered_iteration.KEY_PRODUCER_RE`
  convention);
* part of the right-hand side of an assignment to a key-like name
  (``key``/``*_key``/``fingerprint*``);
* passed as an argument to a call whose callee name is itself a key
  producer (``persistence_key(sql, started_at)``).

Intentional timing-in-key designs (e.g. a TTL bucket that *wants* coarse
time in the key) take the ``# repro: allow-no-wallclock-in-key`` pragma with
their justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, register
from .nondet_key import _KEY_TARGET_RE
from .unordered_iteration import KEY_PRODUCER_RE

#: ``module.attr`` clock calls whose results are wall-clock tainted
_CLOCK_QUALIFIED = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

#: bare names that are unambiguous clock reads when called (from-imports);
#: ``time`` itself is excluded — it is far too common as a variable name
_CLOCK_BARE = {
    "monotonic",
    "perf_counter",
    "process_time",
    "time_ns",
    "monotonic_ns",
    "perf_counter_ns",
    "process_time_ns",
}

#: tracer entry points whose return values carry timing + per-run identity
_SPAN_BARE = {"span"}


def _clock_call(node: ast.Call) -> Optional[str]:
    """A human-readable description when ``node`` reads a clock / span."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _CLOCK_BARE:
            return f"{func.id}(...)"
        if func.id in _SPAN_BARE:
            return f"{func.id}(...) span"
    if isinstance(func, ast.Attribute):
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else None
        if (base_name, func.attr) in _CLOCK_QUALIFIED:
            return f"{base_name}.{func.attr}(...)"
        if base_name == "TRACER" and func.attr == "span":
            return "TRACER.span(...) span"
    return None


def _scan_clocks(node: ast.AST) -> list[tuple[ast.AST, str]]:
    return [
        (sub, what)
        for sub in ast.walk(node)
        if isinstance(sub, ast.Call) and (what := _clock_call(sub)) is not None
    ]


def _callee_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _FunctionScope:
    """One function's taint map: name -> description of its clock source."""

    def __init__(self, node) -> None:
        self.node = node
        self.tainted: dict[str, str] = {}
        self._collect(node)

    def _collect(self, root) -> None:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Assign):
                hits = _scan_clocks(sub.value)
                if not hits:
                    continue
                what = hits[0][1]
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        self.tainted[target.id] = what
            elif isinstance(sub, ast.AugAssign) and isinstance(sub.target, ast.Name):
                if _scan_clocks(sub.value):
                    self.tainted.setdefault(sub.target.id, "clock arithmetic")
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and _clock_call(item.context_expr) is not None
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        self.tainted[item.optional_vars.id] = "span object"

    def tainted_uses(self, node: ast.AST) -> list[tuple[ast.AST, str]]:
        """Loads of tainted names anywhere inside ``node``."""
        return [
            (sub, f"{sub.id!r} (assigned from {self.tainted[sub.id]})")
            for sub in ast.walk(node)
            if isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id in self.tainted
        ]


class _Visitor(ast.NodeVisitor):
    def __init__(self, checker: "WallclockKeyChecker", ctx: FileContext) -> None:
        self.checker = checker
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._flagged: set[int] = set()

    def _flag(self, site: ast.AST, what: str, where: str) -> None:
        if id(site) in self._flagged:
            return
        self._flagged.add(id(site))
        self.findings.append(
            self.checker.finding(
                self.ctx,
                site,
                f"wall-clock value {what} flows into {where}; keys must be "
                "content-derived — timing belongs in spans and metrics, "
                "never in what they observe",
            )
        )

    def _function(self, node) -> None:
        scope = _FunctionScope(node)
        if KEY_PRODUCER_RE.search(node.name):
            where = f"key producer {node.name}()"
            for site, what in _scan_clocks(node):
                self._flag(site, what, where)
            for site, what in scope.tainted_uses(node):
                self._flag(site, what, where)
        else:
            self._check_flows(node, scope)
        self.generic_visit(node)

    visit_FunctionDef = _function
    visit_AsyncFunctionDef = _function

    def _check_flows(self, node, scope: _FunctionScope) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                key_targets = [
                    t.id
                    for t in sub.targets
                    if isinstance(t, ast.Name) and _KEY_TARGET_RE.search(t.id)
                ]
                if key_targets:
                    where = f"assignment to {key_targets[0]!r}"
                    for site, what in _scan_clocks(sub.value):
                        self._flag(site, what, where)
                    for site, what in scope.tainted_uses(sub.value):
                        self._flag(site, what, where)
            elif isinstance(sub, ast.Call):
                callee = _callee_name(sub)
                # dict.keys() et al. take no arguments worth scanning, so the
                # producer-name match stays cheap and precise for real calls
                # like persistence_key(...) / state_fingerprint(...)
                if callee is None or not KEY_PRODUCER_RE.search(callee):
                    continue
                where = f"argument to key producer {callee}()"
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    for site, what in _scan_clocks(arg):
                        self._flag(site, what, where)
                    for site, what in scope.tainted_uses(arg):
                        self._flag(site, what, where)


@register
class WallclockKeyChecker(Checker):
    rule = "no-wallclock-in-key"
    description = (
        "perf_counter/time/span values flowing (one hop) into fingerprints "
        "or cache keys"
    )
    dynamic_backstop = (
        "tests/test_service.py cold/warm/persisted byte-identity; "
        "tests/test_obs.py tracing-on/off interface identity"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings
