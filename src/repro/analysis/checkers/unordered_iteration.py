"""``unordered-iteration``: sets must be sorted before their order can leak.

The engines' equivalence contract (ARCHITECTURE.md) and every cache key in
the system assume that identical inputs produce *byte-identical* outputs.
Iterating a ``set``/``frozenset`` breaks that silently: CPython's set order
depends on element hashes and insertion history, and ``PYTHONHASHSEED``
randomizes ``str`` hashes per process — so a loop over a set of column
names can differ between two runs, two workers, or two cache states.

The rule flags iteration (``for``, comprehensions, and order-sensitive
consumers such as ``list()``/``tuple()``/``enumerate()``/``"".join()``)
whose iterable is statically known to be a set:

* a set literal/comprehension, or a ``set(...)``/``frozenset(...)`` call;
* a local name whose every assignment in the enclosing scope is one of the
  above (a name also assigned non-set values stays ambiguous and is never
  flagged — re-used temp names must not produce noise);
* ``dict.keys()/.values()/.items()`` only inside *key-producing* functions
  (name matches ``fingerprint``/``*_key``): dict iteration is insertion-
  ordered and thus deterministic, but a cache key derived from it bakes
  the caller's insertion history into the key, which is exactly the class
  of bug the plan-key/memo-key tests exist to catch.

Wrapping the iterable in ``sorted(...)`` — at any depth — satisfies the
rule.  Membership tests, ``len()``, ``sum()``/``min()``/``max()``/``any()``
/``all()`` and set algebra are order-insensitive and never flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, register

#: functions whose names mark them as producing fingerprints or cache keys
KEY_PRODUCER_RE = re.compile(r"(^|_)(fingerprint|key|keys)$|fingerprint", re.IGNORECASE)

#: consumers whose output order follows input order
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "reversed"}

#: order-insensitive reducers: iterating a set through these is fine
_ORDER_FREE_CALLS = {
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "sorted",
    "set",
    "frozenset",
}

_DICT_VIEW_METHODS = {"keys", "values", "items"}


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: both operands sets -> result is a set
        return _is_set_expr(node.left, set_names) and _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in {"union", "intersection", "difference",
                              "symmetric_difference"}:
            return _is_set_expr(node.func.value, set_names)
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEW_METHODS
        and not node.args
        and not node.keywords
    )


def _walk_scope(scope: ast.AST):
    """Yield descendants of ``scope`` without entering nested def/class scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _set_names_in_scope(scope: ast.AST) -> set[str]:
    """Names every assignment of which (in this scope) is a set expression."""
    assigned: dict[str, list[ast.AST]] = {}
    for node in _walk_scope(scope):
        targets: list[ast.expr] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name):
                assigned.setdefault(target.id, []).append(value)
    names: set[str] = set()
    for name, values in assigned.items():
        if values and all(_is_set_expr(v, set()) for v in values):
            names.add(name)
    return names


class _ScopeVisitor(ast.NodeVisitor):
    """Walks one lexical scope; recurses manually into nested functions."""

    def __init__(self, checker: "UnorderedIterationChecker", ctx: FileContext,
                 in_key_producer: bool) -> None:
        self.checker = checker
        self.ctx = ctx
        self.in_key_producer = in_key_producer
        self.set_names: set[str] = set()
        self.findings: list[Finding] = []

    # -- scope handling ----------------------------------------------------

    def run(self, scope: ast.AST) -> list[Finding]:
        self.set_names = _set_names_in_scope(scope)
        for stmt in ast.iter_child_nodes(scope):
            self.visit(stmt)
        return self.findings

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._nested(node, key_producer=self.in_key_producer)

    def _nested(self, node: ast.AST, key_producer: Optional[bool] = None) -> None:
        if key_producer is None:
            key_producer = bool(KEY_PRODUCER_RE.search(getattr(node, "name", "")))
        sub = _ScopeVisitor(self.checker, self.ctx, key_producer)
        self.findings.extend(sub.run(node))

    # -- iteration sites ---------------------------------------------------

    def _check_iterable(self, iterable: ast.AST, site: ast.AST) -> None:
        if _is_set_expr(iterable, self.set_names):
            self.findings.append(
                self.checker.finding(
                    self.ctx,
                    site,
                    "iteration over a set has no deterministic order; "
                    "wrap the iterable in sorted(...)",
                )
            )
        elif self.in_key_producer and _is_dict_view(iterable):
            self.findings.append(
                self.checker.finding(
                    self.ctx,
                    site,
                    "dict iteration inside a key/fingerprint producer bakes "
                    "insertion order into the key; iterate sorted(...) instead",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            if node.args:
                self._check_iterable(node.args[0], node)
        elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            self._check_iterable(node.args[0], node)
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        # *spread into an ordered literal is an ordered consumer too
        self._check_iterable(node.value, node)
        self.generic_visit(node)


@register
class UnorderedIterationChecker(Checker):
    rule = "unordered-iteration"
    description = (
        "iteration over set-typed values (or dict views inside key producers) "
        "without sorted(...)"
    )
    dynamic_backstop = (
        "tests/test_planner.py 3-way equivalence sweep; "
        "tests/test_backends.py byte-identical backend pins"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return _ScopeVisitor(self, ctx, in_key_producer=False).run(ctx.tree)
