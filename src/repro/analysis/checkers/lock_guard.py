"""``unlocked-shared-mutation``: shared mutable state mutates under its lock.

The three-tier cache hierarchy (plan cache → mapping memo → reward table)
is shared process-wide across search workers; each cache class owns a
``threading.Lock`` and every mutation of its bookkeeping must hold it —
the thread backend exercises these paths concurrently, and a single
unguarded ``dict`` write can corrupt the LRU ordering or drop entries.

Two structural rules:

1. **Lock-owning classes.** Any class whose ``__init__`` assigns an
   attribute from ``threading.Lock()``/``RLock()``/``Condition()`` is
   lock-owning.  Its *guarded attributes* are the mutable containers
   assigned in ``__init__`` (dict/list/set literals or ``dict()``/
   ``OrderedDict()``/``WeakKeyDictionary()``/… calls) plus any counters
   (int-literal assignments).  In every method other than ``__init__``
   and pickling dunders, a mutation of a guarded attribute —

   * subscript assignment/deletion (``self._d[k] = v``, ``del self._d[k]``),
   * augmented assignment (``self.hits += 1``),
   * rebinding (``self._d = {}``),
   * a mutating method call (``.update``/``.pop``/``.setdefault``/
     ``.append``/``.add``/``.clear``/``.move_to_end``/``.popitem``/…)

   — must sit lexically inside a ``with self.<lock>:`` block.

2. **Module-level shared globals.** A function that mutates a module-level
   ``ALL_CAPS`` mutable container (dict/list/set literal at module scope)
   must do so inside some ``with <lock>:`` block; truly shared singletons
   in this codebase (``SHARED_PLAN_CACHE`` etc.) encapsulate their lock,
   so a bare global container mutated from functions is a red flag.

Read-only access is never flagged: the checker targets writes, the only
operations whose interleaving can corrupt state given CPython's GIL-atomic
single reads.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, register

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "Counter",
    "deque",
    "WeakKeyDictionary",
    "WeakValueDictionary",
}

_MUTATING_METHODS = {
    "update",
    "pop",
    "popitem",
    "setdefault",
    "clear",
    "append",
    "extend",
    "insert",
    "remove",
    "discard",
    "add",
    "move_to_end",
    "appendleft",
    "popleft",
    "__setitem__",
}


def _call_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _is_lock_value(node: ast.AST) -> bool:
    return _call_name(node) in _LOCK_FACTORIES


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                         ast.SetComp)):
        return True
    return _call_name(node) in _MUTABLE_FACTORIES


def _is_counter_value(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
        and not isinstance(node.value, bool)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<name>`` -> name."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassInfo:
    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.locks: set[str] = set()
        self.guarded: set[str] = set()
        init = next(
            (
                n
                for n in node.body
                if isinstance(n, ast.FunctionDef) and n.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                attr = _self_attr(stmt.targets[0])
                if attr is None:
                    continue
                if _is_lock_value(stmt.value):
                    self.locks.add(attr)
                elif _is_mutable_value(stmt.value) or _is_counter_value(stmt.value):
                    self.guarded.add(attr)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                attr = _self_attr(stmt.target)
                if attr is None:
                    continue
                if _is_lock_value(stmt.value):
                    self.locks.add(attr)
                elif _is_mutable_value(stmt.value) or _is_counter_value(stmt.value):
                    self.guarded.add(attr)


#: methods allowed to touch guarded state without the lock: construction,
#: pickling (runs single-threaded on a private copy), and repr/debug output
_EXEMPT_METHODS = {"__init__", "__getstate__", "__setstate__", "__reduce__",
                   "__repr__", "__del__"}


class _MethodWalker:
    """Tracks ``with self.<lock>`` nesting while scanning one method body."""

    def __init__(self, checker: "LockGuardChecker", ctx: FileContext,
                 info: _ClassInfo, method: ast.FunctionDef) -> None:
        self.checker = checker
        self.ctx = ctx
        self.info = info
        self.method = method
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self._walk(self.method.body, locked=False)
        return self.findings

    # -- lock detection ----------------------------------------------------

    def _is_lock_guard(self, with_node: ast.With) -> bool:
        for item in with_node.items:
            expr = item.context_expr
            attr = _self_attr(expr)
            if attr in self.info.locks:
                return True
            # with self._lock: vs with self._lock.acquire()-style wrappers
            if isinstance(expr, ast.Call):
                attr = _self_attr(expr.func) if isinstance(expr.func, ast.Attribute) \
                    else None
                inner = _self_attr(expr.func.value) if isinstance(
                    expr.func, ast.Attribute
                ) else None
                if inner in self.info.locks:
                    return True
        return False

    # -- mutation detection ------------------------------------------------

    def _mutated_attr(self, node: ast.AST) -> Optional[str]:
        """The guarded ``self.<attr>`` this statement mutates, if any."""
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = self._mutation_target(target)
                if attr is not None:
                    return attr
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return self._mutation_target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = self._mutation_target(target)
                if attr is not None:
                    return attr
        elif isinstance(node, ast.Expr):
            call = node.value
            if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
                if call.func.attr in _MUTATING_METHODS:
                    attr = _self_attr(call.func.value)
                    if attr in self.info.guarded:
                        return attr
        return None

    def _mutation_target(self, target: ast.AST) -> Optional[str]:
        # self.attr = ... (rebinding) — only mutable containers, counters too
        attr = _self_attr(target)
        if attr in self.info.guarded:
            return attr
        # self.attr[k] = ... / del self.attr[k]
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr in self.info.guarded:
                return attr
        return None

    # -- traversal ---------------------------------------------------------

    def _walk(self, body, locked: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                inner = locked or self._is_lock_guard(stmt)
                self._walk(stmt.body, inner)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes escape lexical lock reasoning
            if not locked:
                attr = self._mutated_attr(stmt)
                if attr is not None:
                    self.findings.append(
                        self.checker.finding(
                            self.ctx,
                            stmt,
                            f"mutation of lock-guarded attribute self.{attr} "
                            f"outside a 'with self.{sorted(self.info.locks)[0]}:' "
                            f"block in {self.info.node.name}.{self.method.name}",
                        )
                    )
            # recurse into compound statements, preserving lock state
            for field_body in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field_body, None)
                if sub:
                    self._walk(sub, locked)
            for handler in getattr(stmt, "handlers", ()):
                self._walk(handler.body, locked)


def _module_shared_globals(tree: ast.Module) -> set[str]:
    """ALL_CAPS module-level names bound to bare mutable containers."""
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id.isupper():
                names.add(target.id)
    return names


class _GlobalMutationWalker(ast.NodeVisitor):
    def __init__(self, checker: "LockGuardChecker", ctx: FileContext,
                 shared: set[str]) -> None:
        self.checker = checker
        self.ctx = ctx
        self.shared = shared
        self.findings: list[Finding] = []
        self._with_depth = 0

    def visit_With(self, node: ast.With) -> None:
        self._with_depth += 1
        self.generic_visit(node)
        self._with_depth -= 1

    def _flag(self, node: ast.AST, name: str) -> None:
        if self._with_depth:
            return  # inside some with-block; assume it is the guarding lock
        self.findings.append(
            self.checker.finding(
                self.ctx,
                node,
                f"mutation of module-level shared global {name} outside any "
                "'with <lock>:' block",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ) and target.value.id in self.shared:
                self._flag(node, target.value.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript) and isinstance(
            node.target.value, ast.Name
        ) and node.target.value.id in self.shared:
            self._flag(node, node.target.value.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.shared
        ):
            self._flag(node, func.value.id)
        self.generic_visit(node)


@register
class LockGuardChecker(Checker):
    rule = "unlocked-shared-mutation"
    description = (
        "lock-owning classes mutate guarded attributes outside 'with <lock>:'"
    )
    dynamic_backstop = (
        "tests/test_backends.py thread-backend determinism pins; "
        "tests/test_reward_memo.py concurrent memo equivalence"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(node)
            if not info.locks or not info.guarded:
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                findings.extend(_MethodWalker(self, ctx, info, method).run())
        # module-level ALL_CAPS container mutations outside any lock
        shared = _module_shared_globals(ctx.tree)
        if shared:
            walker = _GlobalMutationWalker(self, ctx, shared)
            # visit only outermost function defs: the walker itself recurses,
            # so visiting nested defs again would duplicate findings
            stack: list[ast.AST] = [ctx.tree]
            while stack:
                scope = stack.pop()
                for child in ast.iter_child_nodes(scope):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        walker.visit(child)
                    elif isinstance(child, ast.ClassDef):
                        stack.append(child)
                    elif not isinstance(child, ast.expr):
                        stack.append(child)
            findings.extend(walker.findings)
        return findings
