"""Built-in checkers; importing this package populates the registry.

Each module registers one rule via :func:`repro.analysis.core.register`:

========================== ==================================================
rule                        guards
========================== ==================================================
``unordered-iteration``     set/dict-view iteration order leaking into results
``cache-key-field``         plan-cache key completeness vs. planner flags
``unlocked-shared-mutation`` lock discipline of shared caches and globals
``unpicklable-worker-state`` process-backend worker-spec pickle safety
``nondeterministic-key``    id()/hash()/env/time values inside keys
``shm-lifecycle``           shared-memory segments released by an owner
``no-wallclock-in-key``     timing values flowing (one hop) into keys
``unbounded-recv``          blocking receives supervised by a deadline
========================== ==================================================
"""

from . import cache_key  # noqa: F401
from . import lock_guard  # noqa: F401
from . import nondet_key  # noqa: F401
from . import pickle_safety  # noqa: F401
from . import shm_lifecycle  # noqa: F401
from . import unbounded_recv  # noqa: F401
from . import unordered_iteration  # noqa: F401
from . import wallclock_key  # noqa: F401
