"""``unbounded-recv``: blocking receives must be supervised by a deadline.

The worker protocols (:mod:`repro.search.backends.process`,
:mod:`repro.service.pool`) are request/reply over pipes.  A bare
``conn.recv()`` on the coordinator side blocks forever when the peer
crashed before sending or hangs mid-computation — the exact wedge the
supervision layer exists to prevent: every coordinator receive must
multiplex the pipe with the worker's process sentinel under a deadline
(:func:`repro.search.backends.process.supervised_recv`).

The rule flags, per enclosing function scope:

* zero-argument ``.recv()`` on any receiver;
* zero-argument ``.get()`` on queue-shaped receivers (name contains
  ``queue``/``inbox``/``jobs``/``tasks``/``results``) — ``dict.get`` and
  friends always pass a key, so they never match;
* zero-argument ``.join()`` on process/thread-shaped receivers — a join
  with a ``timeout`` argument is already bounded.

A scope is *supervised* — and all its receives exempt — when it also calls
``connection.wait(..., timeout=...)`` (or any ``wait`` with a timeout /
second positional argument) or ``.poll(<timeout>)``: those are the two
bounded primitives a correct receive loop is built from.  Worker-side idle
loops whose liveness signal *is* the ``EOFError`` of a dead peer are the
intentional exception; mark them
``# repro: allow-unbounded-recv -- <why>``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, register

#: receivers whose zero-arg ``.get()`` is a blocking queue read
_QUEUEISH_RE = re.compile(r"queue|inbox|jobs|tasks|results", re.IGNORECASE)

#: receivers whose zero-arg ``.join()`` waits on a process or thread
_PROCESSISH_RE = re.compile(r"proc|process|thread|worker", re.IGNORECASE)


def _receiver_hint(func: ast.Attribute) -> str:
    """A best-effort name for the receiver expression (for the heuristics)."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Subscript):
        return _receiver_hint_expr(value.value)
    return ""


def _receiver_hint_expr(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _walk_scope(scope: ast.AST):
    """Yield descendants of ``scope`` without entering nested def scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _is_bounded_wait(node: ast.Call) -> bool:
    """``wait(objects, timeout)`` / ``wait(..., timeout=...)`` in any spelling."""
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name != "wait":
        return False
    if any(kw.arg == "timeout" for kw in node.keywords):
        return True
    return len(node.args) >= 2


def _is_bounded_poll(node: ast.Call) -> bool:
    """``conn.poll(timeout)`` — a poll *with* an argument is a deadline."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "poll"):
        return False
    return bool(node.args) or bool(node.keywords)


def _scope_is_supervised(scope: ast.AST) -> bool:
    for node in _walk_scope(scope):
        if isinstance(node, ast.Call) and (
            _is_bounded_wait(node) or _is_bounded_poll(node)
        ):
            return True
    return False


@register
class UnboundedRecvChecker(Checker):
    rule = "unbounded-recv"
    description = (
        "blocking recv()/queue-get()/process-join() without a deadline: "
        "supervise via connection.wait(..., timeout=...) or poll(timeout), "
        "or justify the EOF-as-liveness pattern with a pragma"
    )
    dynamic_backstop = (
        "tests/test_faults.py fault matrix (killed and hung workers must "
        "surface as WorkerFailure under the round deadline, not wedge the "
        "coordinator)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        self._visit_scope(ctx, ctx.tree, findings)
        return findings

    def _visit_scope(
        self, ctx: FileContext, scope: ast.AST, findings: list[Finding]
    ) -> None:
        supervised = _scope_is_supervised(scope)
        for node in _walk_scope(scope):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                self._visit_scope(ctx, node, findings)
            elif isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._visit_scope(ctx, child, findings)
            elif not supervised and isinstance(node, ast.Call):
                finding = self._check_call(ctx, node)
                if finding is not None:
                    findings.append(finding)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Optional[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if node.args or node.keywords:
            return None
        hint = _receiver_hint(func)
        if func.attr == "recv":
            return self.finding(
                ctx,
                node,
                "bare recv() blocks forever on a crashed or hung peer; "
                "use supervised_recv / connection.wait with a timeout",
            )
        if func.attr == "get" and _QUEUEISH_RE.search(hint):
            return self.finding(
                ctx,
                node,
                f"{hint}.get() without a timeout blocks forever when no "
                "producer is left; pass a timeout or supervise the wait",
            )
        if func.attr == "join" and _PROCESSISH_RE.search(hint):
            return self.finding(
                ctx,
                node,
                f"{hint}.join() without a timeout can wait forever on a "
                "wedged process; pass timeout= and handle the survivor",
            )
        return None
