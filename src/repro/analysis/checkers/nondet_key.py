"""``nondeterministic-key``: no process-local values inside keys/fingerprints.

Fingerprints and cache keys outlive the Python process: the reward table is
merged across worker processes, baseline files record them, and the
byte-identical-backends contract requires worker *w* on the thread backend
to derive the same keys as worker *w* in a child process.  A key containing

* ``id(...)`` — an address, unique to one process and recycled within it,
* ``hash(...)`` — salted per process for ``str``/``bytes`` under
  ``PYTHONHASHSEED`` randomization,
* ``os.environ`` / ``os.getenv`` / ``os.getpid`` / platform probes,
* wall-clock (``time.*``, ``datetime.now``/``utcnow``/``today``),
* fresh randomness (``random.*``, ``uuid.*``),
* default ``repr()``/``str()`` of objects (embeds ``0x<address>``)

is only meaningful inside the process (and seed) that minted it.  The rule
fires on those calls in *key contexts*:

* anywhere inside a function whose name marks it as a key producer
  (``fingerprint``/``*_key`` — same convention as ``unordered-iteration``);
* on the right-hand side of an assignment to a name matching
  ``key``/``*_key``/``fingerprint*``, in any function.

Identity-keyed memo entries that deliberately pin their referents alive
(e.g. the widget-cover DP tables) are the intended use of the suppression
pragma: the justification lives next to the ``# repro: allow-...`` line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, register
from .unordered_iteration import KEY_PRODUCER_RE

_KEY_TARGET_RE = re.compile(r"(^|_)(key|keys)$|^fingerprint|fingerprint$",
                            re.IGNORECASE)

_BANNED_BARE = {"id", "hash"}

#: module attr calls that are process- or time-dependent
_BANNED_QUALIFIED = {
    ("os", "getenv"),
    ("os", "getpid"),
    ("os", "urandom"),
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("random", "random"),
    ("random", "randint"),
    ("random", "randrange"),
    ("random", "getrandbits"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}


def _banned_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in _BANNED_BARE:
        return f"{func.id}(...)"
    if isinstance(func, ast.Attribute):
        attr = func.attr
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else None
        if (base_name, attr) in _BANNED_QUALIFIED:
            return f"{base_name}.{attr}(...)"
        # datetime.datetime.now() / random.Random().random() style chains
        if attr in {"now", "utcnow", "today"} and base_name in {"datetime", "date"}:
            return f"{base_name}.{attr}(...)"
    return None


def _banned_environ(node: ast.AST) -> Optional[str]:
    # os.environ[...] / os.environ.get(...)
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    ):
        return "os.environ"
    return None


def _scan(node: ast.AST) -> list[tuple[ast.AST, str]]:
    """(site, what) for every banned construct inside ``node``."""
    hits: list[tuple[ast.AST, str]] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            what = _banned_call(sub)
            if what is not None:
                hits.append((sub, what))
        what = _banned_environ(sub)
        if what is not None:
            hits.append((sub, what))
    return hits


class _Visitor(ast.NodeVisitor):
    def __init__(self, checker: "NondeterministicKeyChecker",
                 ctx: FileContext) -> None:
        self.checker = checker
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._producer_depth = 0
        self._flagged: set[int] = set()

    def _flag(self, site: ast.AST, what: str, where: str) -> None:
        if id(site) in self._flagged:
            return
        self._flagged.add(id(site))
        self.findings.append(
            self.checker.finding(
                self.ctx,
                site,
                f"{what} is process-local and lands in {where}; keys must be "
                "derivable from content alone (serialize structure instead)",
            )
        )

    def _function(self, node) -> None:
        producer = bool(KEY_PRODUCER_RE.search(node.name))
        self._producer_depth += producer
        if producer:
            for site, what in _scan(node):
                self._flag(site, what, f"key producer {node.name}()")
        self.generic_visit(node)
        self._producer_depth -= producer

    visit_FunctionDef = _function
    visit_AsyncFunctionDef = _function

    def visit_Assign(self, node: ast.Assign) -> None:
        key_targets = [
            t.id
            for t in node.targets
            if isinstance(t, ast.Name) and _KEY_TARGET_RE.search(t.id)
        ]
        if key_targets:
            for site, what in _scan(node.value):
                self._flag(site, what, f"assignment to {key_targets[0]!r}")
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        # returns inside key producers are already covered by the scan above
        self.generic_visit(node)


@register
class NondeterministicKeyChecker(Checker):
    rule = "nondeterministic-key"
    description = (
        "id()/hash()/env/time/random values inside fingerprints or cache keys"
    )
    dynamic_backstop = (
        "tests/test_backends.py serial/thread/process byte-identity; "
        "tests/test_reward_memo.py memo-on/off interface identity"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings
