"""``unpicklable-worker-state``: the process backend's specs must pickle.

``ProcessBackend`` ships a :class:`repro.core.pipeline.PipelineWorkerSpec`
to every worker process; if the spec — or anything reachable from it —
grows a lambda, a local closure, a ``threading.Lock``, a weakref container,
an open file handle, or a live generator, pickling fails at search time (or
worse: silently falls back to the serial backend, discarding the requested
parallelism).  The dynamic test only catches this for the catalogues the
suite happens to build; this checker walks the *static* reference graph.

Mechanics:

* **Roots** are classes whose name ends in ``WorkerSpec`` (the protocol and
  its implementations).
* From each root the checker traverses to other project classes through
  dataclass field annotations and ``self.<attr> = ClassName(...)``
  constructor assignments, resolving names through each file's imports.
* In every visited class, instance attributes assigned an unpicklable
  value are flagged:

  - ``self.x = lambda ...`` and ``self.x = <locally defined function>``
    (closures do not pickle),
  - ``self.x = threading.Lock()/RLock()/Condition()/Event()``,
  - ``self.x = weakref.ref(...)/WeakKeyDictionary()/WeakValueDictionary()``,
  - ``self.x = open(...)``,
  - ``self.x = (... for ...)`` (generator expressions).

* Attributes that ``__getstate__`` removes (``state.pop("x")``,
  ``state["x"] = None``, ``del state["x"]``) are exempt — that is exactly
  the sanctioned way to carry build-time-only state, and it is how
  ``PipelineWorkerSpec.setup`` stays out of the pickle stream.

``field(default_factory=lambda: ...)`` is *not* flagged: the factory runs
at construction time and only its (picklable) result lands on instances.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Checker, FileContext, Finding, Project, register

ROOT_SUFFIX = "WorkerSpec"

_LOCK_NAMES = {"Lock", "RLock", "Condition", "Event", "Semaphore",
               "BoundedSemaphore", "Barrier"}
_WEAK_NAMES = {"ref", "proxy", "WeakKeyDictionary", "WeakValueDictionary",
               "WeakSet", "WeakMethod"}


def _imports_of(ctx: FileContext, module: Optional[str]) -> dict[str, str]:
    """Local name -> dotted target for this file's imports."""
    out: dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if module and "." in module else (module or "")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # resolve `from ..x import y` against this file's package
                parts = package.split(".") if package else []
                if node.level - 1:
                    parts = parts[: -(node.level - 1)] if node.level - 1 <= len(parts) else []
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                target = f"{base}.{alias.name}" if base else alias.name
                out[alias.asname or alias.name] = target
    return out


class _ClassIndex:
    """Project-wide (module, class name) index with import-aware resolution."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: dict[str, list[tuple[FileContext, ast.ClassDef]]] = {}
        self.modules: dict[int, Optional[str]] = {}
        for ctx in project:
            from ..core import _module_name

            module = _module_name(ctx.path)
            self.modules[id(ctx)] = module
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, []).append((ctx, node))

    def resolve(
        self, ctx: FileContext, name: str
    ) -> Optional[tuple[FileContext, ast.ClassDef]]:
        """Resolve a class name used in ``ctx`` to its project definition."""
        candidates = self.classes.get(name)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        # prefer the import target's module when the name is ambiguous
        imports = _imports_of(ctx, self.modules[id(ctx)])
        target = imports.get(name)
        if target:
            target_module = target.rsplit(".", 1)[0]
            for cand_ctx, cand_cls in candidates:
                if (self.modules[id(cand_ctx)] or "").endswith(target_module):
                    return cand_ctx, cand_cls
        # fall back to a definition in the same file, then the first one
        for cand_ctx, cand_cls in candidates:
            if cand_ctx is ctx:
                return cand_ctx, cand_cls
        return candidates[0]


def _annotation_names(node: ast.AST) -> set[str]:
    """Class-name identifiers inside an annotation (Optional[X], list[X], …)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # string annotation: take the head identifier(s)
            for token in sub.value.replace("[", " ").replace("]", " ").replace(
                ",", " "
            ).split():
                out.add(token.split(".")[-1].strip("\"'"))
    return out


def _getstate_exempt(cls: ast.ClassDef) -> set[str]:
    """Attribute names __getstate__ removes from the pickle stream."""
    getstate = next(
        (
            n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__getstate__"
        ),
        None,
    )
    if getstate is None:
        return set()
    exempt: set[str] = set()
    for node in ast.walk(getstate):
        # state["attr"] = None   /   del state["attr"]
        if isinstance(node, (ast.Assign, ast.Delete)):
            targets = node.targets
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    exempt.add(target.slice.value)
        # state.pop("attr")
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            exempt.add(node.args[0].value)
    return exempt


def _local_function_names(scope: ast.FunctionDef) -> set[str]:
    return {
        n.name
        for n in ast.walk(scope)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not scope
    }


def _unpicklable_reason(value: ast.AST, local_defs: set[str]) -> Optional[str]:
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(value, ast.Name) and value.id in local_defs:
        return f"the local closure {value.id!r}"
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _LOCK_NAMES:
            return f"a threading.{name}"
        if name in _WEAK_NAMES:
            return f"a weakref {name}"
        if name == "open":
            return "an open file handle"
    return None


@register
class PickleSafetyChecker(Checker):
    rule = "unpicklable-worker-state"
    description = (
        "classes reachable from *WorkerSpec roots must avoid lambdas, local "
        "closures, locks, weakrefs, files, and generators"
    )
    dynamic_backstop = (
        "tests/test_backends.py process-backend determinism pins; "
        "core.pipeline._process_spec_for pickle.dumps probe"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        index = _ClassIndex(project)
        roots = [
            (ctx, cls)
            for name, defs in sorted(index.classes.items())
            if name.endswith(ROOT_SUFFIX)
            for ctx, cls in defs
        ]
        if not roots:
            return []

        findings: list[Finding] = []
        visited: set[tuple[int, str]] = set()
        queue = list(roots)
        while queue:
            ctx, cls = queue.pop(0)
            tag = (id(ctx), cls.name)
            if tag in visited:
                continue
            visited.add(tag)
            exempt = _getstate_exempt(cls)
            referenced: list[str] = []

            # dataclass-style field annotations
            for stmt in cls.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.target.id in exempt:
                        continue
                    referenced.extend(sorted(_annotation_names(stmt.annotation)))
                    if stmt.value is not None:
                        reason = _unpicklable_reason(stmt.value, set())
                        if reason is not None:
                            findings.append(
                                self.finding(
                                    ctx,
                                    stmt,
                                    f"{cls.name}.{stmt.target.id} defaults to "
                                    f"{reason}, which cannot be pickled into a "
                                    "worker process",
                                )
                            )

            # instance attributes assigned in methods
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                local_defs = _local_function_names(method)
                for node in ast.walk(method):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        if target.attr in exempt:
                            continue
                        reason = _unpicklable_reason(node.value, local_defs)
                        if reason is not None:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"{cls.name}.{target.attr} holds {reason}, "
                                    "which cannot be pickled into a worker "
                                    "process (exempt it in __getstate__ or "
                                    "restructure)",
                                )
                            )
                        if isinstance(node.value, ast.Call) and isinstance(
                            node.value.func, ast.Name
                        ):
                            referenced.append(node.value.func.id)

            for name in referenced:
                resolved = index.resolve(ctx, name)
                if resolved is not None and (
                    id(resolved[0]),
                    resolved[1].name,
                ) not in visited:
                    queue.append(resolved)
        return findings
