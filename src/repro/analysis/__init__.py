"""repro.analysis — static enforcement of the repo's runtime invariants.

The dynamic test suite proves the determinism/caching/concurrency
invariants *for the inputs it runs*; this package proves their structural
preconditions for *all* code paths: a visitor-based AST lint framework
(:mod:`~repro.analysis.core`) with per-file and whole-project passes, a
checker registry, ``# repro: allow-<rule>`` suppression pragmas, a
baseline file (:mod:`~repro.analysis.baseline`), and a CLI
(:mod:`~repro.analysis.cli`, also installed as ``repro-analyze``) with
``text``/``json``/``github`` output.

Public API: :func:`analyze_source` for one snippet, :func:`build_project`
+ :func:`run_checkers` for file sets, :data:`REGISTRY`/:func:`register`
for custom checkers, and :class:`Baseline` for the accepted-findings file.
"""

from .baseline import Baseline
from .core import (
    AnalysisResult,
    Checker,
    FileContext,
    Finding,
    Project,
    REGISTRY,
    all_checkers,
    analyze_source,
    build_project,
    project_from_sources,
    register,
    run_checkers,
)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Checker",
    "FileContext",
    "Finding",
    "Project",
    "REGISTRY",
    "all_checkers",
    "analyze_source",
    "build_project",
    "project_from_sources",
    "register",
    "run_checkers",
]
