"""``python -m repro.analysis`` / ``repro-analyze`` — the analyzer CLI.

Exit-code contract (stable; CI and pre-commit hooks rely on it):

* ``0`` — no unsuppressed, unbaselined findings (clean run),
* ``1`` — at least one new finding,
* ``2`` — usage or parse error (bad rule name, unreadable baseline, …).

Output formats (``--format``):

* ``text`` (default) — ``path:line:col: rule: message`` per finding plus a
  summary line; human- and editor-friendly.
* ``json`` — a single JSON object with ``findings``/``suppressed``/
  ``baselined`` arrays and counts; machine-readable for tooling.
* ``github`` — GitHub Actions workflow annotations
  (``::error file=...,line=...::message``), so findings surface inline on
  the PR diff in the ``static-analysis`` CI gate.

Suppression and baseline workflow: annotate intentional violations in place
with ``# repro: allow-<rule> -- why`` (same line or the line above); park
legacy findings with ``--write-baseline`` and shrink the file over time —
``--prune-baseline`` rewrites it dropping entries that no longer match.
Run ``--list-rules`` to see every rule and the dynamic test backing it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .baseline import DEFAULT_BASELINE, Baseline
from .core import (
    AnalysisResult,
    Finding,
    all_checkers,
    build_project,
    run_checkers,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _github_escape(text: str) -> str:
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _emit_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding],
    baselined: Sequence[Finding],
    files_checked: int,
    out,
) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    summary = (
        f"{len(findings)} finding(s), {len(suppressed)} suppressed, "
        f"{len(baselined)} baselined across {files_checked} file(s)"
    )
    print(summary, file=out)


def _emit_json(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding],
    baselined: Sequence[Finding],
    files_checked: int,
    out,
) -> None:
    def encode(items: Sequence[Finding]) -> list[dict]:
        return [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in items
        ]

    payload = {
        "findings": encode(findings),
        "suppressed": encode(suppressed),
        "baselined": encode(baselined),
        "files_checked": files_checked,
        "counts": {
            "findings": len(findings),
            "suppressed": len(suppressed),
            "baselined": len(baselined),
        },
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def _emit_github(findings: Sequence[Finding], out) -> None:
    for f in findings:
        print(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title=repro.analysis {f.rule}::{_github_escape(f.message)}",
            file=out,
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Static analysis enforcing this repo's determinism, cache-key, "
            "and concurrency invariants."
        ),
        epilog=(
            "suppress a finding in place with '# repro: allow-<rule>' on the "
            "offending line (or the line above); park legacy findings with "
            "--write-baseline and prune them as they are fixed. "
            "Exit codes: 0 clean, 1 findings, 2 usage/parse error."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to analyze (default: src tests)")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text", help="output format (default: text)")
    parser.add_argument("--select", action="append", metavar="RULE",
                        help="run only these rule(s); repeatable")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline dropping stale entries")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and their dynamic backstops")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    try:
        checkers = all_checkers(args.select)
    except KeyError as exc:
        print(f"repro-analyze: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR

    if args.list_rules:
        for checker in checkers:
            print(f"{checker.rule}: {checker.description}", file=out)
            if checker.dynamic_backstop:
                print(f"    backstop: {checker.dynamic_backstop}", file=out)
        return EXIT_CLEAN

    project, parse_errors = build_project(args.paths)
    if not project.files and not parse_errors:
        print("repro-analyze: no Python files found under: "
              + " ".join(args.paths), file=sys.stderr)
        return EXIT_ERROR

    result: AnalysisResult = run_checkers(project, checkers)
    findings = list(result.findings)

    try:
        baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    except (ValueError, OSError) as exc:
        print(f"repro-analyze: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return EXIT_ERROR

    if args.write_baseline:
        Baseline.from_findings(project, findings).save(args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}", file=out)
        return EXIT_CLEAN

    new, baselined = baseline.split(project, findings)
    new = sorted(parse_errors, key=Finding.sort_key) + new

    if args.prune_baseline and not args.no_baseline:
        stale = baseline.stale_entries(project, findings)
        if stale:
            keep = [e for e in baseline.entries if e not in stale]
            Baseline(keep).save(args.baseline)
            print(f"pruned {len(stale)} stale baseline entr(ies)", file=out)

    if args.format == "json":
        _emit_json(new, result.suppressed, baselined, result.files_checked, out)
    elif args.format == "github":
        _emit_github(new, out)
        print(f"{len(new)} finding(s), {len(baselined)} baselined", file=out)
    else:
        _emit_text(new, result.suppressed, baselined, result.files_checked, out)

    return EXIT_FINDINGS if new else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
