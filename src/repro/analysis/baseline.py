"""Baseline files: accepted pre-existing findings, keyed line-drift-proof.

A baseline lets the analyzer be adopted on a codebase with known,
not-yet-fixed findings without turning the CI gate red: every finding that
matches a baseline entry is reported as *baselined* and does not affect the
exit code.  New findings — anything not in the baseline — still fail.

Entries deliberately do **not** record line numbers: a finding is matched by
``(rule, path, stripped source line text)``, so unrelated edits above a
baselined site do not invalidate it, while any edit to the offending line
itself (including fixing it) drops the match.  Stale entries — baselined
findings that no longer occur — are reported by ``--prune-baseline`` so the
file only ever shrinks toward zero.

The file format is sorted, indented JSON so diffs review cleanly::

    {"version": 1, "entries": [{"rule": ..., "path": ..., "context": ...}]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from .core import Finding, Project

DEFAULT_BASELINE = ".repro-analysis-baseline.json"


def _context_for(project: Project, finding: Finding) -> str:
    ctx = project.file(finding.path)
    if ctx is None or not (1 <= finding.line <= len(ctx.lines)):
        return ""
    return ctx.lines[finding.line - 1].strip()


def _entry(project: Project, finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "context": _context_for(project, finding),
    }


def _entry_key(entry: dict) -> tuple:
    return (entry.get("rule", ""), entry.get("path", ""), entry.get("context", ""))


class Baseline:
    """An accepted-findings set, matched by (rule, path, line text)."""

    def __init__(self, entries: Optional[Sequence[dict]] = None) -> None:
        self.entries = [dict(e) for e in entries or ()]
        self._index = {_entry_key(e) for e in self.entries}

    @classmethod
    def load(cls, path: str) -> "Baseline":
        file = Path(path)
        if not file.exists():
            return cls()
        data = json.loads(file.read_text())
        return cls(data.get("entries", ()))

    def save(self, path: str) -> None:
        payload = {
            "version": 1,
            "entries": sorted(self.entries, key=_entry_key),
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def matches(self, project: Project, finding: Finding) -> bool:
        return _entry_key(_entry(project, finding)) in self._index

    def split(
        self, project: Project, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """``(new, baselined)`` partition of ``findings``."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            (old if self.matches(project, finding) else new).append(finding)
        return new, old

    def stale_entries(
        self, project: Project, findings: Sequence[Finding]
    ) -> list[dict]:
        """Baseline entries no current finding matches (candidates to prune)."""
        live = {_entry_key(_entry(project, f)) for f in findings}
        return [e for e in self.entries if _entry_key(e) not in live]

    @classmethod
    def from_findings(
        cls, project: Project, findings: Sequence[Finding]
    ) -> "Baseline":
        seen: dict[tuple, dict] = {}
        for finding in findings:
            entry = _entry(project, finding)
            seen.setdefault(_entry_key(entry), entry)
        return cls(list(seen.values()))
