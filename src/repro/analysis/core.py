"""The lint framework: findings, file/project contexts, registry, driver.

The analyzer is a thin two-phase driver over Python's :mod:`ast`:

1. every target file is parsed once into a :class:`FileContext` (source,
   AST, and the ``# repro: allow-<rule>`` suppression pragmas it carries);
2. *file checkers* walk each context independently, while *project
   checkers* receive the whole :class:`Project` and cross-reference
   definitions between files (e.g. the plan-cache key against the
   executor's planner flags).

Checkers subclass :class:`Checker` and register themselves with
:func:`register`; the CLI and the test suite both drive them through
:func:`run_checkers`.

Suppression pragmas
-------------------

A finding on line *N* is suppressed when line *N* — or the line directly
above it, for statements too long to carry a trailing comment — contains::

    # repro: allow-<rule-name>[ -- justification]

Several rules may be allowed at once (``# repro: allow-a allow-b``), and
``allow-all`` suppresses every rule on that line.  Suppressions are meant
for *intentional* violations whose justification lives in adjacent code
comments; drive-by noise belongs in the baseline file instead (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence

#: ``# repro: allow-<rule>`` — the pragma marker scanned for on each line.
_PRAGMA_RE = re.compile(r"#\s*repro:\s*((?:allow-[A-Za-z0-9_-]+\s*)+)")
_ALLOW_RE = re.compile(r"allow-([A-Za-z0-9_-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class FileContext:
    """One parsed target file plus its suppression pragmas."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: line number -> set of rule names allowed on that line
        self.allowed: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                rules = set(_ALLOW_RE.findall(match.group(1)))
                self.allowed[lineno] = rules

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is allowed on ``line`` or the line above it."""
        for candidate in (line, line - 1):
            rules = self.allowed.get(candidate)
            if rules and (rule in rules or "all" in rules):
                return True
        return False


class Project:
    """All parsed files of one analyzer run, addressable by module path."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)
        self._by_path = {ctx.path: ctx for ctx in self.files}
        self._by_module: dict[str, FileContext] = {}
        for ctx in self.files:
            module = _module_name(ctx.path)
            if module is not None:
                self._by_module[module] = ctx

    def file(self, path: str) -> Optional[FileContext]:
        return self._by_path.get(path)

    def module(self, dotted: str) -> Optional[FileContext]:
        """Look up a file by (suffix of) its dotted module path."""
        ctx = self._by_module.get(dotted)
        if ctx is not None:
            return ctx
        for module, candidate in sorted(self._by_module.items()):
            if module.endswith("." + dotted) or module == dotted:
                return candidate
        return None

    def __iter__(self) -> Iterator[FileContext]:
        return iter(self.files)


def _module_name(path: str) -> Optional[str]:
    """``src/repro/database/plancache.py`` -> ``repro.database.plancache``."""
    parts = Path(path).with_suffix("").parts
    if not parts:
        return None
    # strip leading non-package segments (src/, absolute prefixes)
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    dotted = ".".join(parts)
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted or None


class Checker:
    """Base class: subclasses set ``rule``/``description`` and override one hook.

    ``check_file`` runs once per :class:`FileContext`; ``check_project`` runs
    once per :class:`Project` after every file parsed.  A checker may
    implement either or both.
    """

    rule: str = ""
    description: str = ""
    #: the dynamic (test-suite) counterpart backing this static rule; shown
    #: by ``--list-rules`` and in the ARCHITECTURE invariants table
    dynamic_backstop: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    # -- helpers shared by the concrete checkers ---------------------------

    def finding(self, ctx_or_path, node_or_line, message: str) -> Finding:
        if isinstance(ctx_or_path, FileContext):
            path = ctx_or_path.path
        else:
            path = str(ctx_or_path)
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0) + 1
        else:
            line, col = int(node_or_line), 1
        return Finding(rule=self.rule, path=path, line=line, col=col, message=message)


#: rule name -> checker factory, in registration order
REGISTRY: dict[str, Callable[[], Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} has no rule name")
    if cls.rule in REGISTRY:
        raise ValueError(f"duplicate checker rule {cls.rule!r}")
    REGISTRY[cls.rule] = cls  # repro: allow-unlocked-shared-mutation -- import-time registration
    return cls


def all_checkers(select: Optional[Sequence[str]] = None) -> list[Checker]:
    """Instantiate registered checkers, optionally restricted to ``select``."""
    # importing the package registers the built-in checkers exactly once
    from . import checkers as _checkers  # noqa: F401

    names = list(REGISTRY) if not select else list(select)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return [REGISTRY[name]() for name in names]


@dataclass
class AnalysisResult:
    """Findings of one run, split by suppression state."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


def collect_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted so findings — and therefore baseline files and CI output — are
    stable regardless of filesystem enumeration order.
    """
    out: set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(str(p) for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(str(path))
    return sorted(out)


def build_project(paths: Sequence[str]) -> tuple[Project, list[Finding]]:
    """Parse every target file; syntax errors become ``parse-error`` findings."""
    contexts: list[FileContext] = []
    errors: list[Finding] = []
    for path in collect_files(paths):
        try:
            source = Path(path).read_text()
            contexts.append(FileContext(path, source))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=int(line),
                    col=1,
                    message=f"could not parse file: {exc}",
                )
            )
    return Project(contexts), errors


def project_from_sources(sources: dict[str, str]) -> Project:
    """A project over in-memory ``{path: source}`` snippets (test fixtures)."""
    return Project([FileContext(path, src) for path, src in sources.items()])


def run_checkers(
    project: Project, checkers: Optional[Sequence[Checker]] = None
) -> AnalysisResult:
    """Run file and project checkers over ``project``, applying pragmas."""
    active = list(checkers) if checkers is not None else all_checkers()
    result = AnalysisResult(files_checked=len(project.files))
    raw: list[Finding] = []
    for checker in active:
        for ctx in project:
            raw.extend(checker.check_file(ctx))
        raw.extend(checker.check_project(project))
    for finding in sorted(raw, key=Finding.sort_key):
        ctx = project.file(finding.path)
        if ctx is not None and ctx.is_suppressed(finding.rule, finding.line):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def analyze_source(
    source: str, path: str = "<snippet>", select: Optional[Sequence[str]] = None
) -> AnalysisResult:
    """Analyze one in-memory snippet (the fixture-test entry point)."""
    project = project_from_sources({path: source})
    return run_checkers(project, all_checkers(select))
