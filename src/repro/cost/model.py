"""Interface cost model ``C(I, Q) = CU(I, Q) + CL(I)`` (paper Section 5).

Usability cost ``CU`` follows SUPPLE: the time to manipulate each widget or
visualization interaction needed to express the input query sequence
(``Cm``), plus the Fitts'-law navigation time between those elements
(``Cnav``).  The layout term ``CL`` penalises interfaces that exceed an
optional maximum width/height.

Manipulation cost of a widget is the second-order polynomial
``a0 + a1 |w.d| + a2 |w.d|^2`` over the widget's option-domain size;
visualization interactions use low constants so the search prefers them
(paper: "sets visualization interaction costs to low constants").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..interface.spec import (
    AppliedInteraction,
    AppliedWidget,
    CostBreakdown,
    Interface,
    Mapping,
)
from ..sqlparser.ast_nodes import Node
from .fitts import centroid_distance, fitts_time

#: Widget manipulation-cost polynomial coefficients, fit to the widget
#: interaction traces used by the paper's prototype (second-order form).
WIDGET_A0 = 1.0
WIDGET_A1 = 0.12
WIDGET_A2 = 0.008

#: Default layout penalty coefficient (the paper's α).
LAYOUT_ALPHA = 0.5


@dataclass
class CostModelConfig:
    """Tunable constants of the cost model."""

    a0: float = WIDGET_A0
    a1: float = WIDGET_A1
    a2: float = WIDGET_A2
    alpha: float = LAYOUT_ALPHA
    max_width: Optional[float] = None
    max_height: Optional[float] = None


class CostModel:
    """Estimates interface cost for a given input query sequence."""

    def __init__(
        self,
        queries: Sequence[Node],
        config: Optional[CostModelConfig] = None,
    ) -> None:
        self.queries = list(queries)
        self.config = config or CostModelConfig()
        self._query_fps = [q.fingerprint() for q in self.queries]
        #: per-Difftree cache of ({query fingerprint: per-node binding params},
        #: ordered choice-node ids); keyed by the tree's structural fingerprint
        #: plus its choice-node ids, so equivalent trees across candidate
        #: interfaces share the (expensive) derivation work
        self._tree_plans: dict[tuple, tuple[dict, list[int]]] = {}

    def _tree_plan(self, tree) -> tuple[dict, list[int]]:
        """(query fingerprint → per-node params or None, ordered node ids)."""
        node_ids = [n.node_id for n in tree.choice_nodes()]
        key = (tree.fingerprint(), tuple(node_ids))
        if key in self._tree_plans:
            return self._tree_plans[key]
        plan: dict[str, Optional[dict[int, tuple]]] = {}
        for q, derivation in zip(tree.queries, tree.derivations()):
            fp = q.fingerprint()
            if derivation is None:
                plan.setdefault(fp, None)
                continue
            params: dict[int, tuple] = {}
            for binding in derivation:
                params[binding.node_id] = params.get(binding.node_id, tuple()) + (
                    binding.param,
                )
            plan[fp] = params
        self._tree_plans[key] = (plan, node_ids)
        return self._tree_plans[key]

    # -- per-element costs -------------------------------------------------------

    def widget_manipulation_cost(self, widget: AppliedWidget) -> float:
        d = widget.candidate.domain_size
        cfg = self.config
        # each widget type carries a base cost (typing in a textbox is slower
        # than clicking a radio button); the polynomial adds the option-domain
        # dependent term from SUPPLE
        base = getattr(widget.candidate.widget, "base_cost", cfg.a0)
        return base + cfg.a1 * d + cfg.a2 * d * d

    def interaction_manipulation_cost(self, interaction: AppliedInteraction) -> float:
        return interaction.candidate.cost

    def mapping_cost(self, mapping: Mapping) -> float:
        if isinstance(mapping, AppliedWidget):
            return self.widget_manipulation_cost(mapping)
        return self.interaction_manipulation_cost(mapping)

    # -- manipulation sequences ------------------------------------------------------

    def query_plan(
        self, interface: Interface
    ) -> list[tuple[Optional[int], list[Mapping]]]:
        """Per input query: the view that expresses it and the mappings the
        user must manipulate (in Difftree depth-first order), tracking binding
        state across the sequence.

        The view index is included because *expressing* a query with a static
        chart still requires the user to navigate to that chart — this is what
        makes a wall of static charts costlier than one interactive view.
        """
        # current parameter per choice node (None = untouched default)
        current: dict[int, tuple] = {}
        plan: list[tuple[Optional[int], list[Mapping]]] = []
        view_plans = [self._tree_plan(view.tree) for view in interface.views]

        for query_fp in self._query_fps:
            manipulated: list[Mapping] = []
            view_for_query: Optional[int] = None
            for view_index, (tree_plan, ordered_nodes) in enumerate(view_plans):
                params = tree_plan.get(query_fp)
                if params is None:
                    continue
                view_for_query = view_index
                changed_nodes = {
                    node_id
                    for node_id, value in params.items()
                    if current.get(node_id) != value
                }
                current.update(params)
                seen_mappings: list[Mapping] = []
                for node_id in ordered_nodes:  # depth-first traversal order
                    if node_id not in changed_nodes:
                        continue
                    mapping = interface.mapping_for(node_id)
                    if mapping is None or any(mapping is m for m in seen_mappings):
                        continue
                    seen_mappings.append(mapping)
                manipulated.extend(seen_mappings)
                break
            plan.append((view_for_query, manipulated))
        return plan

    def manipulation_sequence(self, interface: Interface) -> list[list[Mapping]]:
        """Per input query, the mappings the user must manipulate."""
        return [manipulated for _, manipulated in self.query_plan(interface)]

    # -- cost terms -------------------------------------------------------------------

    def manipulation_cost(
        self, interface: Interface, penalize_uncovered: bool = True
    ) -> float:
        """``Cm``: total manipulation time to express the query sequence.

        ``penalize_uncovered=False`` is used by Algorithm 1's pruning bound,
        where the uncovered choice nodes are accounted for separately through
        the ``G(N)`` completion estimate.
        """
        total = 0.0
        uncovered_penalty = 0.0
        if penalize_uncovered:
            ids = interface.choice_node_ids()
            covered = interface.covered_choice_node_ids()
            # an incomplete interface cannot express the queries: penalise hard
            uncovered_penalty += 50.0 * len(ids - covered)

        for view_index, manipulated in self.query_plan(interface):
            if view_index is None:
                # an input query no view can express: the interface fails its
                # core guarantee, so the penalty dominates any layout savings
                uncovered_penalty += 50.0
            for mapping in manipulated:
                total += self.mapping_cost(mapping)
        # when there are no interactions at all (static interface), reading
        # several charts still carries a small cost per extra view
        total += 0.2 * max(0, interface.num_views() - 1)
        return total + uncovered_penalty

    def navigation_cost(self, interface: Interface) -> float:
        """``Cnav``: Fitts'-law time to move between the elements visited while
        expressing the query sequence.

        For each query the user first navigates to the view that renders it
        (reading a static chart is not free when it sits far down the page)
        and then to every widget / interaction they must manipulate, in
        Difftree depth-first order.
        """
        if interface.layout is None:
            return 0.0
        total = 0.0
        previous_leaf = None
        for view_index, manipulated in self.query_plan(interface):
            stops = []
            if view_index is not None:
                view_leaf = interface.layout.leaf_for(
                    interface.views[view_index].vis
                )
                if view_leaf is not None:
                    stops.append(view_leaf)
            for mapping in manipulated:
                leaf = self._leaf_for_mapping(interface, mapping)
                if leaf is not None:
                    stops.append(leaf)
            for leaf in stops:
                if previous_leaf is not None and previous_leaf is not leaf:
                    distance = centroid_distance(
                        previous_leaf.centroid, leaf.centroid
                    )
                    total += fitts_time(distance, leaf.min_extent())
                previous_leaf = leaf
        return total

    def _leaf_for_mapping(self, interface: Interface, mapping: Mapping):
        if interface.layout is None:
            return None
        if isinstance(mapping, AppliedWidget):
            return interface.layout.leaf_for(mapping.candidate)
        # a visualization interaction is performed on its source chart
        source_view = interface.views[mapping.source_view_index]
        return interface.layout.leaf_for(source_view.vis)

    def layout_penalty(self, interface: Interface) -> float:
        """``CL``: penalty when the interface exceeds the desired size."""
        cfg = self.config
        if interface.layout is None:
            return 0.0
        if cfg.max_width is None and cfg.max_height is None:
            return 0.0
        width, height = interface.layout.size()
        excess = 0.0
        if cfg.max_width is not None:
            excess += max(0.0, width - cfg.max_width)
        if cfg.max_height is not None:
            excess += max(0.0, height - cfg.max_height)
        return cfg.alpha * excess

    # -- totals ------------------------------------------------------------------------

    def cost(self, interface: Interface) -> CostBreakdown:
        """Full cost breakdown; also stored on the interface."""
        breakdown = CostBreakdown(
            manipulation=self.manipulation_cost(interface),
            navigation=self.navigation_cost(interface),
            layout_penalty=self.layout_penalty(interface),
        )
        interface.cost = breakdown
        return breakdown

    def total_cost(self, interface: Interface) -> float:
        return self.cost(interface).total


def interface_quality(cost: float, best_cost: float) -> float:
    """The paper's quality metric ``c* / c`` (1.0 = optimal, → 0 worse)."""
    if cost <= 0:
        return 1.0
    return max(0.0, min(1.0, best_cost / cost))
