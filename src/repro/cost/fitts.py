"""Fitts' law movement-time model (paper Section 5, navigation cost).

Fitts' law estimates the time to move a pointer to a target of width ``W`` at
distance ``D`` as ``a + b * log2(2D / W)``.  The paper's prototype sets
``a = 1`` and ``b = 25`` (from manual experimentation) and uses the distance
between widget centroids for ``D`` and the smaller box dimension of the
target for ``W`` (MacKenzie & Buxton's 2-D extension).
"""

from __future__ import annotations

import math

#: Constants from the paper ("Our prototype sets a = 1 and b = 25").
FITTS_A = 1.0
FITTS_B = 25.0


def fitts_time(distance: float, width: float, a: float = FITTS_A, b: float = FITTS_B) -> float:
    """Movement time to a target of extent ``width`` at ``distance`` pixels."""
    if width <= 0:
        width = 1.0
    if distance <= 0:
        return a
    index_of_difficulty = math.log2(max(1.0, 2.0 * distance / width))
    return a + b * index_of_difficulty


def centroid_distance(
    a: tuple[float, float], b: tuple[float, float]
) -> float:
    """Euclidean distance between two centroids."""
    return math.hypot(a[0] - b[0], a[1] - b[1])
