"""Interface cost model: SUPPLE manipulation cost + Fitts'-law navigation."""

from .fitts import FITTS_A, FITTS_B, centroid_distance, fitts_time
from .model import (
    CostModel,
    CostModelConfig,
    LAYOUT_ALPHA,
    WIDGET_A0,
    WIDGET_A1,
    WIDGET_A2,
    interface_quality,
)

__all__ = [
    "CostModel",
    "CostModelConfig",
    "FITTS_A",
    "FITTS_B",
    "LAYOUT_ALPHA",
    "WIDGET_A0",
    "WIDGET_A1",
    "WIDGET_A2",
    "centroid_distance",
    "fitts_time",
    "interface_quality",
]
