"""The reusable worker pool: process workers that outlive a single search.

The one-shot process backend (:mod:`repro.search.backends.process`) spawns,
warms and tears down its workers inside every ``run()`` — each generation
request pays OS process start-up plus per-process catalogue rebuild and cache
warm-up.  :class:`WorkerPool` restructures the lifecycle around the *pool*:

* **spawn once** — workers are created when the pool is built, carrying only
  a tiny :class:`ServiceWorkerSpec` (a shared-memory catalogue manifest, or
  the pickled catalogue as fallback), and stay alive between searches;
* **task messages instead of teardown** — the one-shot protocol's
  ``round``/``sync``/``finish`` core is reused verbatim (the worker runs
  :func:`repro.search.backends.process.serve_search`, the coordinator runs
  :func:`~repro.search.backends.process.drive_search`), but ``finish``
  returns the worker to an *idle* loop awaiting the next ``task`` instead of
  exiting;
* **warm per-process caches** — the catalogue object, the process-wide plan
  cache and the mapping memo inside each worker persist across tasks, so a
  repeat generation's reward queries hit compiled plans and mapping
  fragments from the previous request.

Worker states: ``spawning → idle ⇄ serving → closed`` (``closed`` via the
``shutdown`` message or pool teardown).

Supervision (PR 10): the pool never trusts a worker to stay alive.  Every
coordinator receive multiplexes the pipe with the worker's process sentinel
under the config's per-round deadline
(:func:`repro.search.backends.process.supervised_recv`), so crashes and
hangs surface as :class:`repro.faults.WorkerFailure` instead of wedging the
service.  Recovery is *replace and replay*: dead or hung workers are
respawned **at the same worker index** — the replacement re-enters the same
node-id space and RNG offset, re-attaches the shared-memory catalogue and
rebuilds its request context from the same task bytes — live workers are
sent ``abort`` and drained back to idle, and the whole task is replayed
(with the coordinator's current reward-table snapshot, which by reward
purity changes cost, never trajectories).  Replays are bounded by
``task_retries`` with deterministic jittered backoff; a pool that cannot
recover closes, and the generation service degrades to a fresh pool or the
serial in-process backend (see :mod:`repro.service.service`).

Determinism: a pooled search constructs each task's
:class:`~repro.search.mcts.MCTSWorker` exactly as the one-shot backend does
— same per-worker RNG offsets, same node-id spaces, same reward-table seed —
and rewards are pure functions of (seed, state), so a warm pooled request is
byte-identical to a cold one-shot run (``tests/test_service.py`` sweeps
this across every workload).
"""

from __future__ import annotations

import hashlib
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from .. import faults
from ..core.pipeline import build_reward_setup, make_reward_fn
from ..database.catalog import Catalog
from ..difftree.nodes import worker_id_counter
from ..faults import DeadlineExceeded, WorkerFailure, backoff_delays
from ..obs import MetricsRegistry, span, worker_metrics_snapshot
from ..search.backends.base import (
    ParallelSearchResult,
    RewardTable,
    SearchJob,
    dump_state,
    load_state,
)
from ..search.backends.process import (
    _mp_context,
    check_reply,
    drive_search,
    finalize_search,
    serve_search,
    supervised_recv,
)
from ..search.mcts import MCTSWorker
from ..search.state import SearchState
from ..transform.engine import TransformEngine
from .shm import CatalogManifest, SharedCatalogRegistry, _unlink_segment

__all__ = ["PooledProcessBackend", "ServiceWorkerSpec", "WorkerPool"]


@dataclass
class ServiceWorkerSpec:
    """Picklable recipe for a pool worker's *persistent* context.

    Unlike :class:`repro.core.pipeline.PipelineWorkerSpec` — which carries
    one request's catalogue, queries and config — this spec carries only
    what outlives requests: the catalogue, preferably as a shared-memory
    manifest so each worker attaches the one segment the pool owns instead
    of unpickling a private copy.  Per-request context (queries, configs,
    initial state, reward-table seed) arrives later in ``task`` messages.
    """

    #: shared-memory manifest of the catalogue (preferred transport)
    manifest: Optional[CatalogManifest] = None
    #: pickled-catalogue fallback when shared memory is unavailable
    catalog: Optional[Catalog] = None
    #: rebuilt inside the worker process; never pickled
    _materialized: Optional[Catalog] = field(
        default=None, repr=False, compare=False
    )

    def materialize(self) -> Catalog:
        """The worker-process catalogue (attached or unpickled, then kept)."""
        if self._materialized is None:
            if self.manifest is not None:
                self._materialized = SharedCatalogRegistry.attach(self.manifest)
            elif self.catalog is not None:
                self._materialized = self.catalog
            else:
                raise ValueError("ServiceWorkerSpec has neither manifest nor catalog")
        return self._materialized

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_materialized"] = None
        return state


#: per-worker request-context cache size: a pool usually serves a handful of
#: distinct (workload, config) pairs; evicting LRU beyond this bounds memory
_SETUP_CACHE_SIZE = 8


def _pooled_worker_main(conn, spec_bytes: bytes, worker_index: int) -> None:
    """Entry point of one pool worker: idle loop serving ``task`` messages.

    Per task the worker rebuilds only the cheap request-scoped objects
    (engine, reward function) over its persistent catalogue — the expensive
    work (process spawn, catalogue materialize, plan-cache and memo warm-up)
    happened at pool build / earlier tasks, and the request-scoped reward
    setup itself is cached by the SHA-256 of the pickled (queries, config)
    context: a byte-identical repeat request reuses exactly the setup a cold
    worker would have built from those bytes, so the cache changes cost,
    never behaviour.
    """
    try:
        spec: ServiceWorkerSpec = pickle.loads(spec_bytes)
        catalog = spec.materialize()
        #: context sha256 -> (reward setup, unpickled pipeline config)
        setups: OrderedDict[str, tuple] = OrderedDict()
        # pool-lifetime counters: they persist across tasks (like the plan
        # cache and memo they describe), so a snapshot is cumulative — a warm
        # task's setup_cache_hits counts every task this worker has served
        registry = MetricsRegistry()
        conn.send(("ready", 0.0))
        while True:
            # idle loop: the pool owner's death surfaces as EOFError below
            message = conn.recv()  # repro: allow-unbounded-recv -- EOFError on pool-owner death is the liveness signal
            if message[0] == "task":
                task = pickle.loads(message[1])
                search_config = task["search_config"]
                context_bytes = task["context"]
                # per-task fault plan from the coordinator: reaches workers
                # that were spawned before the plan was installed, and
                # restarts hit counters on every (re)play
                faults.install_local(task.get("faults"))

                warmup_start = time.perf_counter()
                context_key = hashlib.sha256(context_bytes).hexdigest()
                cached = setups.get(context_key)
                if cached is None:
                    registry.counter("pool.setup_cache_misses").inc()
                else:
                    registry.counter("pool.setup_cache_hits").inc()
                registry.counter("pool.tasks").inc()
                if cached is None:
                    asts, pipeline_config = pickle.loads(context_bytes)
                    setup = build_reward_setup(catalog, asts, pipeline_config)
                    # the engine is cached *per context*, never shared across
                    # contexts: a byte-identical repeat request replays the
                    # identical trajectory, so the cached rule applications —
                    # node ids included — are exactly what a cold worker
                    # would re-derive; a different request misses here and
                    # builds fresh, so no ids leak across workloads
                    engine = TransformEngine(
                        catalog,
                        setup.executor,
                        max_applications=search_config.max_applications,
                    )
                    setups[context_key] = (setup, pipeline_config, engine)
                    while len(setups) > _SETUP_CACHE_SIZE:
                        setups.popitem(last=False)
                else:
                    setups.move_to_end(context_key)
                    setup, pipeline_config, engine = cached
                reward_fn = make_reward_fn(setup, pipeline_config, worker_index)
                table = RewardTable() if task["shared_rewards"] else None
                if table is not None and task["table_seed"]:
                    table.seed(task["table_seed"])
                worker = MCTSWorker(
                    load_state(task["initial_state"]),
                    engine,
                    reward_fn,
                    search_config,
                    rng=search_config.rng(offset=worker_index + 1),
                    reward_table=table,
                    id_space=worker_id_counter(worker_index),
                )
                warmup_seconds = time.perf_counter() - warmup_start
                # third element: this worker's pool-lifetime metric snapshot,
                # merged by the coordinator at the task-ready barrier (the
                # one-shot protocol's consumers index [1], so the extra
                # element is backward-compatible)
                conn.send(("task-ready", warmup_seconds, registry.snapshot()))

                def cache_info(setup=setup):
                    memo = setup.memo.info() if setup.memo is not None else None
                    return setup.executor.plan_cache.info(), memo

                def metrics_snapshot(setup=setup):
                    plan_info, memo_info = cache_info(setup)
                    return worker_metrics_snapshot(
                        plan_stats=setup.executor.stats,
                        mapper_stats=setup.mapper.stats,
                        plan_cache_info=plan_info,
                        memo_info=memo_info,
                        extra=registry.snapshot(),
                    )

                serve_search(
                    conn,
                    worker,
                    table,
                    warmup_seconds,
                    cache_info,
                    metrics_snapshot=metrics_snapshot,
                    worker_index=worker_index,
                )
            elif message[0] == "abort":
                # recovery can reach a worker that is already idle (e.g. the
                # task broadcast died before this worker's send): confirm and
                # keep idling
                conn.send(("aborted",))
            elif message[0] == "shutdown":
                conn.send(("bye",))
                return
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown pool command {message[0]!r}")
    except EOFError:  # pool owner died: exit quietly
        pass
    except Exception as exc:  # pragma: no cover - crash reporting path
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


class WorkerPool:
    """``workers`` live processes over one catalogue, reused across searches.

    The pool owns the catalogue's shared-memory segment (when ``use_shm``)
    and the worker processes; close it (context manager, :meth:`close`) to
    release both.  ``spawn_seconds`` records the one-time cost a pooled
    request amortizes away.
    """

    #: supervision deadline on worker spawn (catalogue attach + ready reply);
    #: generous — it only has to catch a truly wedged child, not pace it
    SPAWN_DEADLINE_SECONDS = 300.0

    def __init__(
        self, catalog: Catalog, workers: int, use_shm: bool = True
    ) -> None:
        self.catalog = catalog
        self.workers = max(1, workers)
        self.tasks_served = 0
        self.closed = False
        #: merged pool-lifetime worker metrics, refreshed at every task-ready
        #: barrier (see :meth:`run_task`)
        self.metrics = MetricsRegistry()
        #: coordinator-side supervision counters (worker failures, respawns,
        #: task replays); the service folds these into each request's view
        self.supervisor = MetricsRegistry()
        #: workers respawned over the pool's lifetime (mirrors the
        #: ``pool.workers_replaced`` supervisor counter)
        self.workers_replaced = 0
        self._registry: Optional[SharedCatalogRegistry] = None

        spawn_start = time.perf_counter()
        spec = ServiceWorkerSpec()
        if use_shm:
            try:
                self._registry = SharedCatalogRegistry()
                spec.manifest = self._registry.register(catalog)
                if self._registry.reclaimed_segments:
                    self.supervisor.counter("shm.reclaimed_segments").inc(
                        self._registry.reclaimed_segments
                    )
            except Exception:
                # no shared memory on this platform: fall back to pickling
                if self._registry is not None:
                    self._registry.close()
                    self._registry = None
                spec.manifest = None
        if spec.manifest is not None and faults.fire("unlink-shm-segment"):
            # simulate a crashed owner's vanished segment: workers will fail
            # to attach, and pool construction must fail loudly (the service
            # ladder then rebuilds a fresh pool)
            _unlink_segment(spec.manifest.segment)
        if spec.manifest is None:
            spec.catalog = catalog
        self._spec_bytes = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)

        self._ctx = _mp_context()
        self._connections = []
        self._processes = []
        try:
            # start every process first (they warm concurrently), then wait
            # for the ready barrier under spawn supervision
            for index in range(self.workers):
                conn, process = self._start_worker(index)
                self._connections.append(conn)
                self._processes.append(process)
            for index in range(self.workers):
                self._await_ready(index)
        except Exception:
            self.close()
            raise
        self.spawn_seconds = time.perf_counter() - spawn_start

    # -- worker lifecycle ---------------------------------------------------

    def _start_worker(self, index: int):
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_pooled_worker_main,
            args=(child_conn, self._spec_bytes, index),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    def _await_ready(self, index: int) -> None:
        reply = supervised_recv(
            self._connections[index],
            self._processes[index],
            deadline_at=time.monotonic() + self.SPAWN_DEADLINE_SECONDS,
            worker=index,
        )
        check_reply(reply, "ready", worker=index)

    def _replace_worker(self, index: int) -> None:
        """Respawn worker ``index`` in place, preserving its identity.

        The replacement runs from the same spec bytes under the same index,
        so it re-enters the worker's node-id space and RNG offset, attaches
        the same shared-memory catalogue and rebuilds request context from
        the same task bytes — replaying a task through it is byte-identical
        to a run that never crashed.
        """
        try:
            self._connections[index].close()
        except OSError:  # pragma: no cover - defensive
            pass
        process = self._processes[index]
        if process.is_alive():
            process.terminate()
        process.join(timeout=10)
        conn, process = self._start_worker(index)
        self._connections[index] = conn
        self._processes[index] = process
        self._await_ready(index)
        self.workers_replaced += 1
        self.supervisor.counter("pool.workers_replaced").inc()

    def _recover(self, search_config) -> None:
        """Bring every worker back to a known-idle state after a failure.

        Dead workers are respawned at their index; live ones are aborted and
        drained (stale sync replies included) until they confirm idleness.
        A live worker that cannot confirm within the round deadline is hung
        mid-round and replaced like a dead one.
        """
        drain_deadline = getattr(search_config, "round_deadline_seconds", None) or 60.0
        for index in range(self.workers):
            process = self._processes[index]
            conn = self._connections[index]
            if not process.is_alive():
                self._replace_worker(index)
                continue
            try:
                conn.send(("abort",))
                limit = time.monotonic() + drain_deadline
                while True:
                    reply = supervised_recv(
                        conn, process, deadline_at=limit, worker=index
                    )
                    if reply[0] == "aborted":
                        break
                    if reply[0] == "error":
                        raise WorkerFailure(index, "faulted", str(reply[1]))
            except (WorkerFailure, OSError):
                self._replace_worker(index)

    def run_task(
        self,
        task: dict,
        search_config,
        coordinator_table: Optional[RewardTable],
        request_deadline_at: Optional[float] = None,
    ) -> tuple[list, list, int, int, bool]:
        """Run one search over the live workers, surviving worker failures.

        ``task`` is pickled and broadcast; ``coordinator_table`` stays local
        (it holds a lock) and is driven through the round protocol.  Returns
        ``(finals, task_warmups, total_iterations, sync_rounds,
        early_stopped)``; the workers return to idle afterwards.

        On :class:`WorkerFailure` the pool recovers (respawn the dead,
        abort + drain the living) and replays the task from its initial
        state — up to ``search_config.task_retries`` times, sleeping a
        deterministic jittered backoff in between.  Because rewards are pure
        and the replay reuses the coordinator's accumulated reward-table
        snapshot, a replayed task produces byte-identical output to an
        undisturbed run, just later.  An exhausted retry budget or an
        expired request deadline closes the pool and re-raises for the
        service's degradation ladder.
        """
        if self.closed:
            raise RuntimeError("worker pool is closed")
        retries = max(0, int(getattr(search_config, "task_retries", 0) or 0))
        delays = backoff_delays(
            retries,
            float(getattr(search_config, "retry_backoff_seconds", 0.05) or 0.0),
            int(getattr(search_config, "seed", 0)),
        )
        task = dict(task)
        task.setdefault("faults", faults.current_spec())
        attempt = 0
        while True:
            try:
                return self._run_task_once(
                    task, search_config, coordinator_table, request_deadline_at
                )
            except DeadlineExceeded:
                # no budget left to resynchronize the protocol: release the
                # processes; the service degrades to serial instead
                self.close()
                raise
            except WorkerFailure as failure:
                self.supervisor.counter("pool.worker_failures").inc()
                self.supervisor.counter(
                    f"pool.worker_failures_{failure.kind}"
                ).inc()
                out_of_budget = request_deadline_at is not None and (
                    time.monotonic() >= request_deadline_at
                )
                if attempt >= retries or out_of_budget or self.closed:
                    self.close()
                    raise
                with span(
                    "pool.recover",
                    worker=failure.worker,
                    kind=failure.kind,
                    attempt=attempt,
                ):
                    try:
                        self._recover(search_config)
                    except Exception:
                        self.close()
                        raise failure from None
                if coordinator_table is not None:
                    # carry the rounds that *did* merge into the replay —
                    # pure rewards make this a cost optimisation, not a
                    # behaviour change
                    task["table_seed"] = coordinator_table.snapshot()
                time.sleep(delays[attempt])
                attempt += 1
                self.supervisor.counter("pool.task_retries").inc()
            except Exception:
                # a non-supervision error desynchronizes the protocol: the
                # pool cannot serve further tasks, so release everything now
                self.close()
                raise

    def _run_task_once(
        self,
        task: dict,
        search_config,
        coordinator_table: Optional[RewardTable],
        request_deadline_at: Optional[float],
    ) -> tuple[list, list, int, int, bool]:
        task_bytes = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        round_deadline = getattr(search_config, "round_deadline_seconds", None)
        for index, conn in enumerate(self._connections):
            try:
                conn.send(("task", task_bytes))
            except OSError as exc:
                raise WorkerFailure(
                    index, "crashed", f"task broadcast failed ({exc!r})"
                ) from exc
        replies = []
        for index, conn in enumerate(self._connections):
            deadline_at = (
                time.monotonic() + round_deadline if round_deadline else None
            )
            reply = supervised_recv(
                conn,
                self._processes[index],
                deadline_at=deadline_at,
                request_deadline_at=request_deadline_at,
                worker=index,
            )
            replies.append(check_reply(reply, "task-ready", worker=index))
        warmups = [reply[1] for reply in replies]
        # merge the per-worker pool-lifetime snapshots deterministically
        # (worker order); snapshots are cumulative, so the merged registry
        # is rebuilt from the latest snapshot of every worker rather than
        # accumulated across tasks
        merged = MetricsRegistry()
        for reply in replies:
            if len(reply) > 2 and reply[2]:
                merged.merge(reply[2])
        self.metrics = merged
        finals, total_iterations, sync_rounds, early_stopped = drive_search(
            self._connections,
            search_config,
            coordinator_table,
            processes=self._processes,
            request_deadline_at=request_deadline_at,
        )
        self.tasks_served += 1
        return finals, warmups, total_iterations, sync_rounds, early_stopped

    @property
    def warm(self) -> bool:
        """True once the pool has served at least one task."""
        return self.tasks_served > 0

    def close(self) -> None:
        """Shut workers down and unlink the shared-memory segment."""
        if self.closed:
            return
        self.closed = True
        for conn in self._connections:
            try:
                conn.send(("shutdown",))
            except Exception:
                pass
        for conn in self._connections:
            try:
                # drain the "bye" (or whatever a dying worker managed to send)
                if conn.poll(5):
                    conn.recv()
            except Exception:
                pass
            finally:
                try:
                    conn.close()
                except Exception:
                    pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        if self._registry is not None:
            self._registry.close()
            self._registry = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PooledProcessBackend:
    """A search backend view over a live :class:`WorkerPool`.

    Implements the same interface as the registered backends so
    :class:`repro.search.parallel.ParallelCoordinator` can run on it via
    ``backend_instance``.  The per-request pieces of the task (queries,
    configs) are bound by the generation service before each search via
    :meth:`bind_request`.
    """

    name = "pooled-process"

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self._context_bytes: Optional[bytes] = None

    def bind_request(self, asts: list, pipeline_config) -> None:
        """Attach the current request's queries + config for the next run.

        The pair is pickled here, once, and shipped as one opaque context
        blob: workers key their per-process reward-setup cache by its
        SHA-256, so byte-identical repeat requests skip the rebuild.
        """
        self._context_bytes = pickle.dumps(
            (list(asts), pipeline_config), protocol=pickle.HIGHEST_PROTOCOL
        )

    def run(self, job: SearchJob) -> ParallelSearchResult:
        if self._context_bytes is None:
            raise RuntimeError(
                "PooledProcessBackend.run called without bind_request"
            )
        config = job.config
        start = time.perf_counter()
        was_warm = self.pool.warm

        table: Optional[RewardTable] = None
        if config.shared_rewards:
            table = job.reward_table if job.reward_table is not None else RewardTable()
        table_seed = table.snapshot() if table is not None else {}

        task = {
            "context": self._context_bytes,
            "search_config": config,
            "shared_rewards": config.shared_rewards,
            "initial_state": dump_state(SearchState(job.initial_trees)),
            "table_seed": table_seed,
            "faults": faults.current_spec(),
        }
        request_deadline = getattr(config, "request_deadline_seconds", None)
        request_deadline_at = (
            time.monotonic() + request_deadline if request_deadline else None
        )
        finals, warmups, total_iterations, sync_rounds, early_stopped = (
            self.pool.run_task(
                task, config, table, request_deadline_at=request_deadline_at
            )
        )

        # warm requests pay no spawn / warm-up by construction: those costs
        # were paid when the pool was built (cold requests surface them so
        # the amortization is visible in the stats)
        warmup_wall = 0.0 if was_warm else self.pool.spawn_seconds + max(
            warmups, default=0.0
        )
        reported_warmups = [0.0] * len(warmups) if was_warm else warmups
        result = finalize_search(
            self.name,
            job,
            finals,
            reported_warmups,
            table,
            total_iterations,
            sync_rounds,
            early_stopped,
            start,
            warmup_wall,
        )
        result.stats.pool = "warm" if was_warm else "cold"
        result.stats.reward_table_loaded = len(table_seed)
        return result
