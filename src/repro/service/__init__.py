"""The persistent generation service (ROADMAP item 1).

Three layers turn the one-shot pipeline into a long-lived service that
amortizes setup across repeated generation requests:

* :mod:`repro.service.pool` — a reusable :class:`~repro.service.pool.WorkerPool`
  keeping process-backend workers alive across searches (spawn + warm-up paid
  once per pool, not per request);
* :mod:`repro.service.shm` — shared-memory catalogue segments workers attach
  instead of rebuilding from a pickled spec;
* :mod:`repro.service.persist` — cross-run save/load of the reward table,
  plan cache and mapping memo, keyed by content fingerprints and validated
  on load so stale entries can never alias.

:class:`~repro.service.service.GenerationService` fronts all three; the CLI
exposes it via ``repro serve`` and ``repro generate --pool``.  Supervision
(worker replacement, task replays, the degradation ladder, deadlines) lives
in the pool and the service; :mod:`repro.faults` provides the shared error
vocabulary and the deterministic fault-injection harness that tests it.
"""

from .fingerprint import catalog_fingerprint, config_fingerprint, workload_fingerprint
from .persist import CACHE_VERSION, CacheBundle, CacheStore, persistence_key
from .pool import PooledProcessBackend, ServiceWorkerSpec, WorkerPool
from .service import GenerationService, RequestStats
from .shm import CatalogManifest, SharedCatalogRegistry, sweep_orphaned_segments

__all__ = [
    "CACHE_VERSION",
    "CacheBundle",
    "CacheStore",
    "CatalogManifest",
    "GenerationService",
    "PooledProcessBackend",
    "RequestStats",
    "ServiceWorkerSpec",
    "SharedCatalogRegistry",
    "WorkerPool",
    "catalog_fingerprint",
    "config_fingerprint",
    "persistence_key",
    "sweep_orphaned_segments",
    "workload_fingerprint",
]
