"""Shared-memory catalogue registry.

The one-shot process backend ships the whole catalogue to every worker by
pickling it into the spawn payload — each worker pays unpickle cost and holds
a private copy.  A long-lived pool does better: the registry encodes every
column of every table into **one** ``multiprocessing.shared_memory`` segment
per catalogue, described by a picklable :class:`CatalogManifest` (per-column
dtype kind, offsets, lengths, null indexes).  Workers receive only the tiny
manifest, attach the segment, and decode columns straight out of shared
memory — the segment is mapped, never copied or re-pickled, and one segment
serves every worker of the pool.

Column encodings (``kind`` in the manifest) — chosen so the decoded values
are *byte-identical* to the originals, including Python types:

========  ==================================================================
``i8``    every non-null value is an ``int`` (``bool`` excluded) within
          int64 range → little-endian int64 vector
``f8``    every non-null value is a ``float`` → float64 vector (NaN and
          infinities round-trip; float64 is the substrate's only precision)
``b1``    every non-null value is a ``bool`` → byte vector
``str``   every non-null value is a ``str`` → UTF-8 blob + int64 offsets
``pkl``   anything else (dates, mixed-type columns) → pickled value list
========  ==================================================================

Nulls ride separately as an int64 vector of row indexes, so the numeric
encodings stay dense.  Anything the strict kinds cannot represent exactly
falls back to ``pkl`` rather than coercing — a column that decodes to
``1.0`` where the original held ``1`` would change type inference and break
the cold/warm determinism guarantee.

Segment lifecycle: the registry that *created* a segment owns it — creation
happens inside a ``try`` that unlinks on failure, :meth:`close` /
``__exit__`` unlink deterministically, and a ``weakref.finalize`` backstop
reclaims the segment even if the owner is dropped without ``close`` (crash
safety).  Attachers never unlink; they close their mapping as soon as the
columns are decoded.  The ``shm-lifecycle`` rule of :mod:`repro.analysis`
statically enforces this create/cleanup pairing.

Against the backstops failing too (``SIGKILL``, ``os._exit``, power loss),
segments carry recognisable names — ``pi2shm-<owner pid>-<n>`` — and every
new registry sweeps ``/dev/shm`` for repro-owned segments whose owning
process is gone, unlinking them and counting the reclaims in the
``shm.reclaimed_segments`` metric (see :func:`sweep_orphaned_segments`).
"""

from __future__ import annotations

import itertools
import os
import pickle
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Optional

from ..database.catalog import Catalog
from ..database.table import Table
from ..obs import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

try:  # numpy-backed vector decode; the container bakes numpy in
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a baked-in dependency
    _np = None

__all__ = [
    "CatalogManifest",
    "ColumnManifest",
    "SharedCatalogRegistry",
    "sweep_orphaned_segments",
]

#: Name prefix of every segment this package creates.  The pid baked into
#: the name is what lets a later process decide whether a leftover segment
#: is an orphan (owner dead) or live (owner still running).
_SEGMENT_PREFIX = "pi2shm"

#: Where POSIX shared memory surfaces as files (Linux); the sweep is a
#: best-effort no-op on platforms without it.
_SHM_DIR = "/dev/shm"

_segment_counter = itertools.count()


def _segment_name() -> str:
    """A fresh repro-owned segment name: ``pi2shm-<pid>-<n>``."""
    return f"{_SEGMENT_PREFIX}-{os.getpid()}-{next(_segment_counter)}"


def _pid_alive(pid: int) -> bool:
    """Liveness probe via signal 0; unknown errors count as alive (safe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # PermissionError etc.: some process has that pid
        return True
    return True


def _unlink_segment(name: str) -> None:
    """Unlink a segment by name (fault injection / orphan sweep)."""
    shm = None
    try:
        shm = _attach_readonly(name)
        shm.unlink()
    except FileNotFoundError:
        pass
    finally:
        if shm is not None:
            shm.close()


def sweep_orphaned_segments() -> int:
    """Unlink repro-owned segments whose owner process is dead.

    Scans ``/dev/shm`` for ``pi2shm-<pid>-*`` entries, probes the embedded
    pid, and unlinks segments of dead owners — the leftovers of a pool
    owner that died without running any of its cleanup paths.  Returns the
    number of segments reclaimed and bumps the global
    ``shm.reclaimed_segments`` counter by it.  Never raises: a sweep
    failure must not stop a registry from being built.
    """
    reclaimed = 0
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux platform
        return 0
    for entry in sorted(entries):
        if not entry.startswith(_SEGMENT_PREFIX + "-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):  # pragma: no cover - foreign name
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
            reclaimed += 1
        except OSError:  # pragma: no cover - raced with another sweeper
            continue
    if reclaimed:
        from ..obs import GLOBAL_METRICS

        GLOBAL_METRICS.counter("shm.reclaimed_segments").inc(reclaimed)
    return reclaimed


@dataclass
class ColumnManifest:
    """Where and how one column lives inside the catalogue segment."""

    kind: str  # "i8" | "f8" | "b1" | "str" | "pkl"
    length: int  # row count
    offset: int  # byte offset of the primary buffer
    nbytes: int  # byte length of the primary buffer
    #: ``str`` columns: byte offset / length of the int64 offsets vector
    aux_offset: int = 0
    aux_nbytes: int = 0
    #: byte offset / length of the int64 null-row-index vector
    null_offset: int = 0
    null_nbytes: int = 0


@dataclass
class TableManifest:
    name: str
    #: the declared schema travels by value (Column objects are tiny)
    columns: list = field(default_factory=list)
    column_manifests: list = field(default_factory=list)


@dataclass
class CatalogManifest:
    """A picklable description of one shared-memory catalogue segment."""

    segment: str  # shared-memory segment name
    total_bytes: int
    tables: list = field(default_factory=list)
    #: content fingerprint of the encoded catalogue — attachers key their
    #: caches by this, and it pins what the segment must decode back to
    fingerprint: str = ""


def _attach_readonly(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without taking ownership of it.

    Python 3.13 grew ``track=False`` for exactly this; on 3.11/3.12 the
    attach also registers with the resource tracker, which is harmless here:
    pool workers are multiprocessing children and *share the owner's
    tracker* (the tracker fd travels in the spawn preparation data), so the
    duplicate registration is a set-add no-op, the owner's ``unlink``
    balances it, and — if the owner crashes without ``close`` — the shared
    tracker reclaims the segment at shutdown, which is the crash-safety
    backstop this registry wants.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# column encode / decode
# ---------------------------------------------------------------------------

_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _classify(values: list) -> str:
    """The strictest encoding kind that reproduces ``values`` exactly."""
    kind: Optional[str] = None
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            cls = "b1"
        elif isinstance(value, int):
            if not (_INT64_MIN <= value <= _INT64_MAX):
                return "pkl"
            cls = "i8"
        elif isinstance(value, float):
            cls = "f8"
        elif isinstance(value, str):
            cls = "str"
        else:
            return "pkl"
        if kind is None:
            kind = cls
        elif kind != cls:
            return "pkl"
    return kind or "i8"  # all-null column: dense zeros + full null vector


def _encode_column(values: list) -> tuple[str, bytes, bytes, bytes]:
    """``(kind, primary buffer, aux buffer, null-index buffer)``."""
    kind = _classify(values)
    nulls = [i for i, v in enumerate(values) if v is None]
    null_buf = _np.asarray(nulls, dtype="<i8").tobytes() if nulls else b""
    if kind == "pkl":
        return kind, pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL), b"", b""
    if kind == "str":
        blobs = [v.encode("utf-8") if v is not None else b"" for v in values]
        offsets = [0]
        for blob in blobs:
            offsets.append(offsets[-1] + len(blob))
        return (
            kind,
            b"".join(blobs),
            _np.asarray(offsets, dtype="<i8").tobytes(),
            null_buf,
        )
    dtype = {"i8": "<i8", "f8": "<f8", "b1": "|b1"}[kind]
    dense = [
        (0 if kind != "f8" else 0.0) if v is None else v for v in values
    ]
    return kind, _np.asarray(dense, dtype=dtype).tobytes(), b"", null_buf


def _decode_column(buf: memoryview, manifest: ColumnManifest) -> list:
    """Decode one column out of the segment into a fresh value list."""
    start, end = manifest.offset, manifest.offset + manifest.nbytes
    primary = buf[start:end]
    if manifest.kind == "pkl":
        return pickle.loads(primary)
    if manifest.kind == "str":
        offsets = _np.frombuffer(
            buf, dtype="<i8", count=manifest.length + 1, offset=manifest.aux_offset
        )
        blob = bytes(primary)
        values: list = [
            blob[offsets[i]:offsets[i + 1]].decode("utf-8")
            for i in range(manifest.length)
        ]
    else:
        dtype = {"i8": "<i8", "f8": "<f8", "b1": "|b1"}[manifest.kind]
        values = _np.frombuffer(
            buf, dtype=dtype, count=manifest.length, offset=manifest.offset
        ).tolist()
    if manifest.null_nbytes:
        null_count = manifest.null_nbytes // 8
        for index in _np.frombuffer(
            buf, dtype="<i8", count=null_count, offset=manifest.null_offset
        ).tolist():
            values[index] = None
    return values


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------


class SharedCatalogRegistry:
    """Owns the shared-memory segments of registered catalogues.

    One registry lives in the service / pool owner process; worker processes
    only ever call the static :meth:`attach`.  Use as a context manager (or
    call :meth:`close`) to unlink the segments deterministically; a
    ``weakref.finalize`` backstop unlinks them at interpreter exit even if
    the owner forgets.
    """

    def __init__(self) -> None:
        if _np is None:  # pragma: no cover - numpy is a baked-in dependency
            raise RuntimeError("shared-memory catalogues require numpy")
        #: fingerprint -> (SharedMemory, CatalogManifest)
        self._segments: dict[str, tuple[shared_memory.SharedMemory, CatalogManifest]] = {}
        #: orphans of dead owners reclaimed while building this registry
        self.reclaimed_segments = sweep_orphaned_segments()
        self._finalizer = weakref.finalize(
            self, SharedCatalogRegistry._cleanup_segments, self._segments
        )

    # -- owner side ---------------------------------------------------------

    def register(self, catalog: Catalog) -> CatalogManifest:
        """Encode ``catalog`` into a shared segment; idempotent per content."""
        from .fingerprint import catalog_fingerprint

        fingerprint = catalog_fingerprint(catalog)
        existing = self._segments.get(fingerprint)
        if existing is not None:
            return existing[1]
        with span("shm.register", fingerprint=fingerprint[:16]):
            return self._register_new(catalog, fingerprint)

    def _register_new(self, catalog: Catalog, fingerprint: str) -> CatalogManifest:
        # encode every column first so the segment is sized exactly once
        tables: list[TableManifest] = []
        buffers: list[bytes] = []
        cursor = 0

        def _append(buf: bytes) -> tuple[int, int]:
            nonlocal cursor
            offset = cursor
            buffers.append(buf)
            cursor += len(buf)
            return offset, len(buf)

        for table in sorted(catalog.tables(), key=lambda t: t.name.lower()):
            table_manifest = TableManifest(name=table.name, columns=list(table.columns))
            for index in range(len(table.columns)):
                values = table.column_data(index)
                kind, primary, aux, null_buf = _encode_column(values)
                offset, nbytes = _append(primary)
                aux_offset, aux_nbytes = _append(aux) if aux else (0, 0)
                null_offset, null_nbytes = _append(null_buf) if null_buf else (0, 0)
                table_manifest.column_manifests.append(
                    ColumnManifest(
                        kind=kind,
                        length=len(values),
                        offset=offset,
                        nbytes=nbytes,
                        aux_offset=aux_offset,
                        aux_nbytes=aux_nbytes,
                        null_offset=null_offset,
                        null_nbytes=null_nbytes,
                    )
                )
            tables.append(table_manifest)

        total = max(1, cursor)  # zero-byte segments are not allowed
        # named creation (pid in the name) so a later sweep can tell orphans
        # from live segments; retry on the (unlikely) collision with a
        # leftover of a previous same-pid process
        while True:
            try:
                shm = shared_memory.SharedMemory(
                    name=_segment_name(), create=True, size=total
                )
                break
            except FileExistsError:  # pragma: no cover - pid-reuse leftover
                continue
        try:
            position = 0
            for buf in buffers:
                shm.buf[position:position + len(buf)] = buf
                position += len(buf)
            manifest = CatalogManifest(
                segment=shm.name,
                total_bytes=cursor,
                tables=tables,
                fingerprint=fingerprint,
            )
        except Exception:
            # creation failed mid-populate: reclaim the segment immediately
            shm.close()
            shm.unlink()
            raise
        self._segments[fingerprint] = (shm, manifest)
        return manifest

    def manifest_for(self, catalog: Catalog) -> Optional[CatalogManifest]:
        from .fingerprint import catalog_fingerprint

        entry = self._segments.get(catalog_fingerprint(catalog))
        return entry[1] if entry is not None else None

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        self._cleanup_segments(self._segments)
        self._finalizer.detach()

    @staticmethod
    def _cleanup_segments(segments: dict) -> None:
        for shm, _manifest in list(segments.values()):
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        segments.clear()

    def __enter__(self) -> "SharedCatalogRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)

    # -- worker side ----------------------------------------------------------

    @staticmethod
    def attach(manifest: CatalogManifest) -> Catalog:
        """Rebuild a catalogue by decoding the manifest's shared segment.

        The mapping is closed as soon as the columns are decoded; attachers
        never unlink (the registry that created the segment owns it).
        """
        with span("shm.attach", segment=manifest.segment):
            shm = _attach_readonly(manifest.segment)
            try:
                buf = shm.buf
                tables = []
                for table_manifest in manifest.tables:
                    col_data = [
                        _decode_column(buf, column)
                        for column in table_manifest.column_manifests
                    ]
                    tables.append(
                        Table.from_columns(
                            table_manifest.name, table_manifest.columns, col_data
                        )
                    )
                del buf
            finally:
                shm.close()
            return Catalog(tables)
