"""Content fingerprints keying the persistent-service caches.

Every cross-run artifact the service persists or shares (reward tables,
plan-cache exports, mapping-memo exports, shared-memory catalogue segments)
is keyed by *content*, never by object identity or path: two catalogues with
the same schema and data fingerprint identically no matter how they were
built, and any difference in data, workload or reward-relevant configuration
changes the key.  Stale cache entries therefore cannot alias — they simply
live under a key nobody asks for again.

Three fingerprints compose the persistence key (see
:func:`repro.service.persist.persistence_key`):

* :func:`catalog_fingerprint` — schema (table / column names, declared types,
  primary keys) plus every column's data, streamed through one SHA-256;
* :func:`workload_fingerprint` — the structural fingerprints of the parsed
  query ASTs, in sequence order (the analyst's query order matters to the
  cost model's sequence-sensitive terms);
* :func:`config_fingerprint` — the *reward-relevant* configuration: the seed
  and mapping count that parameterize the pure reward function, and the
  mapper / cost-model knobs that change what a reward evaluation computes.
  Search-schedule knobs (workers, sync interval, iteration budget) are
  deliberately excluded: rewards are pure functions of (seed, state), so a
  table built under one schedule is valid under any other.

All fingerprints are hex SHA-256 strings, independent of
``PYTHONHASHSEED``, process, and platform word size.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import PipelineConfig
    from ..database.catalog import Catalog
    from ..sqlparser.ast_nodes import Node

__all__ = [
    "catalog_fingerprint",
    "workload_fingerprint",
    "config_fingerprint",
]


#: catalogue fingerprints are cached per object — the data is immutable once
#: built (tables are append-only and the service registers finished
#: catalogues), and hashing a paper-scale catalogue streams every value
_FINGERPRINT_CACHE: "weakref.WeakKeyDictionary[Catalog, str]" = (
    weakref.WeakKeyDictionary()
)
_CACHE_LOCK = threading.Lock()


def _hash_value(value: object, update) -> None:
    """Feed one cell value into the digest, tagged by type.

    The type tag makes ``1``, ``1.0`` and ``True`` hash differently: reward
    evaluations observe value *types* (type inference, chart constraints),
    so catalogues differing only in a column's value types must not share
    cached artifacts.
    """
    if value is None:
        update(b"\x00N")
    elif value is True:
        update(b"\x00T")
    elif value is False:
        update(b"\x00F")
    elif isinstance(value, int):
        update(b"\x00i" + str(value).encode("ascii"))
    elif isinstance(value, float):
        update(b"\x00f" + repr(value).encode("ascii"))
    elif isinstance(value, str):
        update(b"\x00s" + value.encode("utf-8"))
    else:
        # dates and anything exotic: type name + repr is stable for the
        # value types the substrate stores
        update(
            b"\x00o"
            + type(value).__name__.encode("ascii")
            + b":"
            + repr(value).encode("utf-8")
        )


def catalog_fingerprint(catalog: "Catalog") -> str:
    """SHA-256 over the catalogue's full schema and data (cached per object)."""
    with _CACHE_LOCK:
        cached = _FINGERPRINT_CACHE.get(catalog)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    update = digest.update
    for table in sorted(catalog.tables(), key=lambda t: t.name.lower()):
        update(b"\x01table:" + table.name.encode("utf-8"))
        for column in table.columns:
            update(
                b"\x02col:"
                + column.name.encode("utf-8")
                + b"|"
                + column.dtype.name.encode("ascii")
                + b"|"
                + (b"pk" if column.primary_key else b"-")
            )
        update(b"\x03rows:" + str(table.row_count()).encode("ascii"))
        for index in range(len(table.columns)):
            update(b"\x04data:" + str(index).encode("ascii"))
            for value in table.column_data(index):
                _hash_value(value, update)
    fingerprint = digest.hexdigest()
    with _CACHE_LOCK:
        _FINGERPRINT_CACHE[catalog] = fingerprint
    return fingerprint


def workload_fingerprint(asts: Sequence["Node"]) -> str:
    """SHA-256 over the parsed queries' structural fingerprints, in order."""
    digest = hashlib.sha256()
    for ast in asts:
        digest.update(b"\x01q:" + ast.fingerprint().encode("utf-8"))
    return digest.hexdigest()


def _config_items(prefix: str, obj: object, out: list[str]) -> None:
    """Flatten a (possibly nested) config dataclass into sorted key=repr items."""
    if is_dataclass(obj) and not isinstance(obj, type):
        for f in sorted(fields(obj), key=lambda f: f.name):
            _config_items(f"{prefix}{f.name}.", getattr(obj, f.name), out)
    else:
        out.append(f"{prefix[:-1]}={obj!r}")


def config_fingerprint(config: "PipelineConfig") -> str:
    """SHA-256 over the reward-relevant pipeline configuration.

    Covers the seed, the reward mapping count K, and every mapper / cost
    knob — the parameters of the pure reward function.  Adding a field to
    ``MapperConfig`` or ``CostModelConfig`` automatically extends the
    fingerprint (fields are enumerated reflectively), so forgetting to
    invalidate on a new knob is not possible.
    """
    items: list[str] = [
        f"seed={config.seed!r}",
        f"search.reward_mappings={config.search.reward_mappings!r}",
        f"search.seed={config.search.seed!r}",
    ]
    _config_items("mapper.", config.mapper, items)
    _config_items("cost.", config.cost, items)
    digest = hashlib.sha256()
    for item in sorted(items):
        digest.update(item.encode("utf-8") + b"\x00")
    return digest.hexdigest()
