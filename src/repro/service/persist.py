"""Cross-run cache persistence: save / load the search's warm state.

One :class:`CacheStore` bundle holds everything a later run over the same
(catalogue, workload, reward-relevant configuration) can reuse:

* the cross-worker **reward table** (state fingerprint → reward) — the big
  win: every previously explored state is answered from the table instead of
  re-running K interface mappings and their reward queries;
* the catalogue's **compiled plan** entries — plans reference tables by name
  and rebind to any catalogue with the same content fingerprint;
* the catalogue's persistable **mapping-memo fragments** (see
  :meth:`repro.mapping.memo.MappingMemo.export_entries`).

Keying and validation
---------------------

The bundle's filename is the :func:`persistence_key` — SHA-256 over the
catalogue, workload and config fingerprints — so different content can never
collide on a path.  The file itself is defended in depth: a fixed magic
prefix, then a JSON header carrying the format version, the expected key and
the payload's SHA-256, then the pickled payload.  :meth:`CacheStore.load`
validates *all three* before unpickling a single payload byte; any mismatch
— tampered payload, truncated file, version bump, key collision — rejects
the file and the caller falls back to a cold run.  Rejection is silent by
design: a damaged cache must never be able to fail a generation request.

Writes go through a temp file + ``fsync`` + :func:`os.replace` (and a
best-effort directory fsync) so a crash — or power loss — mid-save leaves
either the old bundle or the complete new one, never a torn file.  The
``corrupt-persisted-cache`` fault site of :mod:`repro.faults` flips a
payload bit *after* the header digest is computed, exercising exactly the
torn-file path the validator must reject.

Because rewards are pure functions of ``(seed, state fingerprint)`` (see
:func:`repro.core.pipeline.make_reward_fn`), reloading a bundle changes how
*fast* states are evaluated, never *which* interface comes out: cold,
warm-pool and persisted-reload runs are byte-identical
(``tests/test_service.py`` sweeps this over every workload).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from .. import faults
from ..obs import span
from .fingerprint import catalog_fingerprint, config_fingerprint, workload_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import PipelineConfig
    from ..database.catalog import Catalog
    from ..sqlparser.ast_nodes import Node

__all__ = ["CACHE_VERSION", "CacheBundle", "CacheStore", "persistence_key"]

#: Format / code salt of persisted bundles.  Bump whenever the pickled
#: artifact layout *or the semantics of what is cached* changes (reward
#: function, plan representation, memo key scheme): a version mismatch is a
#: validated rejection at load time, so stale bundles from older code can
#: never alias into a newer process.
CACHE_VERSION = 1

_MAGIC = b"PI2CACHE\x00"


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def persistence_key(
    catalog: "Catalog", asts: Sequence["Node"], config: "PipelineConfig"
) -> str:
    """The bundle key: one SHA-256 over the three content fingerprints."""
    digest = hashlib.sha256()
    digest.update(catalog_fingerprint(catalog).encode("ascii") + b"|")
    digest.update(workload_fingerprint(asts).encode("ascii") + b"|")
    digest.update(config_fingerprint(config).encode("ascii"))
    return digest.hexdigest()


@dataclass
class CacheBundle:
    """The warm state one run hands to the next."""

    rewards: dict = field(default_factory=dict)
    plans: list = field(default_factory=list)
    memo: list = field(default_factory=list)


class CacheStore:
    """Directory of persisted cache bundles, one file per persistence key."""

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        #: load/save outcomes for observability (CLI summaries, tests, and
        #: the run registry's ``persist.*`` counters)
        self.loads = 0
        self.load_rejects = 0
        self.saves = 0
        #: load attempts that found no bundle file at all (cold cache)
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pi2cache"

    def save(
        self,
        key: str,
        rewards: Optional[dict] = None,
        plans: Optional[list] = None,
        memo: Optional[list] = None,
    ) -> Optional[Path]:
        """Persist a bundle atomically; returns the path, or ``None`` when
        nothing in the bundle could be pickled (persistence is best-effort —
        an unpicklable plan must never fail the generation that produced it).
        """
        bundle = {
            "rewards": dict(rewards or {}),
            "plans": list(plans or []),
            "memo": list(memo or []),
        }
        try:
            payload = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # drop the unpicklable parts and retry with rewards alone, which
            # are plain {str: float} and always serializable
            try:
                payload = pickle.dumps(
                    {"rewards": bundle["rewards"], "plans": [], "memo": []},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception:  # pragma: no cover - rewards are primitives
                return None
        header = json.dumps(
            {
                "version": CACHE_VERSION,
                "key": key,
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
                "payload_bytes": len(payload),
            },
            sort_keys=True,
        ).encode("ascii")

        if faults.fire("corrupt-persisted-cache"):
            # bit-flip the payload *after* the header digest was computed:
            # the file lands with a clean header over dirty bytes, exactly
            # what a torn write produces, and load() must reject it
            payload = bytes([payload[0] ^ 0xFF]) + payload[1:]

        self.root.mkdir(parents=True, exist_ok=True)
        target = self.path_for(key)
        with span("persist.save", key=key[:16], payload_bytes=len(payload)):
            fd, tmp_path = tempfile.mkstemp(
                dir=str(self.root), prefix=f".{key[:16]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(_MAGIC)
                    handle.write(header)
                    handle.write(b"\n")
                    handle.write(payload)
                    # durability, not just atomicity: the data must be on
                    # disk before the rename publishes it
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, target)
                _fsync_dir(self.root)
            except Exception:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        self.saves += 1
        return target

    def load(self, key: str) -> Optional[CacheBundle]:
        """Load and validate the bundle for ``key``; ``None`` on any defect.

        Validation order matters: magic, header well-formedness, format
        version, key match and payload digest are all checked *before* the
        payload is unpickled, so a tampered file is rejected without ever
        deserializing attacker-controlled bytes.
        """
        path = self.path_for(key)
        with span("persist.load", key=key[:16]):
            try:
                blob = path.read_bytes()
            except OSError:
                self.misses += 1
                return None
            bundle = self._validate(key, blob)
        if bundle is None:
            self.load_rejects += 1
        else:
            self.loads += 1
        return bundle

    @staticmethod
    def _validate(key: str, blob: bytes) -> Optional[CacheBundle]:
        if not blob.startswith(_MAGIC):
            return None
        body = blob[len(_MAGIC):]
        newline = body.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(body[:newline].decode("ascii"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(header, dict):
            return None
        if header.get("version") != CACHE_VERSION:
            return None
        if header.get("key") != key:
            return None
        payload = body[newline + 1:]
        if header.get("payload_bytes") != len(payload):
            return None
        if header.get("payload_sha256") != hashlib.sha256(payload).hexdigest():
            return None
        try:
            data = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(data, dict):
            return None
        rewards = data.get("rewards")
        if not isinstance(rewards, dict) or not all(
            isinstance(k, str) and isinstance(v, (int, float))
            for k, v in rewards.items()
        ):
            return None
        plans = data.get("plans")
        memo = data.get("memo")
        if not isinstance(plans, list) or not isinstance(memo, list):
            return None
        return CacheBundle(rewards=rewards, plans=plans, memo=memo)
