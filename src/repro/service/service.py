"""The long-lived generation service: one pool, many requests.

:class:`GenerationService` is the front door of the persistent-service
stack.  It owns a :class:`~repro.service.pool.WorkerPool` (built lazily on
the first request that resolves to the process backend), a registry of
cross-request reward tables keyed by the persistence key, and — when given a
cache directory — cross-run persistence through the pipeline's
``config.cache_dir`` path.  Every request reports per-request warm/cold
statistics via :class:`RequestStats`.

What a repeat request skips, layer by layer:

=====================  ====================================================
process spawn           paid once at pool build (``pool.spawn_seconds``)
catalogue rebuild       workers attached the shared-memory segment once
plan cache / memo       per-process caches persist across tasks
reward evaluation       the per-key reward table answers previously
                        explored states (and persists across *runs* via the
                        cache directory)
=====================  ====================================================

Because rewards are pure functions of (seed, state), none of this reuse can
change the generated interface — warm requests are byte-identical to cold
ones, only faster.

Resilience (PR 10): a request that resolves to the process backend runs down
a **degradation ladder** instead of failing on the first worker problem —

1. the (warm or cold) pool, which itself retries tasks and replaces dead
   workers (:meth:`repro.service.pool.WorkerPool.run_task`);
2. a **fresh pool**, rebuilt from scratch when the first one could not
   recover (``degraded="fresh-pool"``);
3. the **serial in-process backend**, which needs no worker processes and
   always completes (``degraded="serial"``).

A ``request_deadline_seconds`` budget skips remaining pool rungs once it
expires (``deadline_exceeded=True``).  Every rung produces byte-identical
output (rewards are pure), so degradation trades speed, never correctness;
:class:`RequestStats` records what the request survived.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.config import PipelineConfig, PipelineResult
from ..core.pipeline import GenerationRuntime, generate_interface
from ..database.catalog import Catalog
from ..database.datasets import standard_catalog
from ..difftree.builder import parse_queries
from ..faults import DeadlineExceeded, GenerationFailure, WorkerFailure
from ..obs import GLOBAL_METRICS, MetricsRegistry, publish_request_stats, span
from ..search.backends import resolve_backend_name
from ..search.backends.base import RewardTable
from ..search.backends.serial import SerialBackend
from .persist import persistence_key
from .pool import PooledProcessBackend, WorkerPool

__all__ = ["GenerationService", "RequestStats"]


@dataclass
class RequestStats:
    """Warm/cold and resilience observability for one service request."""

    #: ``"warm"`` / ``"cold"`` pool state the request ran under (``None``
    #: when the request ran on an in-process backend without a pool)
    pool: Optional[str]
    seconds: float
    warmup_seconds: float
    #: reward-table entries available *before* the search (carried over from
    #: earlier requests or loaded from the persisted cache)
    reward_table_loaded: int
    reward_table_hits: int
    backend: str
    #: supervised task replays the pool needed for this request (0 on the
    #: happy path)
    retries: int = 0
    #: worker processes respawned while serving this request
    workers_replaced: int = 0
    #: degradation rung that produced the result — ``"fresh-pool"`` or
    #: ``"serial"`` — or ``None`` when the requested backend served it
    degraded: Optional[str] = None
    #: the request-level deadline expired while serving (the serial rung
    #: finished the request anyway)
    deadline_exceeded: bool = False

    def summary(self) -> str:
        pool = self.pool or "off"
        line = (
            f"pool={pool} backend={self.backend} "
            f"reward_table_loaded={self.reward_table_loaded} "
            f"reward_table_hits={self.reward_table_hits} "
            f"warmup={self.warmup_seconds:.3f}s total={self.seconds:.3f}s"
        )
        if self.retries or self.workers_replaced:
            line += f" retries={self.retries} workers_replaced={self.workers_replaced}"
        if self.degraded:
            line += f" degraded={self.degraded}"
        if self.deadline_exceeded:
            line += " deadline_exceeded"
        return line


class GenerationService:
    """Serve repeated interface generations over one catalogue.

    Use as a context manager (or call :meth:`close`) so the pool's processes
    and the catalogue's shared-memory segment are released deterministically.

    Args:
        catalog: the catalogue all requests run against; defaults to the
            synthetic standard catalogue for the config's seed / scale.
        config: base pipeline configuration for requests (per-request
            overrides go through :meth:`generate`'s ``config``).
        cache_dir: when set, every request persists / reloads its caches
            under this directory (see :mod:`repro.service.persist`).
        use_shm: place the catalogue in shared memory for pool workers
            (falls back to pickling when unavailable).
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        config: Optional[PipelineConfig] = None,
        cache_dir: Optional[str] = None,
        use_shm: bool = True,
    ) -> None:
        self.config = config or PipelineConfig()
        self.catalog = catalog or standard_catalog(
            seed=self.config.seed, scale=self.config.catalog_scale
        )
        self.cache_dir = cache_dir
        self.use_shm = use_shm
        self.requests: list[RequestStats] = []
        self._pool: Optional[WorkerPool] = None
        self._pool_backend: Optional[PooledProcessBackend] = None
        #: persistence key -> cross-request reward table
        self._tables: dict[str, RewardTable] = {}
        self._keys_served: set[str] = set()
        self.closed = False

    # -- pool management -----------------------------------------------------

    def _pooled_backend_for(self, config: PipelineConfig) -> Optional[PooledProcessBackend]:
        """The live pool backend when the request resolves to ``process``."""
        resolved = resolve_backend_name(config.search.backend, has_process_spec=True)
        if resolved != "process":
            return None
        if self._pool is None:
            self._pool = WorkerPool(
                self.catalog, config.search.workers, use_shm=self.use_shm
            )
            self._pool_backend = PooledProcessBackend(self._pool)
        return self._pool_backend

    def _reset_pool(self) -> None:
        """Release the current pool so the next rung builds a fresh one."""
        pool, self._pool, self._pool_backend = self._pool, None, None
        if pool is not None:
            pool.close()

    def _pool_counter_delta(self, name: str, base: int) -> int:
        """How much the live pool's supervisor counter grew past ``base``."""
        if self._pool is None:
            return 0
        return max(0, int(self._pool.supervisor.value(name, 0)) - base)

    # -- requests -------------------------------------------------------------

    def generate(
        self,
        queries: Sequence,
        config: Optional[PipelineConfig] = None,
    ) -> PipelineResult:
        """Generate an interface, reusing every warm layer the service holds."""
        if self.closed:
            raise RuntimeError("generation service is closed")
        config = config or self.config
        if self.cache_dir is not None and config.cache_dir is None:
            config = config.replace(cache_dir=self.cache_dir)

        asts = parse_queries(list(queries))
        key = persistence_key(self.catalog, asts, config)
        table = self._tables.get(key)
        if table is None:
            table = RewardTable()
            self._tables[key] = table
        loaded_before = table.size()

        process_resolved = (
            resolve_backend_name(config.search.backend, has_process_spec=True)
            == "process"
        )
        request_deadline = getattr(
            config.search, "request_deadline_seconds", None
        )
        deadline_at = (
            time.monotonic() + request_deadline if request_deadline else None
        )
        rungs = ("pool", "fresh-pool", "serial") if process_resolved else ("direct",)

        pool_state: Optional[str] = None
        degraded: Optional[str] = None
        deadline_exceeded = False
        retries = 0
        replaced = 0
        result: Optional[PipelineResult] = None
        for rung in rungs:
            terminal = rung in ("serial", "direct")
            if (
                not terminal
                and deadline_at is not None
                and time.monotonic() >= deadline_at
            ):
                # no budget left for (re)building worker processes: fall
                # through to the serial rung, which always completes
                deadline_exceeded = True
                continue
            if rung == "fresh-pool":
                degraded = "fresh-pool"
            elif rung == "serial":
                degraded = "serial"
            base_retries = base_replaced = 0
            try:
                if rung in ("pool", "fresh-pool"):
                    backend = self._pooled_backend_for(config)
                    backend.bind_request(asts, config)
                    pool_state = "warm" if backend.pool.warm else "cold"
                    base_retries = int(
                        backend.pool.supervisor.value("pool.task_retries", 0)
                    )
                    base_replaced = int(
                        backend.pool.supervisor.value("pool.workers_replaced", 0)
                    )
                    runtime = GenerationRuntime(
                        backend_instance=backend,
                        reward_table=table,
                        pool=pool_state,
                    )
                elif rung == "serial":
                    # bypasses both the name resolution and the
                    # REPRO_SEARCH_BACKEND override: no worker processes
                    runtime = GenerationRuntime(
                        backend_instance=SerialBackend(),
                        reward_table=table,
                        pool=pool_state,
                    )
                else:  # direct: the in-process backend the config asked for
                    pool_state = (
                        "warm"
                        if loaded_before or key in self._keys_served
                        else "cold"
                    )
                    runtime = GenerationRuntime(
                        backend_instance=None, reward_table=table, pool=pool_state
                    )
                with span(
                    "service.request", pool=pool_state, rung=rung, key=key[:16]
                ):
                    result = generate_interface(
                        asts, catalog=self.catalog, config=config, runtime=runtime
                    )
                retries += self._pool_counter_delta("pool.task_retries", base_retries)
                replaced += self._pool_counter_delta(
                    "pool.workers_replaced", base_replaced
                )
                break
            except (WorkerFailure, DeadlineExceeded) as exc:
                # harvest the failed rung's supervision counters before the
                # pool object is dropped, then step down the ladder
                retries += self._pool_counter_delta("pool.task_retries", base_retries)
                replaced += self._pool_counter_delta(
                    "pool.workers_replaced", base_replaced
                )
                if isinstance(exc, DeadlineExceeded):
                    deadline_exceeded = True
                self._reset_pool()
                GLOBAL_METRICS.counter("service.rung_failures").inc()
                if terminal:  # pragma: no cover - serial cannot fail this way
                    raise GenerationFailure(
                        f"every degradation rung failed (last: {exc})"
                    ) from exc
        if result is None:  # pragma: no cover - defensive
            raise GenerationFailure("no degradation rung produced a result")
        self._keys_served.add(key)
        stats = result.search_stats
        degraded = degraded or getattr(stats, "degraded", None)
        stats.degraded = degraded
        # the table may have been populated by a persisted-cache load inside
        # the pipeline; what the *search* saw preloaded is authoritative
        loaded = max(loaded_before, getattr(stats, "reward_table_loaded", 0))
        stats.reward_table_loaded = loaded
        request = RequestStats(
            pool=pool_state,
            seconds=result.total_seconds,
            warmup_seconds=stats.warmup_seconds,
            reward_table_loaded=loaded,
            reward_table_hits=stats.reward_table_hits,
            backend=stats.backend,
            retries=retries,
            workers_replaced=replaced,
            degraded=degraded,
            deadline_exceeded=deadline_exceeded,
        )
        self.requests.append(request)
        # fold the request view into the run's metrics (and the process-wide
        # accumulator) so service.* rides along in trace/stats exports
        registry = MetricsRegistry()
        publish_request_stats(request, registry)
        if self._pool is not None:
            registry.merge(self._pool.metrics.snapshot())
            registry.merge(self._pool.supervisor.snapshot())
        GLOBAL_METRICS.merge(registry.snapshot())
        if result.metrics is not None:
            result.metrics.update(registry.as_dict())
        return result

    def generate_workload(self, workload, config: Optional[PipelineConfig] = None):
        """Generate for a named workload log."""
        from ..workloads.logs import Workload, get_workload

        if isinstance(workload, str):
            workload = get_workload(workload)
        assert isinstance(workload, Workload)
        return self.generate(list(workload.queries), config=config)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release pool processes and shared-memory segments (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_backend = None

    def __enter__(self) -> "GenerationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
