"""The generated interface: views, interaction mappings, layout and cost.

An interface ``I = (V, M, L)`` (paper Section 2) maps every Difftree's result
to a visualization (``V``), every choice node to a widget or visualization
interaction (``M``) and arranges everything in a layout tree (``L``).  The
:class:`Interface` object is the pipeline's final output: it can describe
itself, report which widget/interaction controls which choice node, and is
executed by :mod:`repro.interface.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from ..difftree.tree import Difftree

if TYPE_CHECKING:  # type-only imports; avoids a circular import with repro.mapping
    from ..mapping.interactions import InteractionCandidate
    from ..mapping.layout import LayoutTree
    from ..mapping.visualization import VisMapping
    from ..mapping.widgets import WidgetCandidate


@dataclass
class View:
    """One visualization in the interface: a Difftree and its chart mapping."""

    tree: Difftree
    vis: VisMapping

    def describe(self) -> str:
        return f"{self.vis.describe()} over {len(self.tree.queries)} queries"


@dataclass
class AppliedWidget:
    """A widget included in the interface, bound to choice nodes of one view."""

    candidate: WidgetCandidate
    view_index: int

    @property
    def cover(self) -> frozenset[int]:
        return self.candidate.cover

    def describe(self) -> str:
        return f"{self.candidate.describe()} (view {self.view_index})"


@dataclass
class AppliedInteraction:
    """A visualization interaction included in the interface."""

    candidate: InteractionCandidate

    @property
    def cover(self) -> frozenset[int]:
        return self.candidate.cover

    @property
    def source_view_index(self) -> int:
        return self.candidate.source_tree_index

    def describe(self) -> str:
        return self.candidate.describe()


Mapping = Union[AppliedWidget, AppliedInteraction]


@dataclass
class CostBreakdown:
    """The cost-model terms of an interface (paper Section 5)."""

    manipulation: float = 0.0
    navigation: float = 0.0
    layout_penalty: float = 0.0

    @property
    def total(self) -> float:
        return self.manipulation + self.navigation + self.layout_penalty


@dataclass
class Interface:
    """A fully mapped interactive visualization interface."""

    views: list[View] = field(default_factory=list)
    widgets: list[AppliedWidget] = field(default_factory=list)
    interactions: list[AppliedInteraction] = field(default_factory=list)
    layout: Optional[LayoutTree] = None
    cost: Optional[CostBreakdown] = None

    # -- structure -----------------------------------------------------------

    def all_mappings(self) -> list[Mapping]:
        return [*self.widgets, *self.interactions]

    def choice_node_ids(self) -> frozenset[int]:
        ids: set[int] = set()
        for view in self.views:
            for node in view.tree.choice_nodes():
                ids.add(node.node_id)
        return frozenset(ids)

    def covered_choice_node_ids(self) -> frozenset[int]:
        covered: set[int] = set()
        for mapping in self.all_mappings():
            covered.update(mapping.cover)
        return frozenset(covered)

    def is_complete(self) -> bool:
        """Every choice node must be covered by exactly one mapping."""
        ids = self.choice_node_ids()
        covered = self.covered_choice_node_ids()
        if ids - covered:
            return False
        # exact cover: no choice node bound twice
        seen: set[int] = set()
        for mapping in self.all_mappings():
            if seen & mapping.cover:
                return False
            seen.update(mapping.cover)
        return True

    def mapping_for(self, node_id: int) -> Optional[Mapping]:
        for mapping in self.all_mappings():
            if node_id in mapping.cover:
                return mapping
        return None

    def view_for_widget(self, widget: AppliedWidget) -> View:
        return self.views[widget.view_index]

    def num_views(self) -> int:
        return len(self.views)

    def size(self) -> tuple[float, float]:
        if self.layout is None:
            return (0.0, 0.0)
        return self.layout.size()

    # -- reporting --------------------------------------------------------------

    def interaction_kinds(self) -> set[str]:
        """The set of visualization-interaction names used by the interface."""
        return {ai.candidate.interaction for ai in self.interactions}

    def widget_kinds(self) -> set[str]:
        return {aw.candidate.widget.name for aw in self.widgets}

    def describe(self) -> str:
        """A multi-line human readable summary of the interface."""
        lines = [f"Interface with {len(self.views)} view(s)"]
        for i, view in enumerate(self.views):
            lines.append(f"  view {i}: {view.vis.describe()}")
            for widget in self.widgets:
                if widget.view_index == i:
                    lines.append(f"    widget: {widget.describe()}")
            for interaction in self.interactions:
                if interaction.source_view_index == i:
                    lines.append(f"    interaction: {interaction.describe()}")
        if self.cost is not None:
            lines.append(
                f"  cost: manipulation={self.cost.manipulation:.1f} "
                f"navigation={self.cost.navigation:.1f} "
                f"layout={self.cost.layout_penalty:.1f} "
                f"total={self.cost.total:.1f}"
            )
        if self.layout is not None:
            width, height = self.layout.size()
            lines.append(f"  size: {width:.0f} x {height:.0f} px")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-friendly summary (used by the exporter and tests)."""
        return {
            "views": [
                {
                    "vis": view.vis.describe(),
                    "queries": len(view.tree.queries),
                    "choice_nodes": len(view.tree.choice_nodes()),
                }
                for view in self.views
            ],
            "widgets": [w.describe() for w in self.widgets],
            "interactions": [i.describe() for i in self.interactions],
            "cost": None
            if self.cost is None
            else {
                "manipulation": self.cost.manipulation,
                "navigation": self.cost.navigation,
                "layout_penalty": self.cost.layout_penalty,
                "total": self.cost.total,
            },
            "size": list(self.size()),
        }
