"""Headless interactive runtime for generated interfaces.

The paper's prototype renders interfaces in a browser; this reproduction
replaces that layer with a deterministic, headless runtime (see DESIGN.md,
substitutions).  The runtime keeps the *current parameter* of every choice
node, accepts widget manipulations and visualization-interaction events,
re-resolves each Difftree to SQL, executes it against the database substrate
and exposes the refreshed results — i.e. exactly what the browser front end
would do, minus the pixels.

It also provides :meth:`InterfaceRuntime.replay_query`, which drives the
interface with the manipulations needed to express one input query and checks
that the produced SQL matches — the end-to-end expressiveness guarantee the
paper cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..database.executor import Executor
from ..database.table import ResultTable
from ..difftree.nodes import ChoiceNode
from ..difftree.resolve import FlatBindingSource, resolve
from ..sqlparser.ast_nodes import Node
from ..sqlparser.render import to_sql
from .spec import AppliedInteraction, AppliedWidget, Interface


class RuntimeError_(Exception):
    """Raised when an event cannot be applied to the interface."""


@dataclass
class ViewState:
    """Current state of one view: resolved SQL and its latest result."""

    sql: str = ""
    result: Optional[ResultTable] = None
    error: Optional[str] = None


@dataclass
class EventRecord:
    """A log entry of one user manipulation processed by the runtime."""

    kind: str                 # "widget" or "interaction"
    target: str               # widget / interaction description
    payload: object
    affected_views: list[int] = field(default_factory=list)


class InterfaceRuntime:
    """Executes a generated :class:`Interface` against the database."""

    def __init__(self, interface: Interface, executor: Executor) -> None:
        self.interface = interface
        self.executor = executor
        #: current parameter per choice node id (None = default)
        self.params: dict[int, object] = {}
        self.view_states: list[ViewState] = [ViewState() for _ in interface.views]
        self.event_log: list[EventRecord] = []
        self.refresh_all()

    # -- resolution / execution -------------------------------------------------

    def current_query(self, view_index: int) -> Node:
        """The AST the view currently displays, under the current parameters."""
        view = self.interface.views[view_index]
        source = FlatBindingSource(self.params)
        return resolve(view.tree.root, source)

    def refresh(self, view_index: int) -> ViewState:
        """Re-resolve and re-execute one view."""
        state = self.view_states[view_index]
        try:
            ast = self.current_query(view_index)
            state.sql = to_sql(ast)
            state.result = self.executor.execute(ast)
            state.error = None
        except Exception as exc:  # surfaced to the caller, never crashes the UI
            state.error = str(exc)
            state.result = None
        return state

    def refresh_all(self) -> list[ViewState]:
        return [self.refresh(i) for i in range(len(self.view_states))]

    # -- event handling -------------------------------------------------------------

    def set_widget(self, widget: AppliedWidget, value: object) -> list[int]:
        """Simulate the user manipulating a widget.

        ``value`` semantics follow the widget type: the option index (or the
        option value) for enumerating widgets, the numeric value for sliders,
        a (lo, hi) pair for range sliders, a bool for toggles, a list for
        checkboxes.
        """
        affected = self._bind_node_values(widget.candidate.node, value)
        self.event_log.append(
            EventRecord("widget", widget.describe(), value, affected)
        )
        for view_index in affected:
            self.refresh(view_index)
        return affected

    def trigger_interaction(
        self, interaction: AppliedInteraction, value: object
    ) -> list[int]:
        """Simulate a visualization interaction event (click / brush / pan…).

        ``value`` is the event payload: a single value for click streams, a
        (lo, hi) pair for a single range stream, or a tuple of pairs when the
        interaction emits several range streams (pan / zoom / brush-xy).
        """
        affected: list[int] = []
        bindings = interaction.candidate.stream_bindings
        if len(bindings) == 1:
            affected.extend(self._bind_node_values(bindings[0][1], value))
        else:
            payloads = value if isinstance(value, (list, tuple)) else [value]
            targets = self._distinct_targets(bindings)
            for target, payload in zip(targets, payloads):
                affected.extend(self._bind_node_values(target, payload))
        affected = sorted(set(affected))
        self.event_log.append(
            EventRecord(
                "interaction", interaction.describe(), value, affected
            )
        )
        for view_index in affected:
            self.refresh(view_index)
        return affected

    @staticmethod
    def _distinct_targets(bindings) -> list[Node]:
        """Targets of a multi-stream interaction.

        When every stream is bound to the same ancestor node (e.g. pan bound
        to a conjunction of two BETWEEN predicates), the payloads are routed
        to that node's dynamic children in order.
        """
        nodes = [node for _, node, _ in bindings]
        if len({id(n) for n in nodes}) > 1:
            return nodes
        parent = nodes[0]
        dynamic_children = [c for c in parent.children if c.contains_choice()]
        return dynamic_children if len(dynamic_children) >= 2 else nodes

    # -- binding helpers ----------------------------------------------------------------

    def _bind_node_values(self, node: Node, value: object) -> list[int]:
        """Bind an event payload to the choice nodes under ``node``.

        Returns the indices of the views whose Difftree contains those nodes.
        """
        from ..mapping.widgets import top_choice_nodes

        choice_nodes = top_choice_nodes(node)
        if not choice_nodes:
            return []
        if len(choice_nodes) == 1:
            self.params[choice_nodes[0].node_id] = self._coerce_param(
                choice_nodes[0], value
            )
        else:
            values = (
                list(value)
                if isinstance(value, (list, tuple))
                else [value] * len(choice_nodes)
            )
            for choice, v in zip(choice_nodes, values):
                self.params[choice.node_id] = self._coerce_param(choice, v)
        ids = {n.node_id for n in choice_nodes}
        affected = []
        for i, view in enumerate(self.interface.views):
            view_ids = {n.node_id for n in view.tree.choice_nodes()}
            if view_ids & ids:
                affected.append(i)
        return affected

    @staticmethod
    def _coerce_param(node: ChoiceNode, value: object) -> object:
        """Translate a UI payload into the choice node's parameter space."""
        from ..difftree.nodes import AnyNode, OptNode, ValNode

        if isinstance(node, ValNode):
            observed = node.observed_values()
            if (
                isinstance(value, int)
                and not isinstance(value, bool)
                and observed
                and not all(isinstance(v, int) for v in observed)
                and 0 <= value < len(observed)
            ):
                # enumerating widgets (radio / dropdown) send option *indices*;
                # translate them into the VAL's observed literal values
                return observed[value]
            return value
        if isinstance(node, OptNode):
            return bool(value)
        if isinstance(node, AnyNode):
            if isinstance(value, bool) and node.is_opt:
                # toggles: True = first non-empty child, False = the empty child
                if value:
                    return next(
                        i for i, c in enumerate(node.children) if c.label != "EMPTY"
                    )
                return next(
                    i for i, c in enumerate(node.children) if c.label == "EMPTY"
                )
            if isinstance(value, int) and not isinstance(value, bool):
                return value
            # match by literal value or rendered label
            for i, child in enumerate(node.children):
                if child.value == value:
                    return i
            return 0
        return value

    # -- expressiveness replay ---------------------------------------------------------------

    def replay_query(self, query_index: int) -> bool:
        """Drive the interface so that some view displays input query ``query_index``.

        Uses the Difftree derivation of the query to set every choice-node
        parameter, refreshes the affected view and checks the resolved SQL
        matches the original query exactly.
        """
        # find the view that expresses this query
        target_query = None
        for view_index, view in enumerate(self.interface.views):
            for q_idx, (q, derivation) in enumerate(
                zip(view.tree.queries, view.tree.derivations())
            ):
                _ = q_idx
                if derivation is None:
                    continue
                if target_query is None and self._global_index(q) == query_index:
                    target_query = q
                    # apply every binding of the derivation as the current
                    # params; nodes bound several times (under a MULTI) get a
                    # list consumed sequentially by the FlatBindingSource
                    per_node: dict[int, list[object]] = {}
                    for binding in derivation:
                        per_node.setdefault(binding.node_id, []).append(binding.param)
                    for node_id, values in per_node.items():
                        self.params[node_id] = (
                            values[0] if len(values) == 1 else list(values)
                        )
                    state = self.refresh(view_index)
                    expected = to_sql(q)
                    return state.sql == expected and state.error is None
        return False

    def _global_index(self, query: Node) -> int:
        """Position of a query in the interface's global query sequence."""
        seen: list[str] = []
        for view in self.interface.views:
            for q in view.tree.queries:
                fp = q.fingerprint()
                if fp not in seen:
                    seen.append(fp)
        try:
            return seen.index(query.fingerprint())
        except ValueError:
            return -1

    # -- reporting ----------------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-friendly snapshot of the runtime state (used by the exporter)."""
        return {
            "params": dict(self.params),
            "views": [
                {
                    "sql": state.sql,
                    "rows": len(state.result.rows) if state.result else 0,
                    "columns": state.result.column_names() if state.result else [],
                    "error": state.error,
                }
                for state in self.view_states
            ],
            "events": [
                {"kind": e.kind, "target": e.target, "payload": str(e.payload)}
                for e in self.event_log
            ],
        }
