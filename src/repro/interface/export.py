"""Export generated interfaces to self-contained HTML and JSON.

The exporter is the offline stand-in for the paper's browser front end: it
produces a static HTML page showing, per view, the chart (rendered as inline
SVG from the current query result), the widgets with their options, and the
interactions the chart supports.  The page is informational — the interactive
behaviour itself is exercised by :mod:`repro.interface.runtime`.
"""

from __future__ import annotations

import html
import json
from typing import Optional

from ..database.table import ResultTable
from .runtime import InterfaceRuntime
from .spec import AppliedWidget, Interface

_SVG_WIDTH = 360
_SVG_HEIGHT = 220
_MARGIN = 30


def interface_to_json(interface: Interface, runtime: Optional[InterfaceRuntime] = None) -> str:
    """A JSON document describing the interface (and runtime state, if given)."""
    payload = interface.to_dict()
    if runtime is not None:
        payload["runtime"] = runtime.snapshot()
    return json.dumps(payload, indent=2, default=str)


def interface_to_html(
    interface: Interface, runtime: Optional[InterfaceRuntime] = None, title: str = "PI2 interface"
) -> str:
    """A self-contained HTML page for the generated interface."""
    sections = []
    for view_index, view in enumerate(interface.views):
        widgets_html = "".join(
            _widget_html(w)
            for w in interface.widgets
            if w.view_index == view_index
        )
        interactions = [
            i.candidate.interaction
            for i in interface.interactions
            if i.source_view_index == view_index
        ]
        chart_svg = ""
        sql_text = ""
        if runtime is not None and view_index < len(runtime.view_states):
            state = runtime.view_states[view_index]
            sql_text = state.sql
            if state.result is not None:
                chart_svg = _chart_svg(view.vis.vis_type.name, view.vis, state.result)
        sections.append(
            f"""
            <section class="view">
              <h2>View {view_index}: {html.escape(view.vis.describe())}</h2>
              <div class="row">
                <div class="widgets">{widgets_html or '<em>no widgets</em>'}</div>
                <div class="chart">{chart_svg or '<em>chart preview unavailable</em>'}</div>
              </div>
              <p class="interactions">interactions: {html.escape(', '.join(interactions) or 'none')}</p>
              <pre class="sql">{html.escape(sql_text)}</pre>
            </section>
            """
        )
    cost_html = ""
    if interface.cost is not None:
        cost_html = (
            f"<p>cost: manipulation={interface.cost.manipulation:.1f}, "
            f"navigation={interface.cost.navigation:.1f}, "
            f"total={interface.cost.total:.1f}</p>"
        )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
 body {{ font-family: sans-serif; margin: 20px; }}
 section.view {{ border: 1px solid #ccc; border-radius: 6px; padding: 12px; margin-bottom: 16px; }}
 .row {{ display: flex; gap: 16px; }}
 .widgets {{ min-width: 220px; }}
 .widget {{ margin-bottom: 10px; padding: 6px; background: #f4f4f8; border-radius: 4px; }}
 .sql {{ background: #f8f8f2; padding: 6px; font-size: 12px; overflow-x: auto; }}
 .interactions {{ color: #555; font-size: 13px; }}
</style></head>
<body>
<h1>{html.escape(title)}</h1>
{cost_html}
{''.join(sections)}
</body></html>
"""


def _widget_html(widget: AppliedWidget) -> str:
    cand = widget.candidate
    name = html.escape(cand.widget.name)
    label = html.escape(cand.label or "")
    if cand.widget.name in ("slider", "range_slider") and cand.domain:
        body = f"domain [{cand.domain[0]} .. {cand.domain[1]}]"
    elif cand.options:
        body = ", ".join(html.escape(str(o)) for o in cand.options[:8])
        if len(cand.options) > 8:
            body += ", …"
    else:
        body = "free input"
    return f'<div class="widget"><strong>{name}</strong> <span>{label}</span><br/>{body}</div>'


def _chart_svg(vis_name: str, vis, result: ResultTable) -> str:
    """A minimal inline-SVG rendering of the first ~200 records."""
    if not result.rows:
        return "<em>empty result</em>"
    if vis_name == "table":
        return _table_html(result)
    x_idx = vis.attribute_for("x")
    y_idx = vis.attribute_for("y")
    if x_idx is None or y_idx is None:
        return _table_html(result)
    xs = [row[x_idx] for row in result.rows[:200]]
    ys = [row[y_idx] for row in result.rows[:200]]
    numeric_x = all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in xs)
    plot_w = _SVG_WIDTH - 2 * _MARGIN
    plot_h = _SVG_HEIGHT - 2 * _MARGIN

    def scale_y(v: float, lo: float, hi: float) -> float:
        span = (hi - lo) or 1.0
        return _SVG_HEIGHT - _MARGIN - (v - lo) / span * plot_h

    y_vals = [v for v in ys if isinstance(v, (int, float))] or [0.0]
    y_lo, y_hi = min(y_vals), max(y_vals)
    shapes = []
    if numeric_x:
        x_vals = [float(v) for v in xs]
        x_lo, x_hi = min(x_vals), max(x_vals)
        span = (x_hi - x_lo) or 1.0
        for xv, yv in zip(x_vals, ys):
            if not isinstance(yv, (int, float)):
                continue
            px = _MARGIN + (xv - x_lo) / span * plot_w
            py = scale_y(float(yv), y_lo, y_hi)
            if vis_name == "line":
                shapes.append((px, py))
            else:
                shapes.append((px, py))
        if vis_name == "line" and len(shapes) > 1:
            points = " ".join(f"{px:.1f},{py:.1f}" for px, py in sorted(shapes))
            body = f'<polyline fill="none" stroke="#4477aa" stroke-width="1.5" points="{points}"/>'
        else:
            body = "".join(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="2.5" fill="#4477aa"/>'
                for px, py in shapes
            )
    else:
        categories = list(dict.fromkeys(xs))
        bar_w = plot_w / max(1, len(categories))
        body_parts = []
        for i, cat in enumerate(categories):
            values = [
                float(yv)
                for xv, yv in zip(xs, ys)
                if xv == cat and isinstance(yv, (int, float))
            ]
            if not values:
                continue
            value = sum(values) / len(values)
            py = scale_y(value, min(0.0, y_lo), y_hi)
            height = _SVG_HEIGHT - _MARGIN - py
            body_parts.append(
                f'<rect x="{_MARGIN + i * bar_w + 2:.1f}" y="{py:.1f}" '
                f'width="{max(2.0, bar_w - 4):.1f}" height="{max(0.0, height):.1f}" fill="#4477aa"/>'
            )
        body = "".join(body_parts)
    axes = (
        f'<line x1="{_MARGIN}" y1="{_SVG_HEIGHT-_MARGIN}" x2="{_SVG_WIDTH-_MARGIN}" '
        f'y2="{_SVG_HEIGHT-_MARGIN}" stroke="#333"/>'
        f'<line x1="{_MARGIN}" y1="{_MARGIN}" x2="{_MARGIN}" y2="{_SVG_HEIGHT-_MARGIN}" stroke="#333"/>'
    )
    return (
        f'<svg width="{_SVG_WIDTH}" height="{_SVG_HEIGHT}" '
        f'xmlns="http://www.w3.org/2000/svg">{axes}{body}</svg>'
    )


def _table_html(result: ResultTable, max_rows: int = 10) -> str:
    head = "".join(f"<th>{html.escape(c)}</th>" for c in result.column_names())
    rows = []
    for row in result.rows[:max_rows]:
        cells = "".join(f"<td>{html.escape(str(v))}</td>" for v in row)
        rows.append(f"<tr>{cells}</tr>")
    return (
        f'<table border="1" cellpadding="3" cellspacing="0">'
        f"<tr>{head}</tr>{''.join(rows)}</table>"
    )


def export_html(
    interface: Interface,
    path: str,
    runtime: Optional[InterfaceRuntime] = None,
    title: str = "PI2 interface",
) -> str:
    """Write the interface's HTML page to ``path`` and return the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(interface_to_html(interface, runtime, title))
    return path
