"""Interface model, headless interactive runtime and HTML/JSON export."""

from .export import export_html, interface_to_html, interface_to_json
from .runtime import EventRecord, InterfaceRuntime, ViewState
from .spec import (
    AppliedInteraction,
    AppliedWidget,
    CostBreakdown,
    Interface,
    Mapping,
    View,
)

__all__ = [
    "AppliedInteraction",
    "AppliedWidget",
    "CostBreakdown",
    "EventRecord",
    "Interface",
    "InterfaceRuntime",
    "Mapping",
    "View",
    "ViewState",
    "export_html",
    "interface_to_html",
    "interface_to_json",
]
