"""Export generated interfaces as Vega-Lite specifications.

The paper's prototype renders charts with a browser visualization stack; a
natural interchange format for the generated designs is `Vega-Lite
<https://vega.github.io/vega-lite/>`_, whose grammar of interactive graphics
the paper cites (Satyanarayan et al.).  This module converts each view of an
:class:`repro.interface.spec.Interface` into a Vega-Lite unit specification —
mark type, encodings derived from the visualization mapping, inline data from
the current runtime state, and parameter/selection stubs for the mapped
visualization interactions — so the output can be dropped into any Vega-Lite
host (a notebook, an Observable cell, a web page) for presentation-quality
rendering.

The export is intentionally one-way: the headless runtime in
:mod:`repro.interface.runtime` remains the authoritative executor of the
interface's behaviour; the Vega-Lite specs mirror its current state.
"""

from __future__ import annotations

import json
from typing import Optional

from ..database.table import ResultTable
from ..database.types import DataType
from .runtime import InterfaceRuntime
from .spec import Interface, View

#: Vega-Lite schema URL pinned for reproducibility.
VEGA_LITE_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"

#: Mapping from PI2 visualization types to Vega-Lite mark types.
_MARKS = {
    "point": "point",
    "bar": "bar",
    "line": "line",
    "table": "text",
}

#: Mapping from PI2 interaction names to Vega-Lite selection parameter stubs.
_INTERACTION_PARAMS = {
    "click": {"name": "click_select", "select": {"type": "point", "on": "click"}},
    "multi-click": {
        "name": "multi_select",
        "select": {"type": "point", "on": "click", "toggle": True},
    },
    "brush-x": {"name": "brush_x", "select": {"type": "interval", "encodings": ["x"]}},
    "brush-y": {"name": "brush_y", "select": {"type": "interval", "encodings": ["y"]}},
    "brush-xy": {"name": "brush_xy", "select": {"type": "interval"}},
    "pan": {"name": "pan_zoom", "select": "interval", "bind": "scales"},
    "zoom": {"name": "pan_zoom", "select": "interval", "bind": "scales"},
}


def _field_type(dtype: DataType, categorical: bool) -> str:
    """The Vega-Lite field type for a result column."""
    if dtype is DataType.DATE:
        return "temporal"
    if dtype.is_numeric and not categorical:
        return "quantitative"
    return "nominal"


def view_to_vegalite(
    view: View,
    result: Optional[ResultTable] = None,
    max_rows: int = 500,
) -> dict:
    """Convert one interface view into a Vega-Lite unit specification."""
    vis = view.vis
    spec: dict = {
        "$schema": VEGA_LITE_SCHEMA,
        "description": vis.describe(),
        "mark": _MARKS.get(vis.vis_type.name, "point"),
        "width": vis.vis_type.width,
        "height": vis.vis_type.height,
    }

    values: list[dict] = []
    if result is not None:
        values = result.to_dicts()[:max_rows]
    spec["data"] = {"values": values}

    encoding: dict = {}
    if vis.vis_type.accepts_any_schema or vis.result_schema is None:
        # tables are exported as a row-number / first-column text mark so the
        # spec still renders; the HTML exporter is the better table preview
        if result is not None and result.columns:
            encoding["text"] = {"field": result.columns[0].name, "type": "nominal"}
    else:
        for attr_index, variable in vis.assignment.items():
            attr = vis.result_schema.attribute(attr_index)
            field_name = (
                result.columns[attr_index].name
                if result is not None and attr_index < len(result.columns)
                else attr.display_name
            )
            categorical = variable in ("color", "shape") or (
                not attr.dtype.is_numeric
            )
            channel = {
                "x": "x",
                "y": "y",
                "color": "color",
                "shape": "shape",
                "size": "size",
            }.get(variable, variable)
            encoding[channel] = {
                "field": field_name,
                "type": _field_type(attr.dtype, categorical),
            }
    spec["encoding"] = encoding
    return spec


def interface_to_vegalite(
    interface: Interface,
    runtime: Optional[InterfaceRuntime] = None,
    title: str = "PI2 generated interface",
) -> dict:
    """Convert a whole interface into a vertically concatenated Vega-Lite spec.

    Each view becomes one unit spec; the interactions mapped onto a view are
    attached as Vega-Lite ``params`` (selection / scale-binding stubs), and
    the widgets are summarised in the view description so a human reader of
    the spec can see which query parameters the interface exposes.
    """
    units = []
    for view_index, view in enumerate(interface.views):
        result = None
        if runtime is not None and view_index < len(runtime.view_states):
            result = runtime.view_states[view_index].result
        unit = view_to_vegalite(view, result)

        params = []
        seen_param_names = set()
        for applied in interface.interactions:
            if applied.source_view_index != view_index:
                continue
            stub = _INTERACTION_PARAMS.get(applied.candidate.interaction)
            if stub is None or stub["name"] in seen_param_names:
                continue
            seen_param_names.add(stub["name"])
            params.append(stub)
        if params:
            unit["params"] = params

        widgets = [
            w.candidate.describe() for w in interface.widgets if w.view_index == view_index
        ]
        if widgets:
            unit["description"] += " | widgets: " + ", ".join(widgets)
        units.append(unit)

    if len(units) == 1:
        spec = dict(units[0])
        spec["title"] = title
        return spec
    return {
        "$schema": VEGA_LITE_SCHEMA,
        "title": title,
        "vconcat": [
            {k: v for k, v in unit.items() if k != "$schema"} for unit in units
        ],
    }


def export_vegalite(
    interface: Interface,
    path: str,
    runtime: Optional[InterfaceRuntime] = None,
    title: str = "PI2 generated interface",
) -> str:
    """Write the interface's Vega-Lite specification to ``path`` (JSON)."""
    spec = interface_to_vegalite(interface, runtime, title)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spec, fh, indent=2, default=str)
    return path
