"""Command-line interface for the PI2 reproduction.

Examples::

    # list the built-in evaluation workloads
    python -m repro list-workloads

    # generate the interface for a built-in workload and write an HTML preview
    python -m repro generate --workload covid --html covid.html

    # generate an interface from your own queries (one per line in a file,
    # or passed inline) against the synthetic catalogue
    python -m repro generate --query "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 60" \
                             --query "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 60 AND 90"

    # inspect a workload's queries
    python -m repro show --workload sales

    # repeat generations over a warm worker pool with cross-run persistence
    python -m repro generate --workload covid --backend process --pool \
                             --repeat 3 --cache-dir ~/.cache/pi2

    # serve queued generation requests (JSON lines on stdin or a file)
    echo '{"workload": "covid"}' | python -m repro serve --backend process
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .core.config import PipelineConfig
from .core.pipeline import generate_interface
from .database.datasets import standard_catalog
from .faults import GenerationFailure
from .database.executor import Executor
from .interface.export import export_html, interface_to_json
from .interface.runtime import InterfaceRuntime
from .taxonomy import classify_interface
from .workloads import WORKLOADS, get_workload

#: Exit code on Ctrl-C — the conventional 128 + SIGINT, *after* an orderly
#: teardown (pool drained, shared memory released, traces flushed).
EXIT_INTERRUPTED = 130

#: Exit code when every rung of the service's degradation ladder failed.
EXIT_GENERATION_FAILED = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PI2: generate interactive visualization interfaces from example queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an interface")
    gen.add_argument("--workload", help="name of a built-in workload (see list-workloads)")
    gen.add_argument(
        "--query",
        action="append",
        default=[],
        help="an input query (repeat the flag for a sequence)",
    )
    gen.add_argument("--queries-file", help="file with one SQL query per line")
    gen.add_argument(
        "--config",
        choices=["fast", "paper"],
        default="fast",
        help="search budget: 'fast' (default) or 'paper' (the paper's defaults)",
    )
    gen.add_argument("--seed", type=int, default=42, help="random seed")
    gen.add_argument("--scale", type=float, default=0.3, help="synthetic catalogue scale")
    gen.add_argument(
        "--workers",
        type=int,
        default=None,
        help="number of parallel MCTS workers (default: the config's p)",
    )
    gen.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="search-execution backend: 'serial' (round-robin, default), "
        "'thread' (one thread per worker), or 'process' (one OS process per "
        "worker — true wall-clock parallelism)",
    )
    gen.add_argument("--html", help="write a static HTML preview to this path")
    gen.add_argument("--json", dest="json_out", help="write the interface spec as JSON")
    gen.add_argument(
        "--taxonomy",
        action="store_true",
        help="also print the Yi et al. interaction-taxonomy classification",
    )
    gen.add_argument(
        "--pool",
        action="store_true",
        help="run through the persistent generation service: workers stay "
        "alive across --repeat runs (spawn + warm-up paid once)",
    )
    gen.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="generate this many times (with --pool, repeats reuse the warm "
        "pool and the reward table; default 1)",
    )
    gen.add_argument(
        "--cache-dir",
        help="persist the reward table / plan cache / mapping memo under "
        "this directory and reload them on later runs (keyed by catalogue, "
        "workload and config fingerprints)",
    )
    gen.add_argument(
        "--trace",
        help="record spans across the run and write a Chrome trace_event "
        "JSON file to this path (open in Perfetto / chrome://tracing)",
    )
    gen.add_argument(
        "--trace-jsonl",
        help="like --trace, but write the span event log as JSON lines",
    )
    _add_resilience_arguments(gen)

    serve = sub.add_parser(
        "serve",
        help="serve queued generation requests over one warm worker pool",
    )
    serve.add_argument(
        "--requests",
        help="file of JSON-lines requests ({\"workload\": name} or "
        "{\"queries\": [...]}); default: read from stdin",
    )
    serve.add_argument("--config", choices=["fast", "paper"], default="fast")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--scale", type=float, default=0.3)
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--backend", choices=["serial", "thread", "process"], default=None
    )
    serve.add_argument("--cache-dir", help="cross-run cache persistence directory")
    _add_resilience_arguments(serve)

    sub.add_parser("list-workloads", help="list the built-in evaluation workloads")

    show = sub.add_parser("show", help="print a workload's queries")
    show.add_argument("--workload", required=True)

    stats = sub.add_parser(
        "stats",
        help="pretty-print a recorded trace: per-phase wall-clock "
        "attribution and cache hit rates",
    )
    stats.add_argument("trace", help="a file written by generate --trace / --trace-jsonl")

    return parser


def _add_resilience_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per request; when it expires the service "
        "degrades to the serial in-process backend instead of waiting",
    )
    sub.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="supervised task replays after a worker failure before the "
        "pool gives up and the service degrades (default 2)",
    )


def _load_queries(args) -> list[str]:
    queries: list[str] = []
    if args.workload:
        queries.extend(get_workload(args.workload).queries)
    queries.extend(args.query)
    if args.queries_file:
        with open(args.queries_file, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line and not line.startswith("--"):
                    queries.append(line)
    if not queries:
        raise SystemExit("no input queries: pass --workload, --query or --queries-file")
    return queries


def _build_config(args) -> PipelineConfig:
    config = (
        PipelineConfig.paper_defaults(seed=args.seed)
        if args.config == "paper"
        else PipelineConfig.fast(seed=args.seed)
    )
    if args.workers is not None:
        config.search.workers = max(1, args.workers)
    if args.backend is not None:
        config.search.backend = args.backend
    if getattr(args, "cache_dir", None):
        config.cache_dir = args.cache_dir
    if getattr(args, "deadline", None) is not None:
        config.search.request_deadline_seconds = max(0.0, args.deadline)
    if getattr(args, "retries", None) is not None:
        config.search.task_retries = max(0, args.retries)
    return config


def _enable_tracing() -> None:
    """Turn the span tracer on, including in workers spawned later.

    The environment variable must be set *before* any worker process is
    spawned: spawn-method children initialise their tracer from it, so
    setting it here is what makes worker-side spans exist at all.
    """
    import os

    from .obs import TRACE_ENV_VAR, TRACER

    os.environ[TRACE_ENV_VAR] = "1"
    TRACER.enable()


def _write_traces(args, metrics: Optional[dict]) -> None:
    from .obs import TRACER, write_chrome_trace, write_jsonl

    events = TRACER.events()
    if args.trace:
        write_chrome_trace(args.trace, events, metrics=metrics)
        print(f"wrote Chrome trace ({len(events)} spans) to {args.trace}")
    if args.trace_jsonl:
        write_jsonl(args.trace_jsonl, events, metrics=metrics)
        print(f"wrote JSONL trace ({len(events)} spans) to {args.trace_jsonl}")


def _command_generate(args) -> int:
    queries = _load_queries(args)
    config = _build_config(args)
    catalog = standard_catalog(seed=args.seed, scale=args.scale)
    repeats = max(1, args.repeat)
    if args.trace or args.trace_jsonl:
        _enable_tracing()

    print(f"generating an interface from {len(queries)} queries …", file=sys.stderr)
    try:
        if args.pool:
            from .service import GenerationService

            # the context manager is the Ctrl-C guarantee: pool workers are
            # drained and the shared-memory segment unlinked on the way out
            with GenerationService(
                catalog=catalog, config=config, cache_dir=args.cache_dir
            ) as service:
                for run in range(repeats):
                    result = service.generate(queries)
                    print(
                        f"request {run + 1}/{repeats}: {service.requests[-1].summary()}",
                        file=sys.stderr,
                    )
        else:
            for run in range(repeats):
                result = generate_interface(queries, catalog=catalog, config=config)
                if repeats > 1:
                    print(
                        f"request {run + 1}/{repeats}: {result.total_seconds:.3f}s",
                        file=sys.stderr,
                    )
    except KeyboardInterrupt:
        # flush whatever spans were recorded before the interrupt so the
        # partial run stays debuggable, then let main() report the exit code
        if args.trace or args.trace_jsonl:
            _write_traces(args, None)
        raise
    interface = result.interface

    print(interface.describe())
    print(
        f"\ngenerated in {result.total_seconds:.1f}s "
        f"(search {result.search_seconds:.1f}s, mapping {result.mapping_seconds:.1f}s)"
    )
    print(_search_summary(result.search_stats, result.executor_stats))
    if args.taxonomy:
        print("\nYi et al. taxonomy coverage:")
        print(classify_interface(interface).describe())

    runtime: Optional[InterfaceRuntime] = None
    if args.html or args.json_out:
        runtime = InterfaceRuntime(interface, Executor(catalog))
    if args.html:
        export_html(interface, args.html, runtime, title="PI2 generated interface")
        print(f"wrote HTML preview to {args.html}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(interface_to_json(interface, runtime))
        print(f"wrote JSON spec to {args.json_out}")
    if args.trace or args.trace_jsonl:
        _write_traces(args, result.metrics)
    return 0


def _search_summary(stats, executor_stats=None) -> str:
    """One-line search diagnostics (backend, sharing, per-worker progress),
    plus the executor's columnar coverage: how many reward-loop queries ran
    vectorized, and — when any were routed to the row engine — the construct
    responsible, so coverage gaps are observable instead of a bare counter."""
    per_worker = ",".join(str(n) for n in stats.per_worker_iterations)
    line = (
        f"search: backend={stats.backend} "
        f"workers={len(stats.per_worker_iterations)} "
        f"iterations={stats.iterations} (per-worker {per_worker}) "
        f"sync-rounds={stats.sync_rounds} "
        f"states-evaluated={stats.states_evaluated} "
        f"reward-table-hits={stats.reward_table_hits}"
    )
    if stats.pool is not None:
        # pool-served request: make warm/cold behaviour observable without
        # reading JSON stats — warm requests show the preloaded table size
        line += (
            f" pool={stats.pool} reward_table_loaded={stats.reward_table_loaded}"
        )
    if stats.warmup_seconds:
        line += f" warmup={stats.warmup_seconds:.2f}s"
    if executor_stats is not None:
        line += (
            f"\ncolumnar: executions={executor_stats.columnar_executions} "
            f"fallbacks={executor_stats.columnar_fallbacks} "
            f"plan-gated={executor_stats.columnar_plan_gated}"
        )
        if executor_stats.fallback_reasons:
            reason, count = max(
                executor_stats.fallback_reasons.items(), key=lambda kv: kv[1]
            )
            line += f" (top reason: {reason} x{count})"
        if stats.backend == "process":
            # process workers rebuild their executors per process; their
            # PlanStats never merge back, so only this process's share
            # (final mapping + any serial work) is visible here
            line += " [parent process only; worker stats not merged]"
    return line


def _command_serve(args) -> int:
    """Multiplex queued generation requests over one persistent service.

    Requests are JSON lines — ``{"workload": "covid"}`` or ``{"queries":
    ["SELECT …", …]}`` — read from ``--requests`` or stdin.  Each reply is a
    JSON line with the request's warm/cold stats; a final summary line
    reports the whole session.
    """
    from .service import GenerationService

    config = _build_config(args)
    catalog = standard_catalog(seed=args.seed, scale=args.scale)

    if args.requests:
        handle = open(args.requests, "r", encoding="utf-8")
    else:
        handle = sys.stdin
    served = failed = 0
    try:
        with GenerationService(
            catalog=catalog, config=config, cache_dir=args.cache_dir
        ) as service:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    request = json.loads(line)
                    if "workload" in request:
                        result = service.generate_workload(request["workload"])
                    elif "queries" in request:
                        result = service.generate(request["queries"])
                    else:
                        raise ValueError(
                            "request needs a 'workload' or 'queries' field"
                        )
                except Exception as exc:
                    failed += 1
                    print(
                        json.dumps({"line": lineno, "error": str(exc)}),
                        flush=True,
                    )
                    continue
                served += 1
                stats = service.requests[-1]
                print(
                    json.dumps(
                        {
                            "line": lineno,
                            "pool": stats.pool,
                            "backend": stats.backend,
                            "seconds": round(stats.seconds, 4),
                            "warmup_seconds": round(stats.warmup_seconds, 4),
                            "reward_table_loaded": stats.reward_table_loaded,
                            "reward_table_hits": stats.reward_table_hits,
                            "retries": stats.retries,
                            "workers_replaced": stats.workers_replaced,
                            "degraded": stats.degraded,
                            "deadline_exceeded": stats.deadline_exceeded,
                            "cost": result.cost,
                            "views": len(result.interface.views),
                        }
                    ),
                    flush=True,
                )
            warm = sum(1 for r in service.requests if r.pool == "warm")
            print(
                f"served {served} request(s) ({warm} warm), {failed} failed",
                file=sys.stderr,
            )
    finally:
        if handle is not sys.stdin:
            handle.close()
    return 0 if failed == 0 else 1


def _command_list_workloads() -> int:
    rows = []
    for name in sorted(WORKLOADS):
        workload = WORKLOADS[name]
        rows.append((name, len(workload.queries), workload.description))
    width = max(len(r[0]) for r in rows)
    for name, count, description in rows:
        print(f"{name.ljust(width)}  {count:2d} queries  {description}")
    return 0


def _command_stats(args) -> int:
    """Pretty-print per-phase wall-clock attribution and cache hit rates."""
    from .obs import cache_hit_rates, phase_attribution, read_trace

    events, metrics = read_trace(args.trace)
    if not events:
        print(f"{args.trace}: no span events recorded", file=sys.stderr)
        return 1

    attribution = phase_attribution(events)
    total = sum(attribution.values())
    workers = len({e.pid for e in events})
    print(f"trace: {len(events)} spans across {workers} process(es)")
    print(f"\nphase attribution (self time, {total:.3f}s total):")
    width = max(len(p) for p in attribution)
    for phase_name, seconds in sorted(
        attribution.items(), key=lambda kv: -kv[1]
    ):
        if seconds == 0.0 and phase_name != "other":
            continue
        share = (seconds / total * 100.0) if total else 0.0
        bar = "#" * int(round(share / 2))
        print(f"  {phase_name.ljust(width)}  {seconds:9.4f}s  {share:5.1f}%  {bar}")

    rows = cache_hit_rates(metrics)
    if rows:
        print("\ncache hit rates:")
        name_width = max(len(r["cache"]) for r in rows)
        for row in rows:
            lookups = row["hits"] + row["misses"]
            rate = (
                f"{row['rate'] * 100.0:5.1f}%" if row["rate"] is not None else "    —"
            )
            print(
                f"  {row['cache'].ljust(name_width)}  "
                f"{row['hits']:6d} hits / {lookups:6d} lookups  {rate}"
            )
    return 0


def _command_show(args) -> int:
    workload = get_workload(args.workload)
    print(f"-- {workload.name}: {workload.description}")
    for i, sql in enumerate(workload.queries, 1):
        print(f"Q{i}: {sql}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    ``Ctrl-C`` exits with :data:`EXIT_INTERRUPTED` (130) after an orderly
    teardown — the service context managers inside each command drain the
    worker pool and release shared memory on the way out, and ``generate``
    flushes any recorded trace first.  A request that failed on every
    degradation rung exits with :data:`EXIT_GENERATION_FAILED`.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _command_generate(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "list-workloads":
            return _command_list_workloads()
        if args.command == "show":
            return _command_show(args)
        if args.command == "stats":
            return _command_stats(args)
    except KeyboardInterrupt:
        print("interrupted: pool drained, resources released", file=sys.stderr)
        return EXIT_INTERRUPTED
    except GenerationFailure as exc:
        print(f"generation failed on every rung: {exc}", file=sys.stderr)
        return EXIT_GENERATION_FAILED
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
