"""Single-player Monte Carlo Tree Search over Difftree states (Section 6.2).

The search balances exploration of new Difftree structures with exploitation
of good ones using the SP-MCTS variant of UCT (Equation 1 in the paper): the
usual average-reward and exploration terms plus a variance term that prefers
nodes with high reward spread.  A special ``TERMINATE`` transition is
available from every state; choosing it produces a terminal state with no
outgoing transitions.

Following Cadiaplayer, the search returns the highest-reward state
*encountered anywhere* (selection, expansion or rollout), not the state with
the best average reward.
"""

from __future__ import annotations

import math
import random
import time
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence

from ..difftree.nodes import node_id_space
from ..difftree.tree import Difftree
from ..obs import span
from ..transform.engine import TransformEngine
from .config import SearchConfig, SearchStats
from .state import SearchState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends.base import RewardTable

#: Signature of the reward estimator: higher is better (the pipeline supplies
#: the negative of the minimum interface cost over K random mappings).
RewardFn = Callable[[SearchState], float]


class MCTSNode:
    """One node of the MCTS search tree."""

    __slots__ = (
        "state",
        "parent",
        "children",
        "untried",
        "visits",
        "total_reward",
        "total_squared",
        "expanded",
    )

    def __init__(self, state: SearchState, parent: Optional["MCTSNode"] = None) -> None:
        self.state = state
        self.parent = parent
        self.children: list[MCTSNode] = []
        self.untried: Optional[list] = None  # lazily enumerated applications
        self.visits = 0
        self.total_reward = 0.0
        self.total_squared = 0.0
        self.expanded = False

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def uct_score(self, c: float, d: float, lo: float = 0.0, hi: float = 1.0) -> float:
        """The modified UCT score of Equation 1 (SP-MCTS).

        Rewards are normalised to [0, 1] using the best / worst rewards the
        worker has observed (``lo`` / ``hi``) so that the exploration constant
        ``c`` is meaningful regardless of the interface-cost scale — without
        this, a single mediocre-but-better-than-average child absorbs every
        visit and the search never explores deeper structures.
        """
        if self.visits == 0:
            return float("inf")
        assert self.parent is not None
        span = (hi - lo) or 1.0
        mean = (self.mean_reward - lo) / span
        exploration = c * math.sqrt(math.log(max(1, self.parent.visits)) / self.visits)
        # variance of the normalised rewards from the raw aggregates
        raw_mean = self.mean_reward
        raw_var = max(0.0, self.total_squared / self.visits - raw_mean * raw_mean)
        variance = raw_var / (span * span)
        return mean + exploration + math.sqrt((variance + d) / self.visits)

    def is_terminal(self) -> bool:
        return self.state.terminal


class MCTSWorker:
    """One MCTS search instance (the paper runs several of these in parallel)."""

    def __init__(
        self,
        initial: SearchState,
        engine: TransformEngine,
        reward_fn: RewardFn,
        config: SearchConfig,
        rng: Optional[random.Random] = None,
        reward_table: Optional["RewardTable"] = None,
        id_space: Optional[Iterator[int]] = None,
    ) -> None:
        self.engine = engine
        self.reward_fn = reward_fn
        self.config = config
        self.rng = rng or config.rng()
        #: cross-worker shared reward table (fingerprint → reward), consulted
        #: before any reward evaluation; ``None`` disables sharing.  The
        #: table only changes at synchronization barriers, so reads during a
        #: round are deterministic on every backend.
        self.reward_table = reward_table
        #: rewards this worker evaluated since the last synchronization —
        #: the coordinator drains these into the shared table at each sync
        self._pending_rewards: dict[str, float] = {}
        #: private id counter for choice nodes minted by rule applications,
        #: so a worker allocates identical ids whether it runs round-robin,
        #: on a thread, or in its own process (``None`` = ambient allocator)
        self._id_space = id_space
        self.root = MCTSNode(initial)
        self.stats = SearchStats()
        #: reward per *trees* fingerprint: a terminal state and its
        #: non-terminal twin hold the same trees, so they share one entry,
        #: and states broadcast by other workers are seeded here by adopt()
        self._reward_cache: dict[str, float] = {}
        # running min/max over finite cached rewards, maintained by _evaluate
        # so _select does not rescan the whole cache every iteration
        self._reward_lo: Optional[float] = None
        self._reward_hi: Optional[float] = None
        self.iterations_since_improvement = 0
        self.best_state = initial
        with node_id_space(self._id_space):
            self.best_reward = self._evaluate(initial)
        self.stats.best_reward = self.best_reward

    # -- public API --------------------------------------------------------

    def run_iteration(self) -> None:
        """Execute one select → expand → simulate → backpropagate cycle."""
        start = time.perf_counter()
        best_before = self.best_reward
        with node_id_space(self._id_space):
            leaf = self._select(self.root)
            child = self._expand(leaf)
            reward = self._simulate(child)
        self._backpropagate(child, reward)
        self.stats.iterations += 1
        # early-stop bookkeeping is per *iteration*, not per evaluated state
        if self.best_reward > best_before:
            self.iterations_since_improvement = 0
        else:
            self.iterations_since_improvement += 1
        self.stats.search_seconds += time.perf_counter() - start

    def take_pending_rewards(self) -> dict[str, float]:
        """Drain the rewards evaluated since the last synchronization."""
        pending = self._pending_rewards
        self._pending_rewards = {}
        return pending

    def run(self, iterations: Optional[int] = None) -> SearchState:
        """Run until the iteration budget or early stop is reached."""
        budget = iterations if iterations is not None else self.config.max_iterations
        for _ in range(budget):
            self.run_iteration()
            if self.iterations_since_improvement >= self.config.early_stop:
                self.stats.early_stopped = True
                break
        return self.best_state

    def adopt(self, state: SearchState, reward: float) -> None:
        """Adopt a better state discovered by another worker (synchronization).

        The broadcast reward is seeded into this worker's reward cache:
        without the seed, expanding or rolling through the adopted state's
        fingerprint later re-runs ``reward_fn`` even though the state already
        carries its reward (the double-evaluation bug).
        """
        key = state.trees_fingerprint()
        if key not in self._reward_cache:
            self._reward_cache[key] = reward
            self.stats.rewards_seeded += 1
            self._note_reward_bounds(reward)
        if reward > self.best_reward:
            self.best_state = state
            self.best_reward = reward
            self.iterations_since_improvement = 0

    # -- the four MCTS phases --------------------------------------------------

    def _select(self, node: MCTSNode) -> MCTSNode:
        lo, hi = self._reward_bounds()
        while node.expanded and node.children and not node.is_terminal():
            node = max(
                node.children,
                key=lambda child: child.uct_score(
                    self.config.exploration_c, self.config.variance_d, lo, hi
                ),
            )
        return node

    def _reward_bounds(self) -> tuple[float, float]:
        """The worst / best rewards observed so far (for UCT normalisation).

        O(1): the bounds are maintained incrementally by :meth:`_evaluate`
        instead of rebuilding a list over the entire reward cache on every
        selection step (which made each iteration O(states evaluated)).
        """
        if self._reward_lo is None or self._reward_hi is None:
            return (0.0, 1.0)
        if self._reward_lo == self._reward_hi:
            return (self._reward_lo, self._reward_lo + 1.0)
        return (self._reward_lo, self._reward_hi)

    def _expand(self, node: MCTSNode) -> MCTSNode:
        if node.is_terminal():
            return node
        if not node.expanded:
            applications = self.engine.applications(node.state.trees, self.rng)
            self.stats.rule_applications += len(applications)
            children: list[MCTSNode] = [MCTSNode(node.state.as_terminal(), node)]
            seen = {node.state.fingerprint()}
            for app in applications:
                new_trees = self.engine.apply(app)
                if new_trees is None:
                    continue
                child_state = SearchState(new_trees)
                if child_state.fingerprint() in seen:
                    continue
                seen.add(child_state.fingerprint())
                children.append(MCTSNode(child_state, node))
            node.children = children
            node.expanded = True
        unvisited = [c for c in node.children if c.visits == 0]
        pool = unvisited if unvisited else node.children
        return self.rng.choice(pool) if pool else node

    def _simulate(self, node: MCTSNode) -> float:
        """Random playout from the node's state; returns the best reward seen."""
        current = node.state
        best = self._evaluate(current)
        self._track_best(current, best)
        if current.terminal:
            return best
        for _ in range(self.config.rollout_depth):
            if self.rng.random() < self.config.terminate_probability:
                break
            applications = self.engine.applications(current.trees, self.rng)
            if not applications:
                break
            app = self._weighted_choice(applications)
            new_trees = self.engine.apply(app)
            if new_trees is None:
                continue
            current = SearchState(new_trees)
            reward = self._evaluate(current)
            self._track_best(current, reward)
            best = max(best, reward)
        return best

    #: rollout bias: refactoring / mutation rules make progress towards
    #: interactive interfaces, cross-tree rules mostly shuffle structure
    _CATEGORY_WEIGHTS = {
        "refactoring": 4.0,
        "mutation": 3.0,
        "simplification": 2.0,
        "cross-tree": 1.0,
    }

    def _weighted_choice(self, applications):
        weights = [
            self._CATEGORY_WEIGHTS.get(app.category, 1.0) for app in applications
        ]
        return self.rng.choices(applications, weights=weights, k=1)[0]

    def _backpropagate(self, node: Optional[MCTSNode], reward: float) -> None:
        while node is not None:
            node.visits += 1
            node.total_reward += reward
            node.total_squared += reward * reward
            node = node.parent

    # -- reward bookkeeping ----------------------------------------------------------

    def _evaluate(self, state: SearchState) -> float:
        key = state.trees_fingerprint()
        if key in self._reward_cache:
            self.stats.reward_cache_hits += 1
            return self._reward_cache[key]
        if self.reward_table is not None:
            hit, shared = self.reward_table.get(key)
            if hit:
                # another worker already paid for this state: reuse its
                # reward and leave this worker's reward-RNG stream untouched
                self.stats.reward_table_hits += 1
                self._reward_cache[key] = shared
                self._note_reward_bounds(shared)
                return shared
        with span("search.reward"):
            reward = self.reward_fn(state)
        self._reward_cache[key] = reward
        if self.reward_table is not None:
            self._pending_rewards[key] = reward
        self.stats.states_evaluated += 1
        self._note_reward_bounds(reward)
        return reward

    def _note_reward_bounds(self, reward: float) -> None:
        if reward != float("-inf"):
            if self._reward_lo is None or reward < self._reward_lo:
                self._reward_lo = reward
            if self._reward_hi is None or reward > self._reward_hi:
                self._reward_hi = reward

    def _track_best(self, state: SearchState, reward: float) -> None:
        if reward > self.best_reward:
            self.best_reward = reward
            self.best_state = state
            self.best_iteration = self.stats.iterations
            self.stats.best_reward = reward
            self.stats.best_iteration = self.stats.iterations

    best_iteration = 0


def search_difftrees(
    initial_trees: Sequence[Difftree],
    engine: TransformEngine,
    reward_fn: RewardFn,
    config: Optional[SearchConfig] = None,
) -> tuple[SearchState, SearchStats]:
    """Single-worker convenience entry point (used by tests and ablations)."""
    config = config or SearchConfig()
    worker = MCTSWorker(SearchState(initial_trees), engine, reward_fn, config)
    best = worker.run()
    return best, worker.stats
