"""Search states: an immutable snapshot of a list of Difftrees.

The MCTS search tree is built over these states.  A state caches its
fingerprint (used to detect revisits) and whether it is terminal (reached by
the special TERMINATE transition, which every state offers).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..difftree.tree import Difftree


class SearchState:
    """A node-value in the search space: a list of Difftrees."""

    def __init__(self, trees: Sequence[Difftree], terminal: bool = False) -> None:
        self.trees = list(trees)
        self.terminal = terminal
        self._fingerprint: Optional[str] = None
        self._trees_fingerprint: Optional[str] = None

    def trees_fingerprint(self) -> str:
        """Identity of the tree list alone, ignoring the terminal marker.

        A terminal state holds the same trees as its non-terminal twin, so
        anything derived purely from the trees — reward estimates in
        particular — is keyed by this fingerprint rather than
        :meth:`fingerprint`.
        """
        if self._trees_fingerprint is None:
            parts = sorted(t.fingerprint() for t in self.trees)
            self._trees_fingerprint = "||".join(parts)
        return self._trees_fingerprint

    def fingerprint(self) -> str:
        """Canonical identity of the state (order-insensitive over trees)."""
        if self._fingerprint is None:
            self._fingerprint = (
                "T|" if self.terminal else ""
            ) + self.trees_fingerprint()
        return self._fingerprint

    def num_choice_nodes(self) -> int:
        return sum(len(t.choice_nodes()) for t in self.trees)

    def num_trees(self) -> int:
        return len(self.trees)

    def as_terminal(self) -> "SearchState":
        """The terminal copy of this state (result of the TERMINATE rule)."""
        return SearchState(self.trees, terminal=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchState({len(self.trees)} trees, "
            f"{self.num_choice_nodes()} choice nodes"
            f"{', terminal' if self.terminal else ''})"
        )
