"""The serial backend: deterministic round-robin in the coordinator's thread.

:class:`_LocalBackend` holds the coordinator loop shared with the thread
backend (:mod:`repro.search.backends.thread`): both keep their
:class:`~repro.search.mcts.MCTSWorker` instances in this process and differ
only in how a round's iterations are scheduled.  Because workers share no
mutable search state (private engines and reward-RNG streams via the job's
factories, private reward caches, reward-table merges only at barriers), the
two schedules produce byte-identical results — which ``tests/test_backends.py``
pins across all workloads.
"""

from __future__ import annotations

import time
from typing import Optional

from ...obs import span
from ..config import SearchConfig
from ..mcts import MCTSWorker
from .base import (
    ParallelSearchResult,
    RewardTable,
    SearchJob,
    WorkerSync,
    aggregate_stats,
    early_stop_after_adopt,
    merge_sync_round,
    round_sizes,
)


class _LocalBackend:
    """Common coordinator loop for the serial and thread backends."""

    name = "local"

    def __init__(self) -> None:
        #: exposed for post-run inspection (tests reach into the workers)
        self.workers: list[MCTSWorker] = []
        #: True when every worker owns its engine (set per run)
        self._private_engines = False

    # overridden by ThreadBackend
    def _run_round(self, workers: list[MCTSWorker], round_size: int) -> None:
        for worker in workers:
            for _ in range(round_size):
                worker.run_iteration()

    def run(self, job: SearchJob) -> ParallelSearchResult:
        config = job.config
        start = time.perf_counter()
        # callers may hand in a pre-populated table (persisted-cache reloads,
        # warm service pools); rewards are pure functions of the state, so
        # preloaded entries change cost, never trajectories
        table: Optional[RewardTable] = None
        loaded = 0
        if config.shared_rewards:
            table = job.reward_table if job.reward_table is not None else RewardTable()
            loaded = table.size()
        warmup_start = time.perf_counter()
        self.workers = [
            job.make_worker(w, table) for w in range(max(1, config.workers))
        ]
        # concurrent round scheduling (the thread backend) is only sound when
        # every worker owns its engine: the engine's rule-application cache
        # samples with the populating worker's RNG, so sharing one across
        # concurrently-running workers is racy and nondeterministic
        engine_ids = {id(w.engine) for w in self.workers}
        self._private_engines = len(engine_ids) == len(self.workers)
        # the workers' initial-state evaluations all hit cold per-worker
        # caches; merge them immediately so round 1 already shares them
        if table is not None:
            for worker in self.workers:
                table.merge(worker.take_pending_rewards())
        warmup_seconds = time.perf_counter() - warmup_start

        total_iterations = 0
        sync_rounds = 0
        early_stopped = False
        for round_size in round_sizes(config):
            with span("search.round", round=sync_rounds, size=round_size):
                self._run_round(self.workers, round_size)
            total_iterations += round_size * len(self.workers)

            # synchronization: merge reward deltas, broadcast the best state
            with span("search.sync", round=sync_rounds):
                syncs = [
                    WorkerSync(
                        best_reward=w.best_reward,
                        best_fingerprint=w.best_state.fingerprint(),
                        pending_rewards=w.take_pending_rewards(),
                        iterations_since_improvement=w.iterations_since_improvement,
                        best_state=w.best_state,
                    )
                    for w in self.workers
                ]
                best_index, _ = merge_sync_round(syncs, table)
                best_sync = syncs[best_index]
                sync_rounds += 1
                stop = early_stop_after_adopt(
                    syncs, best_sync.best_reward, config.early_stop
                )
                for worker in self.workers:
                    worker.adopt(best_sync.best_state, best_sync.best_reward)
            if stop:
                early_stopped = True
                break

        best_worker = max(self.workers, key=lambda w: w.best_reward)
        stats = aggregate_stats(
            self.name,
            [w.stats for w in self.workers],
            best_worker.stats,
            best_worker.best_reward,
            total_iterations,
            sync_rounds,
            early_stopped or any(w.stats.early_stopped for w in self.workers),
            time.perf_counter() - start,
            job,
            reward_table=table,
            warmup_seconds=warmup_seconds,
        )
        stats.reward_table_loaded = loaded
        return ParallelSearchResult(
            best_worker.best_state,
            best_worker.best_reward,
            stats,
            [w.stats for w in self.workers],
        )


class SerialBackend(_LocalBackend):
    """Round-robin execution in the coordinator's thread (deterministic)."""

    name = "serial"
