"""True multiprocess MCTS: one OS process per worker.

Each worker process unpickles a :class:`~repro.search.backends.base.ProcessWorkerSpec`,
rebuilds catalogue + executor + transformation engine + reward function
inside its own interpreter, warms its private plan cache / mapping memo by
evaluating the initial state, and then exchanges compact sync messages with
the coordinator every ``sync_interval`` iterations.

Wire protocol (pickled tuples over a :func:`multiprocessing.Pipe` pair):

========================  ===================================================
coordinator → worker      meaning
========================  ===================================================
``("round", n, adopt,     run ``n`` iterations; ``adopt`` is ``(state bytes,
  reward, delta)``        reward)`` of the global best or ``None``; ``delta``
                          is the reward-table entries merged last round
``("finish",)``           send final state + stats and exit (one-shot
                          workers) or return to idle (pooled workers, see
                          :mod:`repro.service.pool`)
========================  ===================================================

========================  ===================================================
worker → coordinator      meaning
========================  ===================================================
``("ready", warmup_s)``   context rebuilt, initial state evaluated
``("sync", fp, reward,    end-of-round report: best fingerprint + reward,
  state?, pending,        serialized trees only when the best changed since
  stale)``                the last report, this round's reward delta, and
                          the worker's staleness counter
``("done", state, reward, final best state (serialized), reward, and the
  stats)``                worker's :class:`SearchStats`
``("error", repr)``       an exception escaped the worker loop
========================  ===================================================

The ``round``/``sync``/``finish`` core of the protocol is factored into
:func:`serve_search` (worker side) and :func:`drive_search` (coordinator
side) so the long-lived generation service (:mod:`repro.service.pool`) can
keep worker processes alive across searches: a pooled worker runs
:func:`serve_search` once per task and then idles for the next one instead
of tearing down, which is what lets repeat generations skip process spawn
and per-process cache warm-up entirely.

The protocol is deterministic for a fixed seed / worker count: reward deltas
merge in worker order at barriers, each worker draws node ids from its own id
space, and rewards are a pure function of (seed, state fingerprint) — see
:func:`repro.core.pipeline.make_reward_fn` — so the trajectories are the same
ones the serial backend produces for the same configuration.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from typing import Callable, Optional

from ...difftree.nodes import worker_id_counter
from ...obs import TRACER, span
from ..config import SearchConfig, SearchStats
from ..mcts import MCTSWorker
from ..state import SearchState
from .base import (
    ParallelSearchResult,
    RewardTable,
    SearchJob,
    WorkerSync,
    aggregate_stats,
    dump_state,
    early_stop_after_adopt,
    load_state,
    merge_sync_round,
    round_sizes,
)

#: Environment override for the multiprocessing start method.
MP_START_ENV_VAR = "REPRO_MP_START"


def _mp_context():
    """The multiprocessing start method: fork where available (fast, no
    re-import), spawn otherwise; ``REPRO_MP_START`` overrides.

    The override is validated against the platform's supported methods so a
    typo (``REPRO_MP_START=frok``) fails with an actionable error instead of
    leaking an arbitrary string into ``multiprocessing.get_context``.
    """
    method = os.environ.get(MP_START_ENV_VAR)
    if method:
        method = method.strip().lower()
        allowed = multiprocessing.get_all_start_methods()
        if method not in allowed:
            raise ValueError(
                f"invalid {MP_START_ENV_VAR}={method!r}: allowed start "
                f"methods on this platform are {', '.join(sorted(allowed))}"
            )
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def expect_reply(conn, kind: str):
    """Receive the next worker message, unwrapping ``error`` replies."""
    reply = conn.recv()
    if reply[0] == "error":
        raise RuntimeError(f"search worker process failed: {reply[1]}")
    if reply[0] != kind:  # pragma: no cover - defensive
        raise RuntimeError(f"expected {kind!r} reply, got {reply[0]!r}")
    return reply


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def serve_search(
    conn,
    worker: MCTSWorker,
    table: Optional[RewardTable],
    warmup_seconds: float,
    cache_info: Callable[[], tuple[Optional[dict], Optional[dict]]],
    metrics_snapshot: Optional[Callable[[], Optional[dict]]] = None,
) -> None:
    """Serve ``round`` messages for one search until ``finish``.

    Shared by the one-shot worker main below and the pooled worker main in
    :mod:`repro.service.pool` — the pooled variant calls this once per task
    and then returns to its idle loop instead of exiting.
    """
    last_sent_fp: Optional[str] = None
    while True:
        message = conn.recv()
        if message[0] == "round":
            _, round_size, adopt_bytes, adopt_reward, delta = message
            if table is not None and delta:
                # entries the coordinator merged last round (including
                # other workers' deltas) land in this replica before the
                # round starts, mirroring the in-process backends
                table.seed(delta)
            if adopt_bytes is not None:
                worker.adopt(load_state(adopt_bytes), adopt_reward)
            for _ in range(round_size):
                worker.run_iteration()
            best_fp = worker.best_state.fingerprint()
            state_bytes = None
            if best_fp != last_sent_fp:
                state_bytes = dump_state(worker.best_state)
                last_sent_fp = best_fp
            conn.send(
                (
                    "sync",
                    best_fp,
                    worker.best_reward,
                    state_bytes,
                    worker.take_pending_rewards(),
                    worker.iterations_since_improvement,
                )
            )
        elif message[0] == "finish":
            stats = worker.stats
            stats.backend = "process"
            stats.warmup_seconds = warmup_seconds
            plan_info, memo_info = cache_info()
            stats.plan_cache = plan_info
            stats.mapping_memo = memo_info
            if table is not None:
                stats.reward_table = table.info()
            if metrics_snapshot is not None:
                stats.metrics = metrics_snapshot()
            if TRACER.enabled:
                # ship this process's span events to the coordinator (drain,
                # so a pooled worker never re-sends a previous task's spans)
                stats.spans = TRACER.take_events()
            conn.send(
                ("done", dump_state(worker.best_state), worker.best_reward, stats)
            )
            return
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown command {message[0]!r}")


def _worker_main(conn, payload_bytes: bytes, worker_index: int) -> None:
    """Entry point of one one-shot worker process."""
    try:
        payload = pickle.loads(payload_bytes)
        spec = payload["spec"]
        config: SearchConfig = payload["config"]
        shared_rewards: bool = payload["shared_rewards"]

        warmup_start = time.perf_counter()
        engine, reward_fn = spec.build(worker_index, config)
        initial = load_state(payload["initial_state"])
        table = RewardTable() if shared_rewards else None
        if table is not None and payload.get("table_seed"):
            # persisted rewards from an earlier run over the same
            # (catalogue, workload): plant them before the initial-state
            # evaluation so even a fresh process resumes warm
            table.seed(payload["table_seed"])
        worker = MCTSWorker(
            initial,
            engine,
            reward_fn,
            config,
            rng=config.rng(offset=worker_index + 1),
            reward_table=table,
            id_space=worker_id_counter(worker_index),
        )
        warmup_seconds = time.perf_counter() - warmup_start
        conn.send(("ready", warmup_seconds))
        serve_search(
            conn,
            worker,
            table,
            warmup_seconds,
            spec.cache_info,
            metrics_snapshot=getattr(spec, "metrics_snapshot", None),
        )
    except Exception as exc:  # pragma: no cover - crash reporting path
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


def drive_search(
    connections: list,
    config: SearchConfig,
    table: Optional[RewardTable],
) -> tuple[list, int, int, bool]:
    """Drive the round / sync / finish protocol over live worker connections.

    Returns ``(finals, total_iterations, sync_rounds, early_stopped)`` where
    ``finals`` is each worker's ``("done", state, reward, stats)`` reply.
    The caller owns the connections: the one-shot backend tears its workers
    down afterwards, the pooled backend leaves them idling for the next task.
    """
    workers = len(connections)
    states: dict[str, bytes] = {}  # best states seen, by fingerprint

    total_iterations = 0
    sync_rounds = 0
    early_stopped = False
    adopt: Optional[tuple[bytes, float]] = None
    pending_delta: dict[str, float] = {}
    for round_size in round_sizes(config):
        # the coordinator's round span measures wall-clock from broadcast to
        # the last worker's sync reply (the workers' own spans arrive later,
        # attached to their final stats)
        with span("search.round", round=sync_rounds, size=round_size):
            for conn in connections:
                conn.send(
                    (
                        "round",
                        round_size,
                        adopt[0] if adopt is not None else None,
                        adopt[1] if adopt is not None else 0.0,
                        pending_delta,
                    )
                )
            syncs: list[WorkerSync] = []
            for conn in connections:
                _, fp, reward, state_bytes, pending, stale = expect_reply(
                    conn, "sync"
                )
                if state_bytes is not None:
                    states[fp] = state_bytes
                syncs.append(
                    WorkerSync(
                        best_reward=reward,
                        best_fingerprint=fp,
                        pending_rewards=pending,
                        iterations_since_improvement=stale,
                    )
                )
        total_iterations += round_size * workers
        with span("search.sync", round=sync_rounds):
            sync_rounds += 1
            best_index, merged = merge_sync_round(syncs, table)
            best_sync = syncs[best_index]
            adopt = (states[best_sync.best_fingerprint], best_sync.best_reward)
            pending_delta = merged
            # retain only states that can still be adopted: best rewards
            # are monotone per worker, so a fingerprint no worker
            # currently reports as its best can never be reported again
            current = {sync.best_fingerprint for sync in syncs}
            states = {fp: b for fp, b in states.items() if fp in current}
        if early_stop_after_adopt(syncs, best_sync.best_reward, config.early_stop):
            early_stopped = True
            break

    for conn in connections:
        conn.send(("finish",))
    finals = [expect_reply(conn, "done") for conn in connections]
    return finals, total_iterations, sync_rounds, early_stopped


def finalize_search(
    backend_name: str,
    job: SearchJob,
    finals: list,
    warmups: list[float],
    table: Optional[RewardTable],
    total_iterations: int,
    sync_rounds: int,
    early_stopped: bool,
    start: float,
    warmup_wall: float,
) -> ParallelSearchResult:
    """Fold per-worker ``done`` replies into a :class:`ParallelSearchResult`."""
    worker_stats: list[SearchStats] = [f[3] for f in finals]
    for stats, warmup in zip(worker_stats, warmups):
        stats.warmup_seconds = warmup
        # adopt worker-process span events into the coordinator's tracer so
        # one exported trace shows every process; drop them from the stats
        # afterwards (they are transport, not a per-worker diagnostic)
        if stats.spans:
            TRACER.extend(stats.spans)
            stats.spans = None
    best = max(range(len(finals)), key=lambda w: finals[w][2])
    best_state = load_state(finals[best][1])
    best_reward = finals[best][2]

    stats = aggregate_stats(
        backend_name,
        worker_stats,
        worker_stats[best],
        best_reward,
        total_iterations,
        sync_rounds,
        early_stopped or any(w.early_stopped for w in worker_stats),
        time.perf_counter() - start,
        job,
        # caches live in the worker processes; surface the best worker's
        # snapshots as the aggregate view (per-worker stats carry the rest)
        plan_cache_info=worker_stats[best].plan_cache,
        mapping_memo_info=worker_stats[best].mapping_memo,
        warmup_seconds=warmup_wall,
    )
    if table is not None:
        # the lookups all happened against the worker replicas — fold
        # their counters over the coordinator table's entry count so the
        # snapshot means the same thing it does on serial / thread
        stats.reward_table = {
            "rewards": table.size(),
            "hits": sum((w.reward_table or {}).get("hits", 0) for w in worker_stats),
            "misses": sum(
                (w.reward_table or {}).get("misses", 0) for w in worker_stats
            ),
        }
    return ParallelSearchResult(best_state, best_reward, stats, worker_stats)


class ProcessBackend:
    """One OS process per MCTS worker, coordinated over pipes."""

    name = "process"

    def run(self, job: SearchJob) -> ParallelSearchResult:
        if job.process_spec is None:
            raise ValueError(
                "the process backend needs a picklable worker spec "
                "(SearchJob.process_spec); see repro.search.backends"
            )
        config = job.config
        start = time.perf_counter()
        workers = max(1, config.workers)
        ctx = _mp_context()

        # persisted rewards handed in by the caller (cache_dir runs) are
        # shipped to every worker replica and pre-merged into the
        # coordinator's authoritative table
        table_seed = (
            job.reward_table.snapshot()
            if job.reward_table is not None and config.shared_rewards
            else {}
        )

        # one payload for all workers (the spec — catalogue included — is
        # pickled exactly once; only the worker index differs per process)
        payload = pickle.dumps(
            {
                "spec": job.process_spec,
                "config": config,
                "shared_rewards": config.shared_rewards,
                "initial_state": dump_state(SearchState(job.initial_trees)),
                "table_seed": table_seed,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        connections = []
        processes = []
        try:
            for w in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main, args=(child_conn, payload, w), daemon=True
                )
                process.start()
                child_conn.close()
                connections.append(parent_conn)
                processes.append(process)

            warmups = [expect_reply(conn, "ready")[1] for conn in connections]
            # wall-clock until every worker finished rebuilding + evaluating
            # the initial state (they warm concurrently); per-worker costs
            # are surfaced through the individual worker stats
            warmup_wall = time.perf_counter() - start

            # the coordinator keeps the authoritative reward table; worker
            # replicas are refreshed with the merged delta of each round
            table: Optional[RewardTable] = (
                job.reward_table
                if job.reward_table is not None and config.shared_rewards
                else (RewardTable() if config.shared_rewards else None)
            )

            finals, total_iterations, sync_rounds, early_stopped = drive_search(
                connections, config, table
            )
        finally:
            for conn in connections:
                try:
                    conn.close()
                except Exception:
                    pass
            for process in processes:
                process.join(timeout=30)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5)

        result = finalize_search(
            self.name,
            job,
            finals,
            warmups,
            table,
            total_iterations,
            sync_rounds,
            early_stopped,
            start,
            warmup_wall,
        )
        result.stats.reward_table_loaded = len(table_seed)
        return result
