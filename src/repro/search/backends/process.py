"""True multiprocess MCTS: one OS process per worker.

Each worker process unpickles a :class:`~repro.search.backends.base.ProcessWorkerSpec`,
rebuilds catalogue + executor + transformation engine + reward function
inside its own interpreter, warms its private plan cache / mapping memo by
evaluating the initial state, and then exchanges compact sync messages with
the coordinator every ``sync_interval`` iterations.

Wire protocol (pickled tuples over a :func:`multiprocessing.Pipe` pair):

========================  ===================================================
coordinator → worker      meaning
========================  ===================================================
``("round", n, adopt,     run ``n`` iterations; ``adopt`` is ``(state bytes,
  reward, delta)``        reward)`` of the global best or ``None``; ``delta``
                          is the reward-table entries merged last round
``("finish",)``           send final state + stats and exit (one-shot
                          workers) or return to idle (pooled workers, see
                          :mod:`repro.service.pool`)
========================  ===================================================

========================  ===================================================
worker → coordinator      meaning
========================  ===================================================
``("ready", warmup_s)``   context rebuilt, initial state evaluated
``("sync", seq, fp,       end-of-round report: the round sequence number,
  reward, state?,         best fingerprint + reward, serialized trees only
  pending, stale)``       when the best changed since the last report, this
                          round's reward delta, and the staleness counter
``("done", state, reward, final best state (serialized), reward, and the
  stats)``                worker's :class:`SearchStats`
``("error", repr)``       an exception escaped the worker loop
========================  ===================================================

Supervision: the coordinator never blocks indefinitely on a worker.  Every
receive goes through :func:`supervised_recv`, which multiplexes the pipe
with the worker's process sentinel via :func:`multiprocessing.connection.wait`
under a per-round deadline — a crashed worker is detected the instant its
sentinel fires, a hung one when the deadline lapses, and both surface as
:class:`repro.faults.WorkerFailure` instead of a wedged coordinator.  Sync
replies carry a sequence number so a duplicated message (see
:mod:`repro.faults`) is discarded instead of desynchronizing the protocol,
and a dropped one is caught by the deadline.

The ``round``/``sync``/``finish`` core of the protocol is factored into
:func:`serve_search` (worker side) and :func:`drive_search` (coordinator
side) so the long-lived generation service (:mod:`repro.service.pool`) can
keep worker processes alive across searches: a pooled worker runs
:func:`serve_search` once per task and then idles for the next one instead
of tearing down, which is what lets repeat generations skip process spawn
and per-process cache warm-up entirely.

The protocol is deterministic for a fixed seed / worker count: reward deltas
merge in worker order at barriers, each worker draws node ids from its own id
space, and rewards are a pure function of (seed, state fingerprint) — see
:func:`repro.core.pipeline.make_reward_fn` — so the trajectories are the same
ones the serial backend produces for the same configuration.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from multiprocessing import connection as _mp_connection
from typing import Callable, Optional

from ... import faults
from ...difftree.nodes import worker_id_counter
from ...faults import DeadlineExceeded, WorkerFailure
from ...obs import TRACER, span
from ..config import SearchConfig, SearchStats
from ..mcts import MCTSWorker
from ..state import SearchState
from .base import (
    ParallelSearchResult,
    RewardTable,
    SearchJob,
    WorkerSync,
    aggregate_stats,
    dump_state,
    early_stop_after_adopt,
    load_state,
    merge_sync_round,
    round_sizes,
)

#: Environment override for the multiprocessing start method.
MP_START_ENV_VAR = "REPRO_MP_START"


def _mp_context():
    """The multiprocessing start method: fork where available (fast, no
    re-import), spawn otherwise; ``REPRO_MP_START`` overrides.

    The override is validated against the platform's supported methods so a
    typo (``REPRO_MP_START=frok``) fails with an actionable error instead of
    leaking an arbitrary string into ``multiprocessing.get_context``.
    """
    method = os.environ.get(MP_START_ENV_VAR)
    if method:
        method = method.strip().lower()
        allowed = multiprocessing.get_all_start_methods()
        if method not in allowed:
            raise ValueError(
                f"invalid {MP_START_ENV_VAR}={method!r}: allowed start "
                f"methods on this platform are {', '.join(sorted(allowed))}"
            )
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def supervised_recv(
    conn,
    process=None,
    deadline_at: Optional[float] = None,
    request_deadline_at: Optional[float] = None,
    worker: Optional[int] = None,
):
    """Receive one worker message without ever blocking indefinitely.

    Multiplexes the connection with the worker's process sentinel through
    :func:`multiprocessing.connection.wait`: a crashed worker raises
    :class:`WorkerFailure` the moment its sentinel fires, a silent one
    raises when ``deadline_at`` (the per-round deadline) lapses, and an
    expired ``request_deadline_at`` raises :class:`DeadlineExceeded` so the
    caller can degrade instead of retrying.  The connection is always
    checked before the sentinel — a worker that replied and *then* died
    still gets its buffered reply delivered.
    """
    while True:
        now = time.monotonic()
        if request_deadline_at is not None and now >= request_deadline_at:
            raise DeadlineExceeded(
                f"request deadline expired waiting on worker {worker}"
            )
        if deadline_at is not None and now >= deadline_at:
            raise WorkerFailure(worker, "hung", "no reply within the round deadline")
        limits = [d for d in (deadline_at, request_deadline_at) if d is not None]
        timeout = (min(limits) - now) if limits else None
        waitables = [conn]
        if process is not None:
            waitables.append(process.sentinel)
        ready = _mp_connection.wait(waitables, timeout=timeout)
        if not ready:
            continue  # loop re-checks which deadline actually tripped
        if conn in ready:
            try:
                return conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerFailure(
                    worker, "crashed", f"connection dropped mid-protocol ({exc!r})"
                ) from exc
        exitcode = getattr(process, "exitcode", None)
        raise WorkerFailure(
            worker, "crashed", f"process exited (exitcode={exitcode}) before replying"
        )


def check_reply(reply, kind: str, worker: Optional[int] = None):
    """Validate a received worker message, unwrapping ``error`` replies."""
    if reply[0] == "error":
        raise WorkerFailure(worker, "faulted", f"search worker process failed: {reply[1]}")
    if reply[0] != kind:
        raise WorkerFailure(worker, "protocol", f"expected {kind!r} reply, got {reply[0]!r}")
    return reply


def expect_reply(conn, kind: str):
    """Receive the next worker message, unwrapping ``error`` replies.

    Sentinel-free convenience used where no process handle is at hand; a
    dead peer still surfaces as :class:`WorkerFailure` via the dropped
    connection rather than a hang.
    """
    return check_reply(supervised_recv(conn), kind)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def serve_search(
    conn,
    worker: MCTSWorker,
    table: Optional[RewardTable],
    warmup_seconds: float,
    cache_info: Callable[[], tuple[Optional[dict], Optional[dict]]],
    metrics_snapshot: Optional[Callable[[], Optional[dict]]] = None,
    worker_index: int = 0,
) -> bool:
    """Serve ``round`` messages for one search until ``finish`` / ``abort``.

    Shared by the one-shot worker main below and the pooled worker main in
    :mod:`repro.service.pool` — the pooled variant calls this once per task
    and then returns to its idle loop instead of exiting.  Returns ``True``
    when the search finished, ``False`` when the coordinator aborted it
    (supervision is replaying the task after another worker failed).
    """
    last_sent_fp: Optional[str] = None
    seq = 0
    while True:
        # worker side: the coordinator's death surfaces as EOFError, caught
        # by the worker mains — a deadline here would only limit idle time
        message = conn.recv()  # repro: allow-unbounded-recv -- EOFError on coordinator death is the liveness signal
        if message[0] == "round":
            _, round_size, adopt_bytes, adopt_reward, delta = message
            if table is not None and delta:
                # entries the coordinator merged last round (including
                # other workers' deltas) land in this replica before the
                # round starts, mirroring the in-process backends
                table.seed(delta)
            if adopt_bytes is not None:
                worker.adopt(load_state(adopt_bytes), adopt_reward)
            for _ in range(round_size):
                worker.run_iteration()
            best_fp = worker.best_state.fingerprint()
            state_bytes = None
            if best_fp != last_sent_fp:
                state_bytes = dump_state(worker.best_state)
                last_sent_fp = best_fp
            reply = (
                "sync",
                seq,
                best_fp,
                worker.best_reward,
                state_bytes,
                worker.take_pending_rewards(),
                worker.iterations_since_improvement,
            )
            seq += 1
            faults.maybe_kill("kill-worker-before-sync", worker=worker_index)
            if faults.fire("drop-sync-message", worker=worker_index):
                continue  # the coordinator's round deadline catches this
            conn.send(reply)
            if faults.fire("duplicate-sync-message", worker=worker_index):
                conn.send(reply)  # discarded coordinator-side via seq
        elif message[0] == "abort":
            # supervision is recovering from another worker's failure: drop
            # this task's state and hand control back to the idle loop
            conn.send(("aborted",))
            return False
        elif message[0] == "finish":
            stats = worker.stats
            stats.backend = "process"
            stats.warmup_seconds = warmup_seconds
            plan_info, memo_info = cache_info()
            stats.plan_cache = plan_info
            stats.mapping_memo = memo_info
            if table is not None:
                stats.reward_table = table.info()
            if metrics_snapshot is not None:
                stats.metrics = metrics_snapshot()
            if TRACER.enabled:
                # ship this process's span events to the coordinator (drain,
                # so a pooled worker never re-sends a previous task's spans)
                stats.spans = TRACER.take_events()
            conn.send(
                ("done", dump_state(worker.best_state), worker.best_reward, stats)
            )
            return True
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown command {message[0]!r}")


def _worker_main(conn, payload_bytes: bytes, worker_index: int) -> None:
    """Entry point of one one-shot worker process."""
    try:
        payload = pickle.loads(payload_bytes)
        spec = payload["spec"]
        config: SearchConfig = payload["config"]
        shared_rewards: bool = payload["shared_rewards"]
        # the coordinator's fault plan rides in the payload so injection does
        # not depend on environment inheritance or start-method timing
        faults.install_local(payload.get("faults"))

        warmup_start = time.perf_counter()
        engine, reward_fn = spec.build(worker_index, config)
        initial = load_state(payload["initial_state"])
        table = RewardTable() if shared_rewards else None
        if table is not None and payload.get("table_seed"):
            # persisted rewards from an earlier run over the same
            # (catalogue, workload): plant them before the initial-state
            # evaluation so even a fresh process resumes warm
            table.seed(payload["table_seed"])
        worker = MCTSWorker(
            initial,
            engine,
            reward_fn,
            config,
            rng=config.rng(offset=worker_index + 1),
            reward_table=table,
            id_space=worker_id_counter(worker_index),
        )
        warmup_seconds = time.perf_counter() - warmup_start
        conn.send(("ready", warmup_seconds))
        serve_search(
            conn,
            worker,
            table,
            warmup_seconds,
            spec.cache_info,
            metrics_snapshot=getattr(spec, "metrics_snapshot", None),
            worker_index=worker_index,
        )
    except Exception as exc:  # pragma: no cover - crash reporting path
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


def drive_search(
    connections: list,
    config: SearchConfig,
    table: Optional[RewardTable],
    processes: Optional[list] = None,
    request_deadline_at: Optional[float] = None,
) -> tuple[list, int, int, bool]:
    """Drive the round / sync / finish protocol over live worker connections.

    Returns ``(finals, total_iterations, sync_rounds, early_stopped)`` where
    ``finals`` is each worker's ``("done", state, reward, stats)`` reply.
    The caller owns the connections: the one-shot backend tears its workers
    down afterwards, the pooled backend leaves them idling for the next task.

    Supervision: when ``processes`` is given, every receive watches the
    worker's sentinel and the config's per-round deadline
    (``round_deadline_seconds``); crashes and hangs raise
    :class:`WorkerFailure` with the failing worker's index, and an expired
    ``request_deadline_at`` raises :class:`DeadlineExceeded`.  Duplicate
    sync replies (stale sequence numbers) are discarded; dropped ones are
    indistinguishable from a hang and handled by the deadline.
    """
    workers = len(connections)
    states: dict[str, bytes] = {}  # best states seen, by fingerprint
    round_deadline = getattr(config, "round_deadline_seconds", None)

    def _send(index: int, message) -> None:
        try:
            connections[index].send(message)
        except OSError as exc:
            raise WorkerFailure(
                index, "crashed", f"send failed ({exc!r})"
            ) from exc

    def _receive(index: int, kind: str, expected_seq: Optional[int] = None):
        process = processes[index] if processes is not None else None
        deadline_at = (
            time.monotonic() + round_deadline if round_deadline else None
        )
        while True:
            reply = supervised_recv(
                connections[index],
                process,
                deadline_at=deadline_at,
                request_deadline_at=request_deadline_at,
                worker=index,
            )
            if reply[0] == "sync":
                if kind != "sync":
                    continue  # stale sync ahead of a done/aborted reply
                if expected_seq is not None and reply[1] < expected_seq:
                    continue  # duplicate of an earlier round: discard
            reply = check_reply(reply, kind, worker=index)
            if kind == "sync" and expected_seq is not None and reply[1] != expected_seq:
                raise WorkerFailure(
                    index,
                    "protocol",
                    f"sync round {reply[1]} arrived while expecting {expected_seq}",
                )
            return reply

    total_iterations = 0
    sync_rounds = 0
    early_stopped = False
    adopt: Optional[tuple[bytes, float]] = None
    pending_delta: dict[str, float] = {}
    for round_size in round_sizes(config):
        # the coordinator's round span measures wall-clock from broadcast to
        # the last worker's sync reply (the workers' own spans arrive later,
        # attached to their final stats)
        with span("search.round", round=sync_rounds, size=round_size):
            for index in range(workers):
                _send(
                    index,
                    (
                        "round",
                        round_size,
                        adopt[0] if adopt is not None else None,
                        adopt[1] if adopt is not None else 0.0,
                        pending_delta,
                    ),
                )
            syncs: list[WorkerSync] = []
            for index in range(workers):
                _, _seq, fp, reward, state_bytes, pending, stale = _receive(
                    index, "sync", expected_seq=sync_rounds
                )
                if state_bytes is not None:
                    states[fp] = state_bytes
                syncs.append(
                    WorkerSync(
                        best_reward=reward,
                        best_fingerprint=fp,
                        pending_rewards=pending,
                        iterations_since_improvement=stale,
                    )
                )
        total_iterations += round_size * workers
        with span("search.sync", round=sync_rounds):
            sync_rounds += 1
            best_index, merged = merge_sync_round(syncs, table)
            best_sync = syncs[best_index]
            adopt = (states[best_sync.best_fingerprint], best_sync.best_reward)
            pending_delta = merged
            # retain only states that can still be adopted: best rewards
            # are monotone per worker, so a fingerprint no worker
            # currently reports as its best can never be reported again
            current = {sync.best_fingerprint for sync in syncs}
            states = {fp: b for fp, b in states.items() if fp in current}
        if early_stop_after_adopt(syncs, best_sync.best_reward, config.early_stop):
            early_stopped = True
            break

    for index in range(workers):
        _send(index, ("finish",))
    finals = [_receive(index, "done") for index in range(workers)]
    return finals, total_iterations, sync_rounds, early_stopped


def finalize_search(
    backend_name: str,
    job: SearchJob,
    finals: list,
    warmups: list[float],
    table: Optional[RewardTable],
    total_iterations: int,
    sync_rounds: int,
    early_stopped: bool,
    start: float,
    warmup_wall: float,
) -> ParallelSearchResult:
    """Fold per-worker ``done`` replies into a :class:`ParallelSearchResult`."""
    worker_stats: list[SearchStats] = [f[3] for f in finals]
    for stats, warmup in zip(worker_stats, warmups):
        stats.warmup_seconds = warmup
        # adopt worker-process span events into the coordinator's tracer so
        # one exported trace shows every process; drop them from the stats
        # afterwards (they are transport, not a per-worker diagnostic)
        if stats.spans:
            TRACER.extend(stats.spans)
            stats.spans = None
    best = max(range(len(finals)), key=lambda w: finals[w][2])
    best_state = load_state(finals[best][1])
    best_reward = finals[best][2]

    stats = aggregate_stats(
        backend_name,
        worker_stats,
        worker_stats[best],
        best_reward,
        total_iterations,
        sync_rounds,
        early_stopped or any(w.early_stopped for w in worker_stats),
        time.perf_counter() - start,
        job,
        # caches live in the worker processes; surface the best worker's
        # snapshots as the aggregate view (per-worker stats carry the rest)
        plan_cache_info=worker_stats[best].plan_cache,
        mapping_memo_info=worker_stats[best].mapping_memo,
        warmup_seconds=warmup_wall,
    )
    if table is not None:
        # the lookups all happened against the worker replicas — fold
        # their counters over the coordinator table's entry count so the
        # snapshot means the same thing it does on serial / thread
        stats.reward_table = {
            "rewards": table.size(),
            "hits": sum((w.reward_table or {}).get("hits", 0) for w in worker_stats),
            "misses": sum(
                (w.reward_table or {}).get("misses", 0) for w in worker_stats
            ),
        }
    return ParallelSearchResult(best_state, best_reward, stats, worker_stats)


class ProcessBackend:
    """One OS process per MCTS worker, coordinated over pipes."""

    name = "process"

    def run(self, job: SearchJob) -> ParallelSearchResult:
        if job.process_spec is None:
            raise ValueError(
                "the process backend needs a picklable worker spec "
                "(SearchJob.process_spec); see repro.search.backends"
            )
        config = job.config
        start = time.perf_counter()
        workers = max(1, config.workers)
        ctx = _mp_context()

        # persisted rewards handed in by the caller (cache_dir runs) are
        # shipped to every worker replica and pre-merged into the
        # coordinator's authoritative table
        table_seed = (
            job.reward_table.snapshot()
            if job.reward_table is not None and config.shared_rewards
            else {}
        )

        # one payload for all workers (the spec — catalogue included — is
        # pickled exactly once; only the worker index differs per process)
        payload = pickle.dumps(
            {
                "spec": job.process_spec,
                "config": config,
                "shared_rewards": config.shared_rewards,
                "initial_state": dump_state(SearchState(job.initial_trees)),
                "table_seed": table_seed,
                "faults": faults.current_spec(),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        request_deadline = getattr(config, "request_deadline_seconds", None)
        request_deadline_at = (
            time.monotonic() + request_deadline if request_deadline else None
        )
        round_deadline = getattr(config, "round_deadline_seconds", None)
        connections = []
        processes = []
        try:
            for w in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main, args=(child_conn, payload, w), daemon=True
                )
                process.start()
                child_conn.close()
                connections.append(parent_conn)
                processes.append(process)

            warmups = []
            for index, conn in enumerate(connections):
                ready_deadline_at = (
                    time.monotonic() + round_deadline if round_deadline else None
                )
                reply = supervised_recv(
                    conn,
                    processes[index],
                    deadline_at=ready_deadline_at,
                    request_deadline_at=request_deadline_at,
                    worker=index,
                )
                warmups.append(check_reply(reply, "ready", worker=index)[1])
            # wall-clock until every worker finished rebuilding + evaluating
            # the initial state (they warm concurrently); per-worker costs
            # are surfaced through the individual worker stats
            warmup_wall = time.perf_counter() - start

            # the coordinator keeps the authoritative reward table; worker
            # replicas are refreshed with the merged delta of each round
            table: Optional[RewardTable] = (
                job.reward_table
                if job.reward_table is not None and config.shared_rewards
                else (RewardTable() if config.shared_rewards else None)
            )

            finals, total_iterations, sync_rounds, early_stopped = drive_search(
                connections,
                config,
                table,
                processes=processes,
                request_deadline_at=request_deadline_at,
            )
        finally:
            for conn in connections:
                try:
                    conn.close()
                except Exception:
                    pass
            for process in processes:
                process.join(timeout=30)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5)

        result = finalize_search(
            self.name,
            job,
            finals,
            warmups,
            table,
            total_iterations,
            sync_rounds,
            early_stopped,
            start,
            warmup_wall,
        )
        result.stats.reward_table_loaded = len(table_seed)
        return result
