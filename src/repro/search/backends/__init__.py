"""Pluggable search-execution backends (paper Section 6.2.1).

The parallel MCTS coordinator delegates *how* its ``p`` workers execute to a
backend:

* ``"serial"`` — deterministic round-robin in the calling thread (the
  default, and the reference semantics every other backend must match);
* ``"thread"`` — one OS thread per worker;
* ``"process"`` — one OS process per worker, each rebuilding catalogue +
  executor from a picklable spec and exchanging compact sync messages with
  the coordinator (true wall-clock parallelism).

All backends share one synchronization protocol — best-state broadcast plus
cross-worker reward-table delta merges every ``sync_interval`` iterations —
implemented in :mod:`repro.search.backends.base`.  Select a backend through
:attr:`repro.search.config.SearchConfig.backend` or the
``REPRO_SEARCH_BACKEND`` environment variable.
"""

from __future__ import annotations

import os
from typing import Optional

from .base import (
    ParallelSearchResult,
    ProcessWorkerSpec,
    RewardTable,
    SearchBackend,
    SearchJob,
    dump_state,
    load_state,
)
from .process import ProcessBackend
from .serial import SerialBackend
from .thread import ThreadBackend

BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

#: Environment override consulted by :func:`resolve_backend_name` — lets CI
#: re-run the whole test suite under a different backend without code changes.
BACKEND_ENV_VAR = "REPRO_SEARCH_BACKEND"


def resolve_backend_name(
    requested: Optional[str], has_process_spec: bool
) -> str:
    """The backend to actually run.

    Precedence: ``REPRO_SEARCH_BACKEND`` environment variable, then the
    requested (config) name, then ``"serial"``.  A process request without a
    picklable worker spec falls back to serial — searches driven by plain
    closures (tests, ablations) cannot cross a process boundary.
    """
    name = os.environ.get(BACKEND_ENV_VAR) or requested or "serial"
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown search backend {name!r}; choose from {sorted(BACKENDS)}"
        )
    if name == "process" and not has_process_spec:
        return "serial"
    return name


def get_backend(name: str) -> SearchBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown search backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None


__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "ParallelSearchResult",
    "ProcessBackend",
    "ProcessWorkerSpec",
    "RewardTable",
    "SearchBackend",
    "SearchJob",
    "SerialBackend",
    "ThreadBackend",
    "dump_state",
    "get_backend",
    "load_state",
    "resolve_backend_name",
]
