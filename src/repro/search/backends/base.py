"""Shared machinery of the search-execution backends.

A *backend* decides how the ``p`` MCTS workers of a parallel search execute:
round-robin in the coordinator's thread (:class:`~repro.search.backends.serial.SerialBackend`),
one OS thread per worker (:class:`~repro.search.backends.thread.ThreadBackend`),
or one OS process per worker (:class:`~repro.search.backends.process.ProcessBackend`).
All three run the *same synchronization protocol* (paper Section 6.2.1):

1. every worker runs ``sync_interval`` iterations of its own search;
2. the coordinator gathers each worker's best state and its *reward delta*
   (the rewards it evaluated this round);
3. the deltas are merged — first writer wins, in worker order — into the
   cross-worker :class:`RewardTable`, and the global best state is broadcast
   back to every worker;
4. the search stops early when every worker's local optimum has been stale
   for ``early_stop`` iterations.

Because the reward table is only mutated at these barriers (workers buffer
new rewards locally during a round), the protocol is deterministic for a
fixed seed and worker count *no matter how the rounds are scheduled* — which
is what lets the serial, thread and process backends produce byte-identical
interfaces from the same configuration.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Protocol, Sequence

from ...difftree.nodes import worker_id_counter
from ...difftree.tree import Difftree
from ...obs import MetricsRegistry
from ..config import SearchConfig, SearchStats
from ..mcts import MCTSWorker, RewardFn
from ..state import SearchState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...database.executor import Executor
    from ...mapping.memo import MappingMemo
    from ...transform.engine import TransformEngine


class ParallelSearchResult:
    """Outcome of a (parallel) search: best state, reward, and diagnostics."""

    def __init__(
        self,
        best_state: SearchState,
        best_reward: float,
        stats: SearchStats,
        worker_stats: list[SearchStats],
    ) -> None:
        self.best_state = best_state
        self.best_reward = best_reward
        self.stats = stats
        self.worker_stats = worker_stats


class RewardTable:
    """Cross-worker fingerprint → reward table (thread-safe).

    Workers consult the table before evaluating any state; new rewards are
    buffered per worker and merged here only at synchronization barriers, so
    lookups during a round always observe the previous round's snapshot.

    Lock discipline is enforced statically: the ``unlocked-shared-mutation``
    rule of ``repro.analysis`` requires every mutation of this class's
    bookkeeping to sit inside a ``with self._lock:`` block.
    """

    def __init__(self) -> None:
        self._rewards: dict[str, float] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> tuple[bool, float]:
        """``(hit, reward)`` — rewards may legitimately be ``-inf``."""
        with self._lock:
            if key in self._rewards:
                self.hits += 1
                return True, self._rewards[key]
            self.misses += 1
            return False, 0.0

    def merge(self, delta: dict[str, float]) -> dict[str, float]:
        """Merge a worker's reward delta; returns the entries actually added.

        First writer wins: a fingerprint two workers evaluated in the same
        round keeps the reward of the earlier worker (worker order is the
        merge order, so the outcome is deterministic).
        """
        with self._lock:
            accepted = {
                key: reward
                for key, reward in delta.items()
                if key not in self._rewards
            }
            self._rewards.update(accepted)
            return accepted

    def seed(self, delta: dict[str, float]) -> None:
        """Plant already-merged entries (process-backend replicas) silently."""
        with self._lock:
            for key, reward in delta.items():
                self._rewards.setdefault(key, reward)

    def size(self) -> int:
        with self._lock:
            return len(self._rewards)

    def snapshot(self) -> dict[str, float]:
        """A copy of the fingerprint → reward entries (for persistence)."""
        with self._lock:
            return dict(self._rewards)

    def info(self) -> dict:
        with self._lock:
            return {
                "rewards": len(self._rewards),
                "hits": self.hits,
                "misses": self.misses,
            }


class ProcessWorkerSpec(Protocol):
    """A picklable recipe for rebuilding one worker's search context.

    The process backend cannot ship closures to worker processes, so callers
    that want true multiprocess execution provide a spec that each child
    unpickles and asks to rebuild everything a worker needs — catalogue,
    executor, transformation engine and reward function — inside its own
    process (see :class:`repro.core.pipeline.PipelineWorkerSpec`).
    """

    def build(
        self, worker_index: int, config: SearchConfig
    ) -> tuple["TransformEngine", RewardFn]:  # pragma: no cover - protocol
        ...

    def cache_info(self) -> tuple[Optional[dict], Optional[dict]]:
        """(plan-cache info, mapping-memo info) after the worker ran."""
        ...  # pragma: no cover - protocol


@dataclass
class SearchJob:
    """Everything a backend needs to run one parallel search."""

    initial_trees: Sequence[Difftree]
    config: SearchConfig
    #: legacy single shared engine / reward function (used for every worker
    #: unless the per-worker factories below are provided)
    engine: Optional["TransformEngine"] = None
    reward_fn: Optional[RewardFn] = None
    #: per-worker factories: workers with private engines (rule-application
    #: caches) and private reward-RNG streams behave identically on every
    #: backend, which the shared factories cannot guarantee under threads
    engine_factory: Optional[Callable[[int], "TransformEngine"]] = None
    reward_factory: Optional[Callable[[int], RewardFn]] = None
    #: diagnostics sinks surfaced through :class:`SearchStats`
    executor: Optional["Executor"] = None
    mapping_memo: Optional["MappingMemo"] = None
    #: picklable worker recipe enabling the process backend
    process_spec: Optional[ProcessWorkerSpec] = None
    #: pre-populated cross-worker reward table (persisted-cache reloads and
    #: warm generation-service pools hand one in so previously explored
    #: states are answered from the table instead of re-evaluated); backends
    #: use it as *the* shared table when ``config.shared_rewards`` is on
    reward_table: Optional[RewardTable] = None

    def engine_for(self, worker_index: int) -> "TransformEngine":
        if self.engine_factory is not None:
            return self.engine_factory(worker_index)
        if self.engine is None:
            raise ValueError("SearchJob needs an engine or an engine_factory")
        return self.engine

    def reward_for(self, worker_index: int) -> RewardFn:
        if self.reward_factory is not None:
            return self.reward_factory(worker_index)
        if self.reward_fn is None:
            raise ValueError("SearchJob needs a reward_fn or a reward_factory")
        return self.reward_fn

    def make_worker(
        self, worker_index: int, reward_table: Optional[RewardTable]
    ) -> MCTSWorker:
        """Build worker ``worker_index`` with its own RNG and id space."""
        return MCTSWorker(
            SearchState(self.initial_trees),
            self.engine_for(worker_index),
            self.reward_for(worker_index),
            self.config,
            rng=self.config.rng(offset=worker_index + 1),
            reward_table=reward_table,
            id_space=worker_id_counter(worker_index),
        )


class SearchBackend(Protocol):
    """The backend interface: run a :class:`SearchJob` to completion."""

    name: str

    def run(self, job: SearchJob) -> ParallelSearchResult:  # pragma: no cover
        ...


# ---------------------------------------------------------------------------
# protocol helpers shared by the backends
# ---------------------------------------------------------------------------


def round_sizes(config: SearchConfig) -> list[int]:
    """Iteration counts per synchronization round.

    Honours the per-worker iteration budget exactly: full ``sync_interval``
    rounds plus a final partial round for the remainder.
    """
    sync = max(1, config.sync_interval)
    full_rounds, remainder = divmod(max(0, config.max_iterations), sync)
    sizes = [sync] * full_rounds
    if remainder:
        sizes.append(remainder)
    return sizes


@dataclass
class WorkerSync:
    """One worker's contribution to a synchronization round."""

    best_reward: float
    best_fingerprint: str
    pending_rewards: dict[str, float]
    iterations_since_improvement: int
    #: set when the worker's best state changed since its last report (the
    #: process backend ships serialized trees only in that case)
    best_state: Optional[SearchState] = None


def merge_sync_round(
    syncs: Sequence[WorkerSync], table: Optional[RewardTable]
) -> tuple[int, dict[str, float]]:
    """Merge a round's reward deltas into the shared table, in worker order.

    Returns ``(best worker index, merged delta)`` — the delta is what the
    process backend broadcasts to the other workers' table replicas.
    """
    merged: dict[str, float] = {}
    if table is not None:
        for sync in syncs:
            merged.update(table.merge(sync.pending_rewards))
    best_index = max(range(len(syncs)), key=lambda i: syncs[i].best_reward)
    return best_index, merged


def early_stop_after_adopt(
    syncs: Sequence[WorkerSync], best_reward: float, early_stop: int
) -> bool:
    """The early-stop rule, evaluated *as if* every worker adopted the best.

    Adopting a strictly better state resets a worker's staleness counter to
    zero, so the search stops only when every worker already holds the global
    optimum and has been stale for ``early_stop`` iterations.  Computing this
    from the sync reports (rather than after the adopt calls) lets the
    process backend decide termination without an extra message round-trip.
    """
    return all(
        sync.iterations_since_improvement >= early_stop
        and not (best_reward > sync.best_reward)
        for sync in syncs
    )


def aggregate_stats(
    backend_name: str,
    worker_stats: Sequence[SearchStats],
    best_stats: SearchStats,
    best_reward: float,
    total_iterations: int,
    sync_rounds: int,
    early_stopped: bool,
    search_seconds: float,
    job: SearchJob,
    reward_table: Optional[RewardTable] = None,
    plan_cache_info: Optional[dict] = None,
    mapping_memo_info: Optional[dict] = None,
    warmup_seconds: float = 0.0,
) -> SearchStats:
    """Fold per-worker statistics into the aggregate :class:`SearchStats`."""
    if plan_cache_info is None and job.executor is not None:
        plan_cache_info = job.executor.plan_cache.info()
    if mapping_memo_info is None and job.mapping_memo is not None:
        mapping_memo_info = job.mapping_memo.info()
    # per-worker registry snapshots (process-backend workers ship theirs in
    # the "done" reply) merge in worker order — the reward table's
    # first-writer-wins discipline — so the totals are deterministic under
    # any scheduling
    merged_metrics = None
    snapshots = [w.metrics for w in worker_stats if w.metrics]
    if snapshots:
        registry = MetricsRegistry()
        for snapshot in snapshots:
            registry.merge(snapshot)
        merged_metrics = registry.snapshot()
    return SearchStats(
        iterations=total_iterations,
        states_evaluated=sum(w.states_evaluated for w in worker_stats),
        rule_applications=sum(w.rule_applications for w in worker_stats),
        # the authoritative best reward: a worker that merely *adopted* the
        # global best never updates its own stats.best_reward, so the value
        # must come from the worker attributes / final sync reports
        best_reward=best_reward,
        best_iteration=best_stats.best_iteration,
        early_stopped=early_stopped,
        per_worker_iterations=[w.iterations for w in worker_stats],
        search_seconds=search_seconds,
        reward_cache_hits=sum(w.reward_cache_hits for w in worker_stats),
        rewards_seeded=sum(w.rewards_seeded for w in worker_stats),
        plan_cache=plan_cache_info,
        mapping_memo=mapping_memo_info,
        backend=backend_name,
        reward_table_hits=sum(w.reward_table_hits for w in worker_stats),
        sync_rounds=sync_rounds,
        warmup_seconds=warmup_seconds,
        reward_table=reward_table.info() if reward_table is not None else None,
        metrics=merged_metrics,
    )


# ---------------------------------------------------------------------------
# compact state serialization (process-backend sync messages)
# ---------------------------------------------------------------------------


def dump_state(state: SearchState) -> bytes:
    """Serialize a search state as compact (root, queries, terminal) tuples.

    Only the tree structure travels: per-instance caches (derivations, type
    annotators — which reference the catalogue) are rebuilt lazily on the
    receiving side.  Choice-node ids are preserved by pickling, so interaction
    and widget covers computed on the wire-copy stay id-compatible.
    """
    payload = (
        [(tree.root, tree.queries) for tree in state.trees],
        state.terminal,
    )
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def load_state(data: bytes) -> SearchState:
    """Rebuild a :class:`SearchState` from :func:`dump_state` bytes."""
    trees_payload, terminal = pickle.loads(data)
    trees = [Difftree(root, queries) for root, queries in trees_payload]
    return SearchState(trees, terminal=terminal)
