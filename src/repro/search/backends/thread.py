"""The thread backend: one OS thread per MCTS worker.

Runs each worker's round on its own thread and joins them at the
synchronization barrier.  The GIL means pure-Python reward evaluation gains
little wall-clock, but the backend exercises the full concurrent code path —
shared plan cache, shared mapping memo, reward-table locking — and its
results are byte-identical to the serial backend's because workers share no
mutable search state during a round (see :mod:`repro.search.backends.serial`).

That guarantee needs per-worker engines: a job built from the legacy single
shared :class:`~repro.transform.engine.TransformEngine` (no
``engine_factory``) would let concurrent workers race on the engine's
rule-application cache, whose entries are sampled with the populating
worker's RNG.  Such jobs keep the thread pool idle and run their rounds
round-robin instead — same results, no races.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ...obs import span
from ..mcts import MCTSWorker
from .base import ParallelSearchResult, SearchJob
from .serial import _LocalBackend


class ThreadBackend(_LocalBackend):
    """One OS thread per worker, joined at every synchronization barrier."""

    name = "thread"

    def __init__(self) -> None:
        super().__init__()
        self._pool: Optional[ThreadPoolExecutor] = None

    def run(self, job: SearchJob) -> ParallelSearchResult:
        # one pool for the whole search, not one per synchronization round
        with ThreadPoolExecutor(
            max_workers=max(1, job.config.workers)
        ) as pool:
            self._pool = pool
            try:
                return super().run(job)
            finally:
                self._pool = None

    def _run_round(self, workers: list[MCTSWorker], round_size: int) -> None:
        if self._pool is None or not self._private_engines:
            # legacy shared-engine job: concurrent rounds would race on the
            # engine's caches — fall back to the serial schedule
            super()._run_round(workers, round_size)
            return

        def run_worker(index_worker: tuple[int, MCTSWorker]) -> None:
            index, worker = index_worker
            # per-thread span: each worker thread keeps its own span stack,
            # so nested reward spans attribute to the right worker
            with span("search.worker_round", worker=index, size=round_size):
                for _ in range(round_size):
                    worker.run_iteration()

        # list() propagates the first worker exception, if any
        list(self._pool.map(run_worker, enumerate(workers)))
