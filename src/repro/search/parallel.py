"""Parallel MCTS coordination (paper Section 6.2.1, "run the search
iterations in parallel").

The paper distributes MCTS over ``p`` workers; every ``s`` iterations the
coordinator gathers each worker's best state, broadcasts the overall best
back, and terminates early when every worker reports that its local optimum
has not changed in ``es`` iterations.

*How* the workers execute is delegated to a pluggable backend
(:mod:`repro.search.backends`): deterministic round-robin in this thread
(``"serial"``, the default), one OS thread per worker (``"thread"``), or one
OS process per worker (``"process"`` — true wall-clock parallelism, requires
a picklable worker spec).  All backends run the same synchronization
protocol, including the cross-worker shared reward table that stops ``p``
workers from re-evaluating the overlapping states they all visit.

Every worker's reward evaluation executes SQL through a compiled-plan cache
(:data:`repro.database.plancache.SHARED_PLAN_CACHE` for in-process backends;
a per-process clone for process workers), so the thousands of reward queries
a search run issues share compiled plan sets; pass the pipeline's
``executor`` to the coordinator to surface the cache's hit statistics in
:class:`SearchStats`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..difftree.tree import Difftree
from ..transform.engine import TransformEngine
from .backends import (
    ParallelSearchResult,
    ProcessWorkerSpec,
    SearchJob,
    get_backend,
    resolve_backend_name,
)
from .config import SearchConfig
from .mcts import RewardFn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database.executor import Executor
    from ..mapping.memo import MappingMemo

__all__ = ["ParallelCoordinator", "ParallelSearchResult", "parallel_search"]


class ParallelCoordinator:
    """Coordinates ``p`` MCTS workers through a search-execution backend."""

    def __init__(
        self,
        initial_trees: Sequence[Difftree],
        engine: Optional[TransformEngine] = None,
        reward_fn: Optional[RewardFn] = None,
        config: Optional[SearchConfig] = None,
        executor: Optional["Executor"] = None,
        mapping_memo: Optional["MappingMemo"] = None,
        engine_factory: Optional[Callable[[int], TransformEngine]] = None,
        reward_factory: Optional[Callable[[int], RewardFn]] = None,
        process_spec: Optional[ProcessWorkerSpec] = None,
        backend: Optional[str] = None,
        reward_table=None,
        backend_instance=None,
    ) -> None:
        self.config = config or SearchConfig()
        self.job = SearchJob(
            initial_trees=list(initial_trees),
            config=self.config,
            engine=engine,
            reward_fn=reward_fn,
            engine_factory=engine_factory,
            reward_factory=reward_factory,
            executor=executor,
            mapping_memo=mapping_memo,
            process_spec=process_spec,
            reward_table=reward_table,
        )
        if backend_instance is not None:
            # a live backend (e.g. the generation service's warm worker
            # pool) bypasses name resolution entirely
            self.backend_name = backend_instance.name
            self.backend = backend_instance
        else:
            self.backend_name = resolve_backend_name(
                backend or self.config.backend,
                has_process_spec=process_spec is not None,
            )
            self.backend = get_backend(self.backend_name)
        #: the in-process worker instances, populated by serial / thread
        #: backends after :meth:`run` (process workers live in their own
        #: interpreters and only report serialized stats)
        self.workers = []

    def run(self) -> ParallelSearchResult:
        """Run the synchronized parallel search until termination."""
        result = self.backend.run(self.job)
        self.workers = getattr(self.backend, "workers", [])
        return result


def parallel_search(
    initial_trees: Sequence[Difftree],
    engine: Optional[TransformEngine] = None,
    reward_fn: Optional[RewardFn] = None,
    config: Optional[SearchConfig] = None,
    executor: Optional["Executor"] = None,
    mapping_memo: Optional["MappingMemo"] = None,
    engine_factory: Optional[Callable[[int], TransformEngine]] = None,
    reward_factory: Optional[Callable[[int], RewardFn]] = None,
    process_spec: Optional[ProcessWorkerSpec] = None,
    backend: Optional[str] = None,
    reward_table=None,
    backend_instance=None,
) -> ParallelSearchResult:
    """Convenience wrapper around :class:`ParallelCoordinator`."""
    return ParallelCoordinator(
        initial_trees,
        engine,
        reward_fn,
        config,
        executor=executor,
        mapping_memo=mapping_memo,
        engine_factory=engine_factory,
        reward_factory=reward_factory,
        process_spec=process_spec,
        backend=backend,
        reward_table=reward_table,
        backend_instance=backend_instance,
    ).run()
