"""Parallel MCTS coordination (paper Section 6.2.1, "run the search
iterations in parallel").

The paper distributes MCTS over ``p`` workers; every ``s`` iterations the
coordinator gathers each worker's best state, broadcasts the overall best
back, and terminates early when every worker reports that its local optimum
has not changed in ``es`` iterations.

This module reproduces that coordination *deterministically*: workers are
independent :class:`MCTSWorker` instances with distinct seeds whose iteration
rounds are interleaved round-robin by the coordinator.  (True multi-process
execution would change wall-clock numbers but not the search behaviour the
paper's experiments study — see DESIGN.md, substitutions.)

Every worker's reward evaluation executes SQL through the process-wide
compiled-plan cache (:data:`repro.database.plancache.SHARED_PLAN_CACHE`), so
the thousands of reward queries a search run issues share one compiled plan
set no matter how many executors or workers are involved; pass the pipeline's
``executor`` to the coordinator to surface the cache's hit statistics in
:class:`SearchStats`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence

from ..difftree.tree import Difftree
from ..transform.engine import TransformEngine
from .config import SearchConfig, SearchStats
from .mcts import MCTSWorker, RewardFn
from .state import SearchState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database.executor import Executor
    from ..mapping.memo import MappingMemo


class ParallelSearchResult:
    """Outcome of a (parallel) search: best state, reward, and diagnostics."""

    def __init__(
        self,
        best_state: SearchState,
        best_reward: float,
        stats: SearchStats,
        worker_stats: list[SearchStats],
    ) -> None:
        self.best_state = best_state
        self.best_reward = best_reward
        self.stats = stats
        self.worker_stats = worker_stats


class ParallelCoordinator:
    """Round-robin coordinator over ``p`` MCTS workers with periodic syncs."""

    def __init__(
        self,
        initial_trees: Sequence[Difftree],
        engine: TransformEngine,
        reward_fn: RewardFn,
        config: Optional[SearchConfig] = None,
        executor: Optional["Executor"] = None,
        mapping_memo: Optional["MappingMemo"] = None,
    ) -> None:
        self.config = config or SearchConfig()
        self.engine = engine
        self.reward_fn = reward_fn
        self.executor = executor
        self.mapping_memo = mapping_memo
        initial_state = SearchState(initial_trees)
        self.workers = [
            MCTSWorker(
                initial_state,
                engine,
                reward_fn,
                self.config,
                rng=self.config.rng(offset=w + 1),
            )
            for w in range(max(1, self.config.workers))
        ]

    def run(self) -> ParallelSearchResult:
        """Run the synchronized parallel search until termination."""
        config = self.config
        start = time.perf_counter()
        total_iterations = 0
        # honour the iteration budget exactly: full sync rounds plus a final
        # partial round for the `max_iterations % sync_interval` remainder
        sync = max(1, config.sync_interval)
        full_rounds, remainder = divmod(max(0, config.max_iterations), sync)
        round_sizes = [sync] * full_rounds
        if remainder:
            round_sizes.append(remainder)

        for round_size in round_sizes:
            # each worker runs `round_size` iterations of its own search
            for worker in self.workers:
                for _ in range(round_size):
                    worker.run_iteration()
                    total_iterations += 1

            # synchronization: broadcast the best state across workers
            best_worker = max(self.workers, key=lambda w: w.best_reward)
            best_state, best_reward = best_worker.best_state, best_worker.best_reward
            for worker in self.workers:
                worker.adopt(best_state, best_reward)

            # early stop: every worker's local optimum is stale
            if all(
                w.iterations_since_improvement >= config.early_stop
                for w in self.workers
            ):
                break

        best_worker = max(self.workers, key=lambda w: w.best_reward)
        stats = SearchStats(
            iterations=total_iterations,
            states_evaluated=sum(w.stats.states_evaluated for w in self.workers),
            rule_applications=sum(w.stats.rule_applications for w in self.workers),
            best_reward=best_worker.best_reward,
            best_iteration=best_worker.stats.best_iteration,
            early_stopped=any(w.stats.early_stopped for w in self.workers)
            or all(
                w.iterations_since_improvement >= config.early_stop
                for w in self.workers
            ),
            per_worker_iterations=[w.stats.iterations for w in self.workers],
            search_seconds=time.perf_counter() - start,
            reward_cache_hits=sum(w.stats.reward_cache_hits for w in self.workers),
            rewards_seeded=sum(w.stats.rewards_seeded for w in self.workers),
            plan_cache=(
                self.executor.plan_cache.info() if self.executor is not None else None
            ),
            mapping_memo=(
                self.mapping_memo.info() if self.mapping_memo is not None else None
            ),
        )
        return ParallelSearchResult(
            best_worker.best_state,
            best_worker.best_reward,
            stats,
            [w.stats for w in self.workers],
        )


def parallel_search(
    initial_trees: Sequence[Difftree],
    engine: TransformEngine,
    reward_fn: RewardFn,
    config: Optional[SearchConfig] = None,
    executor: Optional["Executor"] = None,
    mapping_memo: Optional["MappingMemo"] = None,
) -> ParallelSearchResult:
    """Convenience wrapper around :class:`ParallelCoordinator`."""
    return ParallelCoordinator(
        initial_trees,
        engine,
        reward_fn,
        config,
        executor=executor,
        mapping_memo=mapping_memo,
    ).run()
