"""Search configuration shared by MCTS workers and the end-to-end pipeline.

Defaults follow the paper's Section 7.3: early stop after 30 unimproved
iterations, 3 parallel workers, synchronization every 10 iterations, and K=5
random interface mappings per reward estimate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class SearchConfig:
    """Tunable parameters of the Difftree search.

    Attributes:
        max_iterations: hard cap on MCTS iterations per worker.
        early_stop: stop when the best state has not improved for this many
            iterations (the paper's ``es`` parameter, default 30).
        workers: number of (simulated) parallel MCTS workers (``p``, default 3).
        sync_interval: synchronize workers every this many iterations
            (``s``, default 10).
        exploration_c: the UCT exploration constant ``c`` in Equation 1.
        variance_d: the ``d`` constant in the variance term of Equation 1.
        rollout_depth: maximum number of random transformations per playout.
        reward_mappings: number of random interface mappings (``K``) used to
            estimate a state's reward.
        terminate_probability: chance of choosing the special TERMINATE rule
            at each playout step.
        max_applications: cap on enumerated rule applications per state.
        seed: seed for all randomness (reproducibility).
        backend: search-execution backend — ``"serial"`` (deterministic
            round-robin in one thread), ``"thread"`` (one OS thread per
            worker), or ``"process"`` (one OS process per worker; requires a
            picklable worker spec, see :mod:`repro.search.backends`).  The
            ``REPRO_SEARCH_BACKEND`` environment variable overrides this.
        shared_rewards: share every worker's newly evaluated rewards through
            the cross-worker reward table at each synchronization round, so
            overlapping states are evaluated once globally instead of once
            per worker.  Because rewards are a pure function of
            (seed, state fingerprint) — see
            :func:`repro.core.pipeline.make_reward_fn` — table hits return
            exactly the value ``reward_fn`` would have computed, so sharing
            (and pre-seeding the table from a persisted cache) changes cost
            but never trajectories: results are byte-identical with sharing
            on or off, cold or warm.
        round_deadline_seconds: supervision deadline on every worker reply
            in the process protocols (spawn ``ready``, per-round ``sync``,
            final ``done``): a worker silent for longer is declared hung and
            replaced / retried.  ``None`` disables hang detection (crashes
            are still caught through process sentinels).
        request_deadline_seconds: wall-clock budget for one whole search
            request; when it expires the service degrades to the serial
            in-process backend instead of waiting (``None``: no budget).
        task_retries: supervised replays of a pooled task after a worker
            failure before the pool gives up and the service degrades.
        retry_backoff_seconds: base of the jittered exponential backoff
            slept between those replays (deterministic per seed — see
            :func:`repro.faults.backoff_delays`).

    The four resilience knobs are schedule parameters: like worker count and
    sync interval they are deliberately outside the persistence-key config
    fingerprint, and — because rewards are pure — they can never change
    which interface is generated, only how failures are survived.
    """

    max_iterations: int = 120
    early_stop: int = 30
    workers: int = 3
    sync_interval: int = 10
    exploration_c: float = 1.2
    variance_d: float = 1.0
    rollout_depth: int = 14
    reward_mappings: int = 5
    terminate_probability: float = 0.08
    max_applications: int = 48
    seed: int = 42
    backend: str = "serial"
    shared_rewards: bool = True
    round_deadline_seconds: Optional[float] = 300.0
    request_deadline_seconds: Optional[float] = None
    task_retries: int = 2
    retry_backoff_seconds: float = 0.05

    def rng(self, offset: int = 0) -> random.Random:
        """A deterministic RNG derived from the seed (per worker offset)."""
        return random.Random(self.seed + offset * 7919)

    def replace(self, **kwargs) -> "SearchConfig":
        """A copy of the configuration with the given fields overridden."""
        data = self.__dict__.copy()
        data.update(kwargs)
        return SearchConfig(**data)


@dataclass
class SearchStats:
    """Diagnostics collected by a search run (used by the benchmarks)."""

    iterations: int = 0
    states_evaluated: int = 0
    rule_applications: int = 0
    best_reward: float = float("-inf")
    best_iteration: int = 0
    early_stopped: bool = False
    per_worker_iterations: list[int] = field(default_factory=list)
    search_seconds: float = 0.0
    #: reward-cache hits: states whose reward was reused instead of calling
    #: ``reward_fn`` (rollout revisits plus seeds adopted from other workers)
    reward_cache_hits: int = 0
    #: rewards planted into a worker's cache by ``adopt()`` during
    #: synchronization, so broadcast states are never re-evaluated
    rewards_seeded: int = 0
    #: snapshot of the shared query-plan cache after the search (all workers
    #: execute their reward queries through one process-wide compiled plan
    #: set; populated when the coordinator is given the executor)
    plan_cache: Optional[dict] = None
    #: snapshot of the shared mapping-fragment memo after the search (the
    #: second cache level: per-tree schemas / candidate fragments shared by
    #: every worker's reward mapper; populated when the coordinator is given
    #: the memo)
    mapping_memo: Optional[dict] = None
    #: the backend that actually ran the search ("serial", "thread",
    #: "process"); may differ from the requested backend when the process
    #: backend had no picklable worker spec and fell back to serial
    backend: str = "serial"
    #: evaluations answered by the cross-worker shared reward table instead
    #: of calling ``reward_fn`` (states another worker already evaluated)
    reward_table_hits: int = 0
    #: synchronization rounds the coordinator ran (best-state broadcast +
    #: reward-delta merge every ``sync_interval`` iterations)
    sync_rounds: int = 0
    #: worker warm-up cost: seconds from backend start until every worker
    #: had evaluated the initial state.  On the process backend each worker
    #: additionally rebuilds catalogue + executor and fills cold per-process
    #: caches; serial / thread workers evaluate through the parent's shared
    #: (usually already warm) caches, so their warm-up is much smaller
    warmup_seconds: float = 0.0
    #: snapshot of the shared reward table after the search
    reward_table: Optional[dict] = None
    #: how this request's workers came up: ``None`` for a one-shot search,
    #: ``"cold"`` for the first request served by a pool (spawn + warmup paid
    #: here), ``"warm"`` for subsequent requests on live workers
    pool: Optional[str] = None
    #: reward-table entries preloaded before the search started (from a
    #: persisted cache file or a previous request over the same catalogue /
    #: workload); these states are never re-evaluated
    reward_table_loaded: int = 0
    #: picklable per-worker metrics-registry snapshot
    #: (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`): process-backend
    #: workers attach theirs to the ``done`` reply and the coordinator merges
    #: them — in worker order, like the reward table — into the aggregate
    #: stats' ``workers.*`` namespace
    metrics: Optional[dict] = None
    #: span events (:class:`repro.obs.trace.SpanEvent`) a worker process
    #: recorded while tracing was enabled; the coordinator adopts them into
    #: its tracer so one exported trace covers every process of the run
    spans: Optional[list] = None
    #: set when supervision degraded this search off its requested backend
    #: (currently only ``"serial"``: the one-shot process backend failed and
    #: the pipeline re-ran the search in-process); ``None`` on the happy path
    degraded: Optional[str] = None
