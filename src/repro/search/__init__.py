"""Monte Carlo Tree Search over Difftree states (paper Section 6.2)."""

from .config import SearchConfig, SearchStats
from .mcts import MCTSNode, MCTSWorker, RewardFn, search_difftrees
from .parallel import ParallelCoordinator, ParallelSearchResult, parallel_search
from .state import SearchState

__all__ = [
    "MCTSNode",
    "MCTSWorker",
    "ParallelCoordinator",
    "ParallelSearchResult",
    "RewardFn",
    "SearchConfig",
    "SearchState",
    "SearchStats",
    "parallel_search",
    "search_difftrees",
]
