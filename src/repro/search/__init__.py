"""Monte Carlo Tree Search over Difftree states (paper Section 6.2)."""

from .backends import (
    ProcessBackend,
    RewardTable,
    SearchBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from .config import SearchConfig, SearchStats
from .mcts import MCTSNode, MCTSWorker, RewardFn, search_difftrees
from .parallel import ParallelCoordinator, ParallelSearchResult, parallel_search
from .state import SearchState

__all__ = [
    "MCTSNode",
    "MCTSWorker",
    "ParallelCoordinator",
    "ParallelSearchResult",
    "ProcessBackend",
    "RewardFn",
    "RewardTable",
    "SearchBackend",
    "SearchConfig",
    "SearchState",
    "SearchStats",
    "SerialBackend",
    "ThreadBackend",
    "get_backend",
    "parallel_search",
    "search_difftrees",
]
