"""Recursive-descent parser for the SQL dialect used by the PI2 workloads.

The grammar mirrors a PEG-style specification (ordered choice, optional and
repeated elements), which is exactly the structure PI2's choice nodes
generalise: ``ANY`` corresponds to ordered choice, ``OPT`` to ``?``, ``MULTI``
to ``*``/``+`` and ``SUBSET`` to a sequence of optionals.

Supported features (everything the paper's Listings 1-7 require, plus a bit
of headroom):

* ``SELECT [DISTINCT] expr [AS alias], ...``
* aggregate and scalar function calls, ``count(*)``, ``count(DISTINCT x)``
* ``FROM`` with comma joins, explicit ``JOIN ... ON``, aliased subqueries
* ``WHERE`` / ``HAVING`` with ``AND``/``OR``/``NOT``, comparison operators,
  ``BETWEEN`` (and the paper's ``BTWN lo & hi`` shorthand), ``IN`` over value
  lists and subqueries, ``IS [NOT] NULL``, ``LIKE``
* scalar subqueries in expressions (e.g. inside ``HAVING``)
* ``GROUP BY``, ``ORDER BY ... [ASC|DESC]``, ``LIMIT`` / ``OFFSET``
* ``CASE WHEN ... THEN ... [ELSE ...] END``
"""

from __future__ import annotations

from typing import Optional

from . import ast_nodes as A
from .ast_nodes import L, Node  # noqa: F401 - L used by helper methods
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenType

#: Comparison operators recognised in predicates.
COMPARISON_OPS = {"=", "<>", "!=", ">", "<", ">=", "<="}

#: Aggregate functions known to the substrate (used for type inference too).
AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}


class Parser:
    """Parses a token stream into the generic :class:`Node` AST."""

    def __init__(self, tokens: list[Token], text: str = "") -> None:
        self.tokens = tokens
        self.text = text
        self.idx = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.idx]

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.idx + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.current
        if tok.type is not TokenType.EOF:
            self.idx += 1
        return tok

    def expect(self, ttype: TokenType, value: Optional[str] = None) -> Token:
        tok = self.current
        if tok.type is not ttype or (value is not None and tok.upper() != value.upper()):
            raise ParseError(
                f"expected {value or ttype.value!s} but found {tok.value!r} at {tok.pos}",
                token=tok,
                expected=value or ttype.value,
            )
        return self.advance()

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise ParseError(
                f"expected {'/'.join(names)} but found {self.current.value!r} "
                f"at {self.current.pos}",
                token=self.current,
                expected="/".join(names),
            )
        return self.advance()

    # -- entry points -----------------------------------------------------

    def parse_statement(self) -> Node:
        """Parse a single SELECT statement (optionally ``;``-terminated)."""
        stmt = self.parse_select()
        if self.current.type is TokenType.SEMICOLON:
            self.advance()
        if self.current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {self.current.value!r} at "
                f"{self.current.pos}",
                token=self.current,
            )
        return stmt

    # -- statements ---------------------------------------------------------

    def parse_select(self) -> Node:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            items.append(self.parse_select_item())
        clauses = [A.select_clause(items, distinct=distinct)]

        if self.current.is_keyword("FROM"):
            clauses.append(self.parse_from())
        if self.current.is_keyword("WHERE"):
            self.advance()
            clauses.append(A.where_clause(self._as_conjunction(self.parse_expr())))
        if self.current.is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            exprs = [self.parse_expr()]
            while self.current.type is TokenType.COMMA:
                self.advance()
                exprs.append(self.parse_expr())
            clauses.append(A.groupby_clause(exprs))
        if self.current.is_keyword("HAVING"):
            self.advance()
            clauses.append(A.having_clause(self._as_conjunction(self.parse_expr())))
        if self.current.is_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            items = [self.parse_order_item()]
            while self.current.type is TokenType.COMMA:
                self.advance()
                items.append(self.parse_order_item())
            clauses.append(A.orderby_clause(items))
        if self.current.is_keyword("LIMIT"):
            self.advance()
            clauses.append(A.limit_clause(self.parse_expr()))
            if self.current.is_keyword("OFFSET"):
                self.advance()
                # offset expression is stored as a second child of LIMIT
                clauses[-1].children.append(self.parse_expr())
        return A.select_stmt(*clauses)

    @staticmethod
    def _as_conjunction(expr: Node) -> Node:
        """Canonicalise WHERE / HAVING expressions as conjunction lists.

        Wrapping a single predicate in a one-element AND keeps every filter
        clause list-shaped, which lets the Difftree transformation rules
        (PushANY over conjunctions, ANY→SUBSET, PushOPT2) align queries that
        differ in how many predicates they have.
        """
        if expr.label == L.AND:
            return expr
        return A.and_(expr)

    def parse_select_item(self) -> Node:
        if self.current.type is TokenType.STAR:
            self.advance()
            return A.select_item(A.star())
        expr = self.parse_expr()
        alias = self._parse_optional_alias()
        return A.select_item(expr, alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            tok = self.expect(TokenType.IDENT)
            return tok.value
        # bare alias: an identifier that is not a clause keyword
        if self.current.type is TokenType.IDENT and not self.current.is_keyword(
            "FROM",
            "WHERE",
            "GROUP",
            "HAVING",
            "ORDER",
            "LIMIT",
            "OFFSET",
            "AND",
            "OR",
            "ON",
            "JOIN",
            "INNER",
            "LEFT",
            "RIGHT",
            "UNION",
            "ASC",
            "DESC",
            "BETWEEN",
            "BTWN",
            "IN",
            "NOT",
            "IS",
            "LIKE",
            "WHEN",
            "THEN",
            "ELSE",
            "END",
        ):
            return self.advance().value
        return None

    def parse_from(self) -> Node:
        self.expect_keyword("FROM")
        refs = [self.parse_table_ref()]
        while True:
            if self.current.type is TokenType.COMMA:
                self.advance()
                refs.append(self.parse_table_ref())
            elif self.current.is_keyword("JOIN", "INNER", "LEFT", "RIGHT"):
                refs.append(self.parse_join(refs.pop()))
            else:
                break
        return A.from_clause(refs)

    def parse_join(self, left: Node) -> Node:
        join_type = "INNER"
        if self.current.is_keyword("INNER", "LEFT", "RIGHT"):
            join_type = self.advance().upper()
            self.accept_keyword("OUTER")
        self.expect_keyword("JOIN")
        right = self.parse_table_ref()
        self.expect_keyword("ON")
        cond = self.parse_expr()
        return Node(L.JOIN, join_type, [left, right, Node(L.JOIN_ON, None, [cond])])

    def parse_table_ref(self) -> Node:
        if self.current.type is TokenType.LPAREN:
            self.advance()
            stmt = self.parse_select()
            self.expect(TokenType.RPAREN)
            alias = self._parse_optional_alias()
            return A.table_ref(A.subquery(stmt), alias)
        tok = self.expect(TokenType.IDENT)
        alias = self._parse_optional_alias()
        return A.table_ref(A.table_name(tok.value), alias)

    def parse_order_item(self) -> Node:
        expr = self.parse_expr()
        direction = "ASC"
        if self.current.is_keyword("ASC", "DESC"):
            direction = self.advance().upper()
        return A.order_item(expr, direction)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> Node:
        return self.parse_or()

    def parse_or(self) -> Node:
        operands = [self.parse_and()]
        while self.current.is_keyword("OR"):
            self.advance()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return A.or_(*operands)

    def parse_and(self) -> Node:
        operands = [self.parse_not()]
        while self.current.is_keyword("AND"):
            self.advance()
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return A.and_(*operands)

    def parse_not(self) -> Node:
        if self.accept_keyword("NOT"):
            return A.not_(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Node:
        left = self.parse_additive()

        if (
            self.current.type is TokenType.OPERATOR
            and self.current.value in COMPARISON_OPS
        ):
            op = self.advance().value
            right = self.parse_additive()
            return A.binop(op, left, right)

        negated = False
        if self.current.is_keyword("NOT") and self.peek(1).is_keyword(
            "BETWEEN", "BTWN", "IN", "LIKE"
        ):
            negated = True
            self.advance()

        if self.current.is_keyword("BETWEEN", "BTWN"):
            self.advance()
            lo = self.parse_additive()
            # the paper's listings abbreviate "BETWEEN lo AND hi" as
            # "BTWN lo & hi"; accept both separators
            if self.current.is_keyword("AND"):
                self.advance()
            elif (
                self.current.type is TokenType.OPERATOR and self.current.value == "&"
            ):
                self.advance()
            else:
                raise ParseError(
                    f"expected AND in BETWEEN at {self.current.pos}",
                    token=self.current,
                    expected="AND",
                )
            hi = self.parse_additive()
            node = A.between(left, lo, hi)
            return A.not_(node) if negated else node

        if self.current.is_keyword("IN"):
            self.advance()
            self.expect(TokenType.LPAREN)
            if self.current.is_keyword("SELECT"):
                sub = self.parse_select()
                self.expect(TokenType.RPAREN)
                node = A.in_query(left, A.subquery(sub))
            else:
                values = [self.parse_expr()]
                while self.current.type is TokenType.COMMA:
                    self.advance()
                    values.append(self.parse_expr())
                self.expect(TokenType.RPAREN)
                node = A.in_list(left, values)
            return A.not_(node) if negated else node

        if self.current.is_keyword("LIKE"):
            self.advance()
            right = self.parse_additive()
            node = A.binop("LIKE", left, right)
            return A.not_(node) if negated else node

        if self.current.is_keyword("IS"):
            self.advance()
            is_not = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return A.is_null(left, negated=is_not)

        return left

    def parse_additive(self) -> Node:
        left = self.parse_multiplicative()
        while (
            self.current.type is TokenType.OPERATOR and self.current.value in ("+", "-")
        ) or (
            self.current.type is TokenType.OPERATOR and self.current.value == "||"
        ):
            op = self.advance().value
            right = self.parse_multiplicative()
            left = A.binop(op, left, right)
        return left

    def parse_multiplicative(self) -> Node:
        left = self.parse_unary()
        while True:
            if self.current.type is TokenType.STAR:
                # disambiguate multiplication from SELECT * / count(*): a STAR
                # in expression position followed by an operand is a multiply
                nxt = self.peek(1)
                if nxt.type in (
                    TokenType.IDENT,
                    TokenType.NUMBER,
                    TokenType.STRING,
                    TokenType.LPAREN,
                ) and not nxt.is_keyword("FROM", "WHERE"):
                    self.advance()
                    left = A.binop("*", left, self.parse_unary())
                    continue
                break
            if self.current.type is TokenType.OPERATOR and self.current.value in (
                "/",
                "%",
            ):
                op = self.advance().value
                left = A.binop(op, left, self.parse_unary())
                continue
            break
        return left

    def parse_unary(self) -> Node:
        if self.current.type is TokenType.OPERATOR and self.current.value == "-":
            self.advance()
            operand = self.parse_unary()
            if operand.label == L.LITERAL_NUM:
                return A.literal_num(-operand.value)
            return A.neg(operand)
        if self.current.type is TokenType.OPERATOR and self.current.value == "+":
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Node:
        tok = self.current

        if tok.type is TokenType.NUMBER:
            self.advance()
            text = tok.value
            value: float | int
            if any(ch in text for ch in ".eE"):
                value = float(text)
            else:
                value = int(text)
            return A.literal_num(value)

        if tok.type is TokenType.STRING:
            self.advance()
            return A.literal_str(tok.value)

        if tok.type is TokenType.LPAREN:
            self.advance()
            if self.current.is_keyword("SELECT"):
                stmt = self.parse_select()
                self.expect(TokenType.RPAREN)
                return A.subquery(stmt)
            expr = self.parse_expr()
            self.expect(TokenType.RPAREN)
            return expr

        if tok.type is TokenType.STAR:
            self.advance()
            return A.star()

        if tok.is_keyword("TRUE"):
            self.advance()
            return A.literal_bool(True)
        if tok.is_keyword("FALSE"):
            self.advance()
            return A.literal_bool(False)
        if tok.is_keyword("NULL"):
            self.advance()
            return A.literal_null()

        if tok.is_keyword("CASE"):
            return self.parse_case()

        if tok.type is TokenType.IDENT:
            return self.parse_identifier_expression()

        raise ParseError(
            f"unexpected token {tok.value!r} at {tok.pos}", token=tok
        )

    def parse_case(self) -> Node:
        self.expect_keyword("CASE")
        whens: list[Node] = []
        while self.current.is_keyword("WHEN"):
            self.advance()
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append(Node(L.WHEN, None, [cond, result]))
        else_expr: Optional[Node] = None
        if self.accept_keyword("ELSE"):
            else_expr = self.parse_expr()
        self.expect_keyword("END")
        children = list(whens)
        if else_expr is not None:
            children.append(else_expr)
        return Node(L.CASE, None, children)

    def parse_identifier_expression(self) -> Node:
        """Parse a column reference or a function call starting at an IDENT."""
        name_tok = self.expect(TokenType.IDENT)

        # function call
        if self.current.type is TokenType.LPAREN:
            self.advance()
            distinct = self.accept_keyword("DISTINCT")
            args: list[Node] = []
            if self.current.type is TokenType.RPAREN:
                pass  # zero-argument call, e.g. today()
            elif self.current.type is TokenType.STAR:
                self.advance()
                args.append(A.star())
            else:
                args.append(self.parse_expr())
                while self.current.type is TokenType.COMMA:
                    self.advance()
                    args.append(self.parse_expr())
            self.expect(TokenType.RPAREN)
            return A.func(name_tok.value, args, distinct=distinct)

        # qualified column (t.c)
        if self.current.type is TokenType.DOT:
            self.advance()
            if self.current.type is TokenType.STAR:
                self.advance()
                return Node(L.STAR, f"{name_tok.value}.*")
            col_tok = self.expect(TokenType.IDENT)
            return A.column(col_tok.value, table=name_tok.value)

        return A.column(name_tok.value)


def parse(sql: str) -> Node:
    """Parse a SQL string into its AST. Raises :class:`ParseError` on failure."""
    tokens = tokenize(sql)
    return Parser(tokens, sql).parse_statement()


def parse_many(queries: list[str]) -> list[Node]:
    """Parse a list of SQL strings, preserving order."""
    return [parse(q) for q in queries]
