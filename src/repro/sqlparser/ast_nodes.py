"""Generic abstract-syntax-tree nodes for the SQL substrate.

PI2 is database agnostic: it manipulates queries purely as labelled syntax
trees (the paper only assumes "access to a lightly annotated language
grammar").  We therefore use a single generic :class:`Node` class with a
``label`` (the grammar production it came from), an optional ``value``
payload for leaves, and an ordered ``children`` list.  The Difftree layer
(:mod:`repro.difftree`) extends the very same representation with choice
nodes, which keeps tree alignment, transformation rules, and rendering
uniform.

Label constants are collected in :class:`L`; helper constructors at the
bottom of the module build well-formed nodes for each production.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence


class L:
    """Node label constants (grammar production names)."""

    # statements / clauses
    SELECT_STMT = "select_stmt"
    SELECT_CLAUSE = "select_clause"
    SELECT_ITEM = "select_item"
    FROM_CLAUSE = "from_clause"
    TABLE_REF = "table_ref"
    TABLE_NAME = "table_name"
    SUBQUERY = "subquery"
    JOIN = "join"
    JOIN_ON = "join_on"
    WHERE_CLAUSE = "where_clause"
    GROUPBY_CLAUSE = "groupby_clause"
    HAVING_CLAUSE = "having_clause"
    ORDERBY_CLAUSE = "orderby_clause"
    ORDER_ITEM = "order_item"
    LIMIT_CLAUSE = "limit_clause"
    ALIAS = "alias"

    # expressions
    AND = "and"
    OR = "or"
    NOT = "not"
    BINOP = "binop"
    BETWEEN = "between"
    IN_LIST = "in_list"
    IN_QUERY = "in_query"
    IS_NULL = "is_null"
    FUNC = "func"
    CASE = "case"
    WHEN = "when"
    COLUMN = "column"
    STAR = "star"
    LITERAL_NUM = "literal_num"
    LITERAL_STR = "literal_str"
    LITERAL_BOOL = "literal_bool"
    LITERAL_NULL = "literal_null"
    NEG = "neg"
    PARAM = "param"

    # choice-node labels (used by the Difftree layer; defined here so that
    # rendering and traversal code can recognise them without importing the
    # difftree package)
    ANY = "ANY"
    OPT = "OPT"
    VAL = "VAL"
    MULTI = "MULTI"
    SUBSET = "SUBSET"
    EMPTY = "EMPTY"
    CO_OPT = "CO_OPT"

    CHOICE_LABELS = frozenset({ANY, OPT, VAL, MULTI, SUBSET})

    #: labels whose children form a variable-length list (candidates for the
    #: MULTI / SUBSET transformation rules)
    LIST_LABELS = frozenset(
        {SELECT_CLAUSE, FROM_CLAUSE, GROUPBY_CLAUSE, ORDERBY_CLAUSE, AND, OR, IN_LIST}
    )

    #: list labels and the separator used when rendering them back to SQL
    LIST_SEPARATORS = {
        SELECT_CLAUSE: ", ",
        FROM_CLAUSE: ", ",
        GROUPBY_CLAUSE: ", ",
        ORDERBY_CLAUSE: ", ",
        AND: " AND ",
        OR: " OR ",
        IN_LIST: ", ",
    }


class Node:
    """A generic labelled syntax-tree node.

    Attributes:
        label: the grammar production name (one of the constants in :class:`L`
            for plain SQL, or a choice-node label for Difftrees).
        value: leaf payload (identifier text, literal value, operator, …) or
            ``None`` for pure structural nodes.
        children: ordered list of child nodes.
    """

    __slots__ = ("label", "value", "children")

    def __init__(
        self,
        label: str,
        value: object = None,
        children: Optional[Sequence["Node"]] = None,
    ) -> None:
        self.label = label
        self.value = value
        self.children: list[Node] = list(children) if children else []

    # -- structural helpers ---------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def is_choice(self) -> bool:
        """True when the node is a Difftree choice node."""
        return self.label in L.CHOICE_LABELS

    def signature(self) -> tuple:
        """A (label, value) pair identifying the node kind.

        Two nodes with equal signatures are considered to have "the same
        root" for the purposes of the PushANY transformation rule.
        """
        return (self.label, self.value)

    def copy(self) -> "Node":
        """Deep copy of the subtree rooted at this node."""
        return Node(self.label, self.value, [c.copy() for c in self.children])

    def replace_child(self, old: "Node", new: "Node") -> None:
        """Replace the first occurrence of ``old`` (by identity) with ``new``."""
        for i, child in enumerate(self.children):
            if child is old:
                self.children[i] = new
                return
        raise ValueError("old node is not a child of this node")

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def walk_with_parent(
        self, parent: Optional["Node"] = None
    ) -> Iterator[tuple["Node", Optional["Node"]]]:
        """Pre-order traversal yielding (node, parent) pairs."""
        yield self, parent
        for child in self.children:
            yield from child.walk_with_parent(self)

    def find_all(self, predicate: Callable[["Node"], bool]) -> list["Node"]:
        """All nodes in the subtree satisfying ``predicate`` (pre-order)."""
        return [n for n in self.walk() if predicate(n)]

    def find_first(self, predicate: Callable[["Node"], bool]) -> Optional["Node"]:
        """First node in pre-order satisfying ``predicate`` or None."""
        for n in self.walk():
            if predicate(n):
                return n
        return None

    def find_label(self, label: str) -> list["Node"]:
        """All descendants (including self) with the given label."""
        return self.find_all(lambda n: n.label == label)

    def size(self) -> int:
        """Number of nodes in the subtree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(c.depth() for c in self.children)

    def contains_choice(self) -> bool:
        """True if any node in the subtree is a choice node."""
        return any(n.is_choice for n in self.walk())

    # -- equality / hashing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        if self.label != other.label or self.value != other.value:
            return False
        if len(self.children) != len(other.children):
            return False
        return all(a == b for a, b in zip(self.children, other.children))

    def __hash__(self) -> int:
        return hash((self.label, self.value, tuple(hash(c) for c in self.children)))

    def fingerprint(self) -> str:
        """A canonical string uniquely identifying the subtree's structure."""
        if not self.children:
            return f"{self.label}:{self.value!r}"
        inner = ",".join(c.fingerprint() for c in self.children)
        return f"{self.label}:{self.value!r}({inner})"

    # -- debugging --------------------------------------------------------

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the subtree for debugging."""
        pad = "  " * indent
        head = f"{pad}{self.label}"
        if self.value is not None:
            head += f"={self.value!r}"
        lines = [head]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        val = f", {self.value!r}" if self.value is not None else ""
        return f"Node({self.label}{val}, {len(self.children)} children)"


# ---------------------------------------------------------------------------
# Constructor helpers.  These keep parser code terse and give tests a single
# obvious way to build well-formed nodes by hand.
# ---------------------------------------------------------------------------


def select_stmt(*clauses: Node) -> Node:
    """A full SELECT statement with the given clause children (in order)."""
    return Node(L.SELECT_STMT, None, list(clauses))


def select_clause(items: Sequence[Node], distinct: bool = False) -> Node:
    """The projection list; ``value`` is "DISTINCT" when DISTINCT was given."""
    return Node(L.SELECT_CLAUSE, "DISTINCT" if distinct else None, list(items))


def select_item(expr: Node, alias: Optional[str] = None) -> Node:
    children = [expr]
    if alias is not None:
        children.append(Node(L.ALIAS, alias))
    return Node(L.SELECT_ITEM, None, children)


def from_clause(refs: Sequence[Node]) -> Node:
    return Node(L.FROM_CLAUSE, None, list(refs))


def table_ref(source: Node, alias: Optional[str] = None) -> Node:
    children = [source]
    if alias is not None:
        children.append(Node(L.ALIAS, alias))
    return Node(L.TABLE_REF, None, children)


def table_name(name: str) -> Node:
    return Node(L.TABLE_NAME, name)


def subquery(stmt: Node) -> Node:
    return Node(L.SUBQUERY, None, [stmt])


def where_clause(expr: Node) -> Node:
    return Node(L.WHERE_CLAUSE, None, [expr])


def groupby_clause(exprs: Sequence[Node]) -> Node:
    return Node(L.GROUPBY_CLAUSE, None, list(exprs))


def having_clause(expr: Node) -> Node:
    return Node(L.HAVING_CLAUSE, None, [expr])


def orderby_clause(items: Sequence[Node]) -> Node:
    return Node(L.ORDERBY_CLAUSE, None, list(items))


def order_item(expr: Node, direction: str = "ASC") -> Node:
    return Node(L.ORDER_ITEM, direction.upper(), [expr])


def limit_clause(count: Node) -> Node:
    return Node(L.LIMIT_CLAUSE, None, [count])


def and_(*exprs: Node) -> Node:
    return Node(L.AND, None, list(exprs))


def or_(*exprs: Node) -> Node:
    return Node(L.OR, None, list(exprs))


def not_(expr: Node) -> Node:
    return Node(L.NOT, None, [expr])


def binop(op: str, left: Node, right: Node) -> Node:
    return Node(L.BINOP, op, [left, right])


def between(expr: Node, lo: Node, hi: Node) -> Node:
    return Node(L.BETWEEN, None, [expr, lo, hi])


def in_list(expr: Node, values: Sequence[Node]) -> Node:
    return Node(L.IN_LIST, None, [expr, *values])


def in_query(expr: Node, sub: Node) -> Node:
    return Node(L.IN_QUERY, None, [expr, sub])


def is_null(expr: Node, negated: bool = False) -> Node:
    return Node(L.IS_NULL, "NOT" if negated else None, [expr])


def func(name: str, args: Sequence[Node], distinct: bool = False) -> Node:
    node = Node(L.FUNC, name.lower(), list(args))
    if distinct:
        node = Node(L.FUNC, f"{name.lower()} distinct", list(args))
    return node


def column(name: str, table: Optional[str] = None) -> Node:
    qualified = f"{table}.{name}" if table else name
    return Node(L.COLUMN, qualified)


def star() -> Node:
    return Node(L.STAR, "*")


def literal_num(value: float | int) -> Node:
    return Node(L.LITERAL_NUM, value)


def literal_str(value: str) -> Node:
    return Node(L.LITERAL_STR, value)


def literal_bool(value: bool) -> Node:
    return Node(L.LITERAL_BOOL, value)


def literal_null() -> Node:
    return Node(L.LITERAL_NULL, None)


def neg(expr: Node) -> Node:
    return Node(L.NEG, None, [expr])


def empty() -> Node:
    """The empty subtree used as the second child of OPT choice nodes."""
    return Node(L.EMPTY, None)
