"""Token definitions for the SQL lexer.

The lexer produces a flat list of :class:`Token` objects.  Token kinds are
deliberately coarse: keywords are recognised by the parser from IDENT tokens
using a case-insensitive keyword table, which keeps the lexer simple and lets
identifiers shadow non-reserved keywords (e.g. a column literally named
``date``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories emitted by :class:`repro.sqlparser.lexer.Lexer`."""

    IDENT = "ident"        # bare identifiers and keywords
    NUMBER = "number"      # integer or float literal
    STRING = "string"      # quoted string literal (quotes stripped)
    OPERATOR = "operator"  # comparison / arithmetic operators
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Reserved words recognised by the parser (upper-cased for comparison).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "BTWN",
        "LIKE",
        "IS",
        "NULL",
        "ASC",
        "DESC",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "OUTER",
        "ON",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "UNION",
        "ALL",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character operators, longest first so the lexer can use greedy match.
MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "||", "&&")

#: Single-character operators.
SINGLE_CHAR_OPERATORS = ("=", ">", "<", "+", "-", "/", "%", "&")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: lexical category.
        value: the literal text of the token.  For STRING tokens the quotes
            have been stripped; for NUMBER tokens the original spelling is
            preserved (so ``1.50`` round-trips).
        pos: character offset of the first character of the token in the
            original input, used for error messages.
    """

    type: TokenType
    value: str
    pos: int = 0

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is an IDENT matching any keyword name."""
        return self.type is TokenType.IDENT and self.value.upper() in {
            n.upper() for n in names
        }

    def upper(self) -> str:
        """Upper-cased token text (used for keyword comparisons)."""
        return self.value.upper()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.pos})"
