"""SQL substrate: lexer, PEG-style parser, generic AST, and SQL renderer.

This package is the "lightly annotated language grammar" that PI2 assumes
access to.  It parses the workload queries into generic labelled syntax
trees (:class:`repro.sqlparser.ast_nodes.Node`) which the Difftree layer then
extends with choice nodes.
"""

from . import ast_nodes
from .ast_nodes import L, Node
from .errors import LexError, ParseError, RenderError, SqlError
from .lexer import Lexer, normalise_sql, tokenize
from .parser import AGGREGATE_FUNCTIONS, COMPARISON_OPS, Parser, parse, parse_many
from .render import SqlRenderer, to_pseudo_sql, to_sql
from .tokens import KEYWORDS, Token, TokenType

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "COMPARISON_OPS",
    "KEYWORDS",
    "L",
    "LexError",
    "Lexer",
    "Node",
    "ParseError",
    "Parser",
    "RenderError",
    "SqlError",
    "SqlRenderer",
    "Token",
    "TokenType",
    "ast_nodes",
    "normalise_sql",
    "parse",
    "parse_many",
    "to_pseudo_sql",
    "to_sql",
    "tokenize",
]
