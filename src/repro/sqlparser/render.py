"""Render generic AST nodes back to SQL text.

Rendering serves two purposes in PI2:

1. Resolved Difftrees (plain ASTs) are rendered to SQL strings so the
   database substrate can execute them when the user manipulates the
   interface.
2. Unresolved Difftrees are rendered to human readable pseudo-SQL (choice
   nodes shown as ``⟨...⟩``) which the interface layer uses for widget
   labels and debugging output.
"""

from __future__ import annotations

from .ast_nodes import L, Node
from .errors import RenderError

#: Rendering for choice nodes when ``allow_choice`` is enabled.
_CHOICE_SEPARATORS = {
    L.ANY: " | ",
    L.VAL: " | ",
    L.MULTI: " , ",
    L.SUBSET: " , ",
    L.OPT: " | ",
}


class SqlRenderer:
    """Stateless renderer from :class:`Node` trees to SQL strings."""

    def __init__(self, allow_choice: bool = False) -> None:
        self.allow_choice = allow_choice

    # -- public API --------------------------------------------------------

    def render(self, node: Node) -> str:
        """Render any node to text. Dispatches on the node label."""
        method = getattr(self, f"_render_{node.label}", None)
        if method is not None:
            return method(node)
        if node.label == L.EMPTY:
            return "∅" if self.allow_choice else ""
        if node.label in L.CHOICE_LABELS or node.label == L.CO_OPT:
            return self._render_choice(node)
        raise RenderError(f"cannot render node with label {node.label!r}")

    # -- statements ----------------------------------------------------------

    def _render_select_stmt(self, node: Node) -> str:
        parts = [self.render(child) for child in node.children]
        return " ".join(p for p in parts if p)

    def _render_select_clause(self, node: Node) -> str:
        distinct = "DISTINCT " if node.value == "DISTINCT" else ""
        items = ", ".join(self.render(c) for c in node.children)
        return f"SELECT {distinct}{items}"

    def _render_select_item(self, node: Node) -> str:
        expr = self.render(node.children[0])
        if len(node.children) > 1 and node.children[1].label == L.ALIAS:
            return f"{expr} AS {node.children[1].value}"
        return expr

    def _render_alias(self, node: Node) -> str:
        return str(node.value)

    def _render_from_clause(self, node: Node) -> str:
        refs = ", ".join(self.render(c) for c in node.children)
        return f"FROM {refs}"

    def _render_table_ref(self, node: Node) -> str:
        source = self.render(node.children[0])
        if len(node.children) > 1 and node.children[1].label == L.ALIAS:
            return f"{source} AS {node.children[1].value}"
        return source

    def _render_table_name(self, node: Node) -> str:
        return str(node.value)

    def _render_subquery(self, node: Node) -> str:
        return f"({self.render(node.children[0])})"

    def _render_join(self, node: Node) -> str:
        left, right, on = node.children
        join_type = node.value or "INNER"
        return (
            f"{self.render(left)} {join_type} JOIN {self.render(right)} "
            f"{self.render(on)}"
        )

    def _render_join_on(self, node: Node) -> str:
        return f"ON {self.render(node.children[0])}"

    def _render_where_clause(self, node: Node) -> str:
        return f"WHERE {self.render(node.children[0])}"

    def _render_groupby_clause(self, node: Node) -> str:
        return "GROUP BY " + ", ".join(self.render(c) for c in node.children)

    def _render_having_clause(self, node: Node) -> str:
        return f"HAVING {self.render(node.children[0])}"

    def _render_orderby_clause(self, node: Node) -> str:
        return "ORDER BY " + ", ".join(self.render(c) for c in node.children)

    def _render_order_item(self, node: Node) -> str:
        direction = f" {node.value}" if node.value and node.value != "ASC" else ""
        return f"{self.render(node.children[0])}{direction}"

    def _render_limit_clause(self, node: Node) -> str:
        text = f"LIMIT {self.render(node.children[0])}"
        if len(node.children) > 1:
            text += f" OFFSET {self.render(node.children[1])}"
        return text

    # -- expressions -----------------------------------------------------------

    def _render_and(self, node: Node) -> str:
        return " AND ".join(self._paren_bool(c) for c in node.children)

    def _render_or(self, node: Node) -> str:
        return "(" + " OR ".join(self._paren_bool(c) for c in node.children) + ")"

    def _paren_bool(self, node: Node) -> str:
        text = self.render(node)
        if node.label in (L.OR,) and not text.startswith("("):
            return f"({text})"
        return text

    def _render_not(self, node: Node) -> str:
        return f"NOT ({self.render(node.children[0])})"

    def _render_binop(self, node: Node) -> str:
        left, right = node.children
        return f"{self.render(left)} {node.value} {self.render(right)}"

    def _render_between(self, node: Node) -> str:
        expr, lo, hi = node.children
        return (
            f"{self.render(expr)} BETWEEN {self.render(lo)} AND {self.render(hi)}"
        )

    def _render_in_list(self, node: Node) -> str:
        expr = self.render(node.children[0])
        values = ", ".join(self.render(c) for c in node.children[1:])
        return f"{expr} IN ({values})"

    def _render_in_query(self, node: Node) -> str:
        expr = self.render(node.children[0])
        return f"{expr} IN {self.render(node.children[1])}"

    def _render_is_null(self, node: Node) -> str:
        negation = " NOT" if node.value == "NOT" else ""
        return f"{self.render(node.children[0])} IS{negation} NULL"

    def _render_func(self, node: Node) -> str:
        name = str(node.value)
        distinct = ""
        if name.endswith(" distinct"):
            name = name[: -len(" distinct")]
            distinct = "DISTINCT "
        args = ", ".join(self.render(c) for c in node.children)
        return f"{name}({distinct}{args})"

    def _render_case(self, node: Node) -> str:
        parts = ["CASE"]
        for child in node.children:
            if child.label == L.WHEN:
                cond, result = child.children
                parts.append(f"WHEN {self.render(cond)} THEN {self.render(result)}")
            else:
                parts.append(f"ELSE {self.render(child)}")
        parts.append("END")
        return " ".join(parts)

    def _render_when(self, node: Node) -> str:
        cond, result = node.children
        return f"WHEN {self.render(cond)} THEN {self.render(result)}"

    def _render_column(self, node: Node) -> str:
        return str(node.value)

    def _render_star(self, node: Node) -> str:
        return str(node.value or "*")

    def _render_literal_num(self, node: Node) -> str:
        value = node.value
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    def _render_literal_str(self, node: Node) -> str:
        escaped = str(node.value).replace("'", "''")
        return f"'{escaped}'"

    def _render_literal_bool(self, node: Node) -> str:
        return "TRUE" if node.value else "FALSE"

    def _render_literal_null(self, node: Node) -> str:
        return "NULL"

    def _render_neg(self, node: Node) -> str:
        return f"-{self.render(node.children[0])}"

    def _render_param(self, node: Node) -> str:
        return f":{node.value}"

    def _render_empty(self, node: Node) -> str:
        return ""

    # -- choice nodes -----------------------------------------------------------

    def _render_choice(self, node: Node) -> str:
        if not self.allow_choice:
            raise RenderError(
                f"unresolved choice node {node.label} cannot be rendered to SQL; "
                "bind the Difftree first"
            )
        sep = _CHOICE_SEPARATORS.get(node.label, " | ")
        inner = sep.join(self.render(c) for c in node.children)
        return f"⟨{node.label} {inner}⟩"


def to_sql(node: Node) -> str:
    """Render a resolved AST (no choice nodes) to an executable SQL string."""
    return SqlRenderer(allow_choice=False).render(node)


def to_pseudo_sql(node: Node) -> str:
    """Render any tree (including Difftrees) to human readable pseudo-SQL."""
    return SqlRenderer(allow_choice=True).render(node)
