"""Hand written lexer for the SQL dialect used by the PI2 workloads.

The lexer is intentionally tolerant: the PI2 paper's query listings use a few
shorthand conventions (``BTWN a & b`` for ``BETWEEN a AND b``, unicode quote
characters from PDF extraction) and the lexer normalises them so downstream
components only ever see canonical tokens.
"""

from __future__ import annotations

from .errors import LexError
from .tokens import MULTI_CHAR_OPERATORS, SINGLE_CHAR_OPERATORS, Token, TokenType

#: Characters that PDF extraction commonly substitutes for ASCII quotes.
_QUOTE_CHARS = {"'", "‘", "’", "“", "”", '"', "`"}

#: Mapping from fancy quotes to their ASCII equivalents (for normalisation).
_NORMALISE = {
    "‘": "'",
    "’": "'",
    "“": '"',
    "”": '"',
    "–": "-",
    "—": "-",
    " ": " ",
}


def normalise_sql(text: str) -> str:
    """Replace typographic quotes/dashes with ASCII so the lexer accepts
    queries copied directly from the paper PDF."""
    return "".join(_NORMALISE.get(ch, ch) for ch in text)


class Lexer:
    """Converts a SQL string into a list of :class:`Token` objects."""

    def __init__(self, text: str) -> None:
        self.text = normalise_sql(text)
        self.pos = 0
        self.tokens: list[Token] = []

    # -- public API -----------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Tokenize the whole input and return the token list (EOF-terminated)."""
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif ch == "-" and self._peek(1) == "-":
                self._skip_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._lex_number()
            elif ch.isalpha() or ch == "_":
                self._lex_ident()
            elif ch in _QUOTE_CHARS:
                self._lex_string(ch)
            elif ch == ",":
                self._emit(TokenType.COMMA, ",")
            elif ch == ".":
                self._emit(TokenType.DOT, ".")
            elif ch == "(":
                self._emit(TokenType.LPAREN, "(")
            elif ch == ")":
                self._emit(TokenType.RPAREN, ")")
            elif ch == "*":
                self._emit(TokenType.STAR, "*")
            elif ch == ";":
                self._emit(TokenType.SEMICOLON, ";")
            else:
                self._lex_operator()
        self.tokens.append(Token(TokenType.EOF, "", self.pos))
        return self.tokens

    # -- helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _emit(self, ttype: TokenType, value: str) -> None:
        self.tokens.append(Token(ttype, value, self.pos))
        self.pos += len(value)

    def _skip_line_comment(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] != "\n":
            self.pos += 1

    def _skip_block_comment(self) -> None:
        end = self.text.find("*/", self.pos + 2)
        if end == -1:
            raise LexError("unterminated block comment", self.text, self.pos)
        self.pos = end + 2

    def _lex_number(self) -> None:
        start = self.pos
        seen_dot = False
        seen_exp = False
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not seen_dot and not seen_exp:
                # A dot not followed by a digit terminates the number so
                # ``1.e`` style malformed input is rejected by the parser.
                if not self._peek(1).isdigit():
                    break
                seen_dot = True
                self.pos += 1
            elif ch in "eE" and not seen_exp and self._peek(1).isdigit():
                seen_exp = True
                self.pos += 2
            elif ch in "eE" and not seen_exp and self._peek(1) in "+-" and self._peek(2).isdigit():
                seen_exp = True
                self.pos += 3
            else:
                break
        value = self.text[start : self.pos]
        self.tokens.append(Token(TokenType.NUMBER, value, start))

    def _lex_ident(self) -> None:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        self.tokens.append(Token(TokenType.IDENT, self.text[start : self.pos], start))

    def _lex_string(self, quote: str) -> None:
        # All quote styles terminate with a plain ASCII single/double quote
        # after normalisation.
        closing = "'" if quote in ("'",) else quote
        start = self.pos
        self.pos += 1
        chars: list[str] = []
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == closing:
                # doubled quote escapes the quote character (SQL style)
                if self._peek(1) == closing:
                    chars.append(closing)
                    self.pos += 2
                    continue
                self.pos += 1
                self.tokens.append(Token(TokenType.STRING, "".join(chars), start))
                return
            chars.append(ch)
            self.pos += 1
        raise LexError("unterminated string literal", self.text, start)

    def _lex_operator(self) -> None:
        rest = self.text[self.pos :]
        for op in MULTI_CHAR_OPERATORS:
            if rest.startswith(op):
                self._emit(TokenType.OPERATOR, op)
                return
        for op in SINGLE_CHAR_OPERATORS:
            if rest.startswith(op):
                self._emit(TokenType.OPERATOR, op)
                return
        raise LexError(
            f"unexpected character {self.text[self.pos]!r}", self.text, self.pos
        )


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return Lexer(text).tokenize()
