"""Error types raised by the SQL substrate (lexer and parser).

The PI2 pipeline treats queries as untrusted user input: parse failures must
never crash the system, so every error raised by :mod:`repro.sqlparser`
derives from :class:`SqlError` and carries enough position information to
produce a helpful message.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL substrate errors."""


class LexError(SqlError):
    """Raised when the lexer encounters a character it cannot tokenize.

    Attributes:
        text: the full input string.
        pos: character offset of the offending character.
    """

    def __init__(self, message: str, text: str = "", pos: int = 0) -> None:
        super().__init__(message)
        self.text = text
        self.pos = pos

    def context(self, width: int = 20) -> str:
        """Return a short excerpt of the input around the error position."""
        lo = max(0, self.pos - width)
        hi = min(len(self.text), self.pos + width)
        return f"...{self.text[lo:hi]}..."


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream.

    Attributes:
        token: the offending token (may be ``None`` at end of input).
        expected: human readable description of what was expected.
    """

    def __init__(self, message: str, token=None, expected: str | None = None) -> None:
        super().__init__(message)
        self.token = token
        self.expected = expected


class RenderError(SqlError):
    """Raised when an AST cannot be rendered back to SQL text.

    This typically indicates an unresolved choice node leaked into a plain
    AST, or a malformed node constructed by hand.
    """
