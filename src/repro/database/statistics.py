"""Lightweight per-column statistics over base tables.

PI2 consults the "database catalogue" for three things (Sections 3.2 and 4.1
of the paper):

* attribute domains — used to initialise sliders / range sliders and to
  generalise ``ANY`` nodes over numeric literals to ``VAL`` nodes;
* distinct cardinalities — an attribute with cardinality below 20 may be
  mapped to a categorical visual variable;
* uniqueness — used to validate functional-dependency constraints of charts.

The :class:`ColumnStatistics` object caches all three per column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .table import Table
from .types import DataType

#: Cardinality threshold below which a column may be treated as categorical
#: (Section 4.1: "str and num attributes whose cardinality is below 20 are
#: compatible with categorical visual attributes").
CATEGORICAL_CARDINALITY_THRESHOLD = 20


@dataclass
class ColumnStatistics:
    """Summary statistics of one column of one base table."""

    table: str
    column: str
    dtype: DataType
    row_count: int
    distinct_count: int
    null_count: int
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    distinct_values: Optional[tuple] = None  # kept only for small domains

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.column}"

    @property
    def is_unique(self) -> bool:
        """True when the column uniquely identifies rows (no nulls, all distinct)."""
        return self.null_count == 0 and self.distinct_count == self.row_count

    @property
    def is_categorical_candidate(self) -> bool:
        """True when the column could be rendered on a categorical visual axis."""
        return self.distinct_count < CATEGORICAL_CARDINALITY_THRESHOLD

    def domain(self) -> tuple[Optional[object], Optional[object]]:
        """The (min, max) value range of the column."""
        return (self.min_value, self.max_value)


def compute_column_statistics(
    table: Table, column_name: str, max_distinct_kept: int = 64
) -> ColumnStatistics:
    """Scan one column of a base table and summarise it."""
    col = table.column(column_name)
    values = table.values(column_name)
    non_null = [v for v in values if v is not None]
    distinct = set(non_null)
    kept = tuple(sorted(distinct, key=_sort_key)) if len(distinct) <= max_distinct_kept else None
    return ColumnStatistics(
        table=table.name,
        column=column_name,
        dtype=col.dtype,
        row_count=len(values),
        distinct_count=len(distinct),
        null_count=len(values) - len(non_null),
        min_value=min(non_null, key=_sort_key) if non_null else None,
        max_value=max(non_null, key=_sort_key) if non_null else None,
        distinct_values=kept,
    )


def estimate_equi_join_rows(
    left_rows: int,
    right_rows: int,
    left_distinct: Optional[int] = None,
    right_distinct: Optional[int] = None,
) -> float:
    """Textbook equi-join cardinality estimate ``|L|·|R| / max(V(L,a), V(R,b))``.

    Used by the query planner to annotate hash-join nodes with an estimated
    output cardinality (surfaced by ``Plan.explain`` and the pipeline's
    executor diagnostics).  Falls back to the cross-product size when neither
    side's key cardinality is known.
    """
    denom = max(left_distinct or 0, right_distinct or 0)
    if denom <= 0:
        return float(left_rows * right_rows)
    return left_rows * right_rows / denom


def estimate_group_count(
    row_count: int, key_distinct_counts: list
) -> float:
    """Estimated output rows of a GROUP BY over ``row_count`` input rows.

    ``key_distinct_counts`` holds one per-key distinct cardinality (``None``
    when unknown, e.g. a computed grouping expression).  With no keys the
    query is a pure aggregate and always emits exactly one row; with keys the
    group count is bounded by both the input size and the product of the key
    cardinalities.  Used by the planner to annotate aggregate FROM-subquery
    scans so join ordering sees grouped inputs as the small relations they
    usually are.
    """
    if not key_distinct_counts:
        return 1.0
    estimate = 1.0
    for distinct in key_distinct_counts:
        if distinct is None or distinct <= 0:
            return float(row_count)
        estimate *= distinct
    return float(min(row_count, estimate))


def _sort_key(value: object):
    """Sort key that keeps heterogeneous columns (e.g. int/float mixes) stable."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))
