"""Table and result-set containers for the in-memory database substrate.

Storage is **column-major**: both :class:`Table` and :class:`ResultTable`
keep one homogeneous Python list per column, which is what the vectorized
executor (:mod:`repro.database.columnar`) iterates in tight loops.  Row
tuples are materialised lazily — the first access to ``.rows`` zips the
column lists and caches the result — so row-oriented consumers (the Difftree
schema layer, the mapping layer, the interface runtime, and the row-based
executor paths) keep working unchanged while column-oriented consumers never
pay for tuple construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from .types import Column, DataType, infer_value_type, unify_all


def _rows_from_columns(cols: Sequence[list], nrows: int) -> list[tuple]:
    """Materialise row tuples from per-column value lists."""
    if not cols:
        return [()] * nrows
    return list(zip(*cols))


class Table:
    """An in-memory base table with a declared schema.

    Data is stored column-major: one value list per column, aligned by row
    position.  Tables are append-only: PI2 never mutates data, it only reads
    it to infer schemas, statistics and to execute the queries behind each
    visualization.  ``.rows`` materialises row tuples lazily and caches them
    until the next insert.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        self.name = name
        self.columns = list(columns)
        self._cols: list[list] = [[] for _ in self.columns]
        self._rows_cache: Optional[list[tuple]] = None
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise ValueError(f"duplicate column names in table {name!r}")

    # -- construction -------------------------------------------------------

    def insert(self, row: Sequence[object]) -> None:
        """Append a single row (must match the column count)."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} does not match table {self.name!r} "
                f"width {len(self.columns)}"
            )
        for col, value in zip(self._cols, row):
            col.append(value)
        self._rows_cache = None

    def insert_many(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(row)

    @classmethod
    def from_rows(
        cls,
        name: str,
        columns: Sequence[Column],
        rows: Iterable[Sequence[object]],
    ) -> "Table":
        table = cls(name, columns)
        table.insert_many(rows)
        return table

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Sequence[Column],
        col_data: Sequence[list],
    ) -> "Table":
        """Build a table directly from per-column value lists.

        The lists are adopted, not copied — this is the shared-memory
        catalogue attach path (:mod:`repro.service.shm`), which decodes each
        column once from its segment and must not pay a second copy.
        """
        table = cls(name, columns)
        if len(col_data) != len(table.columns):
            raise ValueError(
                f"column data width {len(col_data)} does not match table "
                f"{name!r} width {len(table.columns)}"
            )
        lengths = {len(col) for col in col_data}
        if len(lengths) > 1:
            raise ValueError(f"ragged column data for table {name!r}: {lengths}")
        table._cols = [list(col) if not isinstance(col, list) else col for col in col_data]
        return table

    @classmethod
    def from_dicts(cls, name: str, records: Sequence[dict]) -> "Table":
        """Build a table from a list of dictionaries, inferring column types."""
        if not records:
            raise ValueError("cannot infer schema from an empty record list")
        names = list(records[0].keys())
        columns = []
        for col in names:
            dtype = unify_all(infer_value_type(rec[col]) for rec in records)
            columns.append(Column(col, dtype))
        rows = [tuple(rec[col] for col in names) for rec in records]
        return cls.from_rows(name, columns, rows)

    # -- access ---------------------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        """Row tuples in insertion order (lazily materialised, then cached).

        The returned list is cached and shared — treat it as read-only.
        """
        if self._rows_cache is None:
            self._rows_cache = _rows_from_columns(self._cols, self.row_count())
        return self._rows_cache

    def row_count(self) -> int:
        return len(self._cols[0]) if self._cols else 0

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        if name not in self._index:
            raise KeyError(f"no column {name!r} in table {self.name!r}")
        return self._index[name]

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def values(self, name: str) -> list[object]:
        """All values of a column, in row order (a fresh list)."""
        return list(self._cols[self.column_index(name)])

    def column_data(self, index: int) -> list:
        """The raw value list backing column ``index`` — do not mutate."""
        return self._cols[index]

    def __len__(self) -> int:
        return self.row_count()

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self.columns)} cols, {self.row_count()} rows)"


class RelColumn:
    """A column of an intermediate relation produced by a FROM clause.

    Shared by the planner (which builds relation schemas at plan time) and
    the executor (which materialises relations at run time).
    """

    __slots__ = ("name", "qualifier", "dtype", "source", "is_aggregate")

    def __init__(
        self,
        name: str,
        qualifier: Optional[str],
        dtype: DataType,
        source: Optional[str] = None,
        is_aggregate: bool = False,
    ) -> None:
        self.name = name                  # bare column name
        self.qualifier = qualifier        # table alias or table name
        self.dtype = dtype
        self.source = source              # fully qualified base attribute
        self.is_aggregate = is_aggregate

    @property
    def qualified(self) -> Optional[str]:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelColumn):
            return NotImplemented
        return (
            self.name == other.name
            and self.qualifier == other.qualifier
            and self.dtype == other.dtype
            and self.source == other.source
            and self.is_aggregate == other.is_aggregate
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelColumn({self.qualified!r}, {self.dtype})"


class Relation:
    """An intermediate relation: typed columns plus rows of tuples.

    This is the row-major relation used by the interpreter and the row-based
    plan executor; the vectorized engine uses
    :class:`repro.database.columnar.ColumnarRelation` instead.
    """

    __slots__ = ("columns", "rows")

    def __init__(
        self,
        columns: Optional[list[RelColumn]] = None,
        rows: Optional[list[tuple]] = None,
    ) -> None:
        self.columns = columns if columns is not None else []
        self.rows = rows if rows is not None else []

    def find(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        """Index of the column matching ``name`` (and ``qualifier`` if given)."""
        for i, col in enumerate(self.columns):
            if col.name != name:
                continue
            if qualifier is None or (
                col.qualifier is not None
                and col.qualifier.lower() == qualifier.lower()
            ):
                return i
        return None


class ResultColumn:
    """A column of a query result.

    Attributes:
        name: output column name (alias, bare column name, or rendered
            expression text).
        dtype: inferred data type.
        source: fully qualified source attribute (``table.column``) when the
            output column is a direct projection of a base attribute, else
            ``None``.  PI2 uses this to connect result columns back to
            database attribute domains (attribute types, Section 3.2.1).
        is_aggregate: True when the column is produced by an aggregate call.
    """

    __slots__ = ("name", "dtype", "source", "is_aggregate")

    def __init__(
        self,
        name: str,
        dtype: DataType,
        source: Optional[str] = None,
        is_aggregate: bool = False,
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.source = source
        self.is_aggregate = is_aggregate

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultColumn):
            return NotImplemented
        return (
            self.name == other.name
            and self.dtype == other.dtype
            and self.source == other.source
            and self.is_aggregate == other.is_aggregate
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultColumn({self.name!r}, {self.dtype})"


class ResultTable:
    """A query result: a list of :class:`ResultColumn` plus the result data.

    The data lives column-major (one value list per column); ``.rows``
    materialises row tuples lazily on first access and caches them.  The
    columnar executor builds results directly from column vectors via
    :meth:`from_columns`, and column-oriented consumers (``values``,
    ``distinct_count``) read the vectors without ever building tuples.
    Name lookup is O(1): a name→index dict is built once per table and
    invalidated only by ``copy()``.
    """

    __slots__ = ("columns", "_cols", "_rows_cache", "_index")

    def __init__(
        self,
        columns: Optional[list[ResultColumn]] = None,
        rows: Optional[list[tuple]] = None,
    ) -> None:
        self.columns = columns if columns is not None else []
        self._rows_cache: Optional[list[tuple]] = rows if rows is not None else []
        self._cols: Optional[list[list]] = None
        self._index: Optional[dict[str, int]] = None

    @classmethod
    def from_columns(
        cls,
        columns: list[ResultColumn],
        col_data: list[list],
        nrows: Optional[int] = None,
    ) -> "ResultTable":
        """Build a result directly from per-column value vectors."""
        table = cls(columns)
        table._rows_cache = None
        table._cols = col_data
        if nrows is not None and not col_data:
            table._rows_cache = [()] * nrows
            table._cols = None
        return table

    # -- access ---------------------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        """Row tuples (lazily materialised from the column vectors)."""
        if self._rows_cache is None:
            assert self._cols is not None
            nrows = len(self._cols[0]) if self._cols else 0
            self._rows_cache = _rows_from_columns(self._cols, nrows)
        return self._rows_cache

    @rows.setter
    def rows(self, rows: list[tuple]) -> None:
        self._rows_cache = rows
        self._cols = None

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        if self._index is None:
            index: dict[str, int] = {}
            for i, c in enumerate(self.columns):
                if c.name not in index:
                    index[c.name] = i
            self._index = index
        idx = self._index.get(name)
        if idx is None:
            raise KeyError(f"no result column {name!r}")
        return idx

    def values(self, name: str) -> list[object]:
        idx = self.column_index(name)
        if self._cols is not None:
            return list(self._cols[idx])
        return [row[idx] for row in self.rows]

    def column_data(self, index: int) -> list:
        """The value vector of column ``index`` (fresh when row-backed)."""
        if self._cols is not None:
            return self._cols[index]
        return [row[index] for row in self.rows]

    def distinct_count(self, name: str) -> int:
        return len(set(self.values(name)))

    def __len__(self) -> int:
        if self._cols is not None and self._rows_cache is None:
            return len(self._cols[0]) if self._cols else 0
        return len(self.rows)

    def to_dicts(self) -> list[dict]:
        names = self.column_names()
        return [dict(zip(names, row)) for row in self.rows]

    def head(self, n: int = 5) -> "ResultTable":
        return ResultTable(self.columns, self.rows[:n])

    def copy(self) -> "ResultTable":
        """A defensive shallow copy: fresh column objects and rows list.

        Row tuples are shared (they are immutable); the columns and rows
        containers are new so a caller mutating the copy cannot poison a
        cached original.
        """
        columns = [
            ResultColumn(c.name, c.dtype, c.source, c.is_aggregate)
            for c in self.columns
        ]
        return ResultTable(columns, list(self.rows))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultTable):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultTable({self.column_names()}, {len(self)} rows)"
