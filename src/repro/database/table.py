"""Table and result-set containers for the in-memory database substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from .types import Column, DataType, infer_value_type, unify_all


class Table:
    """An in-memory base table with a declared schema.

    Rows are stored as tuples in declaration order.  Tables are append-only:
    PI2 never mutates data, it only reads it to infer schemas, statistics and
    to execute the queries behind each visualization.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        self.name = name
        self.columns = list(columns)
        self.rows: list[tuple] = []
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise ValueError(f"duplicate column names in table {name!r}")

    # -- construction -------------------------------------------------------

    def insert(self, row: Sequence[object]) -> None:
        """Append a single row (must match the column count)."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} does not match table {self.name!r} "
                f"width {len(self.columns)}"
            )
        self.rows.append(tuple(row))

    def insert_many(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(row)

    @classmethod
    def from_rows(
        cls,
        name: str,
        columns: Sequence[Column],
        rows: Iterable[Sequence[object]],
    ) -> "Table":
        table = cls(name, columns)
        table.insert_many(rows)
        return table

    @classmethod
    def from_dicts(cls, name: str, records: Sequence[dict]) -> "Table":
        """Build a table from a list of dictionaries, inferring column types."""
        if not records:
            raise ValueError("cannot infer schema from an empty record list")
        names = list(records[0].keys())
        columns = []
        for col in names:
            dtype = unify_all(infer_value_type(rec[col]) for rec in records)
            columns.append(Column(col, dtype))
        rows = [tuple(rec[col] for col in names) for rec in records]
        return cls.from_rows(name, columns, rows)

    # -- access ---------------------------------------------------------------

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        if name not in self._index:
            raise KeyError(f"no column {name!r} in table {self.name!r}")
        return self._index[name]

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def values(self, name: str) -> list[object]:
        """All values of a column, in row order."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self.columns)} cols, {len(self.rows)} rows)"


@dataclass
class RelColumn:
    """A column of an intermediate relation produced by a FROM clause.

    Shared by the planner (which builds relation schemas at plan time) and
    the executor (which materialises relations at run time).
    """

    name: str                      # bare column name
    qualifier: Optional[str]       # table alias or table name
    dtype: DataType
    source: Optional[str] = None   # fully qualified base attribute
    is_aggregate: bool = False

    @property
    def qualified(self) -> Optional[str]:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class Relation:
    """An intermediate relation: typed columns plus rows of tuples."""

    columns: list[RelColumn] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    def find(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        """Index of the column matching ``name`` (and ``qualifier`` if given)."""
        for i, col in enumerate(self.columns):
            if col.name != name:
                continue
            if qualifier is None or (
                col.qualifier is not None
                and col.qualifier.lower() == qualifier.lower()
            ):
                return i
        return None


@dataclass
class ResultColumn:
    """A column of a query result.

    Attributes:
        name: output column name (alias, bare column name, or rendered
            expression text).
        dtype: inferred data type.
        source: fully qualified source attribute (``table.column``) when the
            output column is a direct projection of a base attribute, else
            ``None``.  PI2 uses this to connect result columns back to
            database attribute domains (attribute types, Section 3.2.1).
        is_aggregate: True when the column is produced by an aggregate call.
    """

    name: str
    dtype: DataType
    source: Optional[str] = None
    is_aggregate: bool = False


@dataclass
class ResultTable:
    """A query result: a list of :class:`ResultColumn` plus rows of tuples."""

    columns: list[ResultColumn] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        for i, c in enumerate(self.columns):
            if c.name == name:
                return i
        raise KeyError(f"no result column {name!r}")

    def values(self, name: str) -> list[object]:
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def distinct_count(self, name: str) -> int:
        return len(set(self.values(name)))

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> list[dict]:
        names = self.column_names()
        return [dict(zip(names, row)) for row in self.rows]

    def head(self, n: int = 5) -> "ResultTable":
        return ResultTable(self.columns, self.rows[:n])

    def copy(self) -> "ResultTable":
        """A defensive shallow copy: fresh column objects and rows list.

        Row tuples are shared (they are immutable); the columns and rows
        containers are new so a caller mutating the copy cannot poison a
        cached original.
        """
        columns = [
            ResultColumn(c.name, c.dtype, c.source, c.is_aggregate)
            for c in self.columns
        ]
        return ResultTable(columns, list(self.rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultTable({self.column_names()}, {len(self.rows)} rows)"
