"""In-memory relational database substrate.

Provides the two external dependencies PI2 assumes: a database catalogue
(schemas, domains, statistics) and a query execution engine, plus synthetic
datasets matching the paper's evaluation workloads.
"""

from .catalog import Catalog, CatalogError
from .datasets import (
    make_cars_table,
    make_covid_table,
    make_flights_table,
    make_sales_table,
    make_sdss_tables,
    make_sp500_table,
    make_t_table,
    small_catalog,
    standard_catalog,
)
from .columnar import ColumnarRelation, UnsupportedColumnar
from .executor import ExecutionError, Executor
from .functions import TODAY, function_return_type, is_aggregate
from .plancache import SHARED_PLAN_CACHE, PlanCache
from .planner import Plan, Planner, PlanningError, PlanStats
from .statistics import (
    CATEGORICAL_CARDINALITY_THRESHOLD,
    ColumnStatistics,
    compute_column_statistics,
    estimate_equi_join_rows,
)
from .table import Column, RelColumn, Relation, ResultColumn, ResultTable, Table
from .types import DataType, infer_value_type, looks_like_date, unify_all, unify_types

__all__ = [
    "CATEGORICAL_CARDINALITY_THRESHOLD",
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnStatistics",
    "ColumnarRelation",
    "DataType",
    "ExecutionError",
    "Executor",
    "Plan",
    "PlanCache",
    "PlanStats",
    "Planner",
    "PlanningError",
    "SHARED_PLAN_CACHE",
    "UnsupportedColumnar",
    "RelColumn",
    "Relation",
    "ResultColumn",
    "ResultTable",
    "TODAY",
    "Table",
    "compute_column_statistics",
    "estimate_equi_join_rows",
    "function_return_type",
    "infer_value_type",
    "is_aggregate",
    "looks_like_date",
    "make_cars_table",
    "make_covid_table",
    "make_flights_table",
    "make_sales_table",
    "make_sdss_tables",
    "make_sp500_table",
    "make_t_table",
    "small_catalog",
    "standard_catalog",
    "unify_all",
    "unify_types",
]
