"""Database catalogue: table schemas, attribute resolution and statistics.

The catalogue is one of the two external inputs PI2 needs ("a database
connection to execute queries, and the database catalogue").  It answers the
questions the Difftree and mapping layers ask:

* what is the fully qualified name and type of attribute ``x``?
* what is the domain (min/max, distinct values) and cardinality of ``T.a``?
* is ``T.a`` unique (primary key like) — needed for FD constraints of charts?
* what is the return type of function ``f`` — needed for type inference?
"""

from __future__ import annotations

from typing import Iterable, Optional

from .functions import function_return_type
from .statistics import ColumnStatistics, compute_column_statistics
from .table import Table
from .types import Column, DataType


class CatalogError(Exception):
    """Raised for unknown tables/columns or ambiguous attribute references."""


class Catalog:
    """A collection of named base tables plus cached per-column statistics."""

    def __init__(self, tables: Optional[Iterable[Table]] = None) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, ColumnStatistics] = {}
        for table in tables or []:
            self.add_table(table)

    # -- table management -----------------------------------------------------

    def add_table(self, table: Table) -> None:
        """Register a base table (case-insensitive lookup key)."""
        self._tables[table.name.lower()] = table

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    # -- attribute resolution ---------------------------------------------------

    def resolve_attribute(
        self, name: str, tables_in_scope: Optional[Iterable[str]] = None
    ) -> Optional[tuple[str, Column]]:
        """Resolve an attribute reference to ``(table_name, Column)``.

        ``name`` may be bare (``hp``) or qualified (``Cars.hp``).  When
        ``tables_in_scope`` is given, only those tables are searched (this is
        how the Difftree layer restricts resolution to the query's FROM
        clause).  Returns ``None`` when the attribute cannot be resolved
        unambiguously — PI2 then simply falls back to primitive types.
        """
        if "." in name:
            table_part, col_part = name.split(".", 1)
            if self.has_table(table_part):
                table = self.table(table_part)
                if table.has_column(col_part):
                    return table.name, table.column(col_part)
            # the qualifier may be a query alias; fall through to bare search
            name = col_part

        scope = [self.table(t) for t in tables_in_scope if self.has_table(t)] if tables_in_scope else self.tables()
        matches = [(t.name, t.column(name)) for t in scope if t.has_column(name)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            # ambiguous without more context; prefer the first table in scope
            # order so resolution is deterministic.
            return matches[0]
        return None

    def attribute_type(
        self, name: str, tables_in_scope: Optional[Iterable[str]] = None
    ) -> DataType:
        """The data type of an attribute, or ``ANY`` when unresolvable."""
        resolved = self.resolve_attribute(name, tables_in_scope)
        return resolved[1].dtype if resolved else DataType.ANY

    def qualified_name(
        self, name: str, tables_in_scope: Optional[Iterable[str]] = None
    ) -> Optional[str]:
        """The fully qualified ``table.column`` name, or ``None``."""
        resolved = self.resolve_attribute(name, tables_in_scope)
        if resolved is None:
            return None
        table_name, col = resolved
        return f"{table_name}.{col.name}"

    # -- statistics --------------------------------------------------------------

    def statistics(self, qualified: str) -> ColumnStatistics:
        """Statistics for ``table.column`` (computed lazily, then cached)."""
        key = qualified.lower()
        if key not in self._stats:
            table_name, col_name = qualified.split(".", 1)
            table = self.table(table_name)
            self._stats[key] = compute_column_statistics(table, col_name)
        return self._stats[key]

    def domain(self, qualified: str) -> tuple[Optional[object], Optional[object]]:
        """(min, max) of the attribute's values."""
        return self.statistics(qualified).domain()

    def distinct_values(self, qualified: str) -> Optional[tuple]:
        """The sorted distinct values when the domain is small, else ``None``."""
        return self.statistics(qualified).distinct_values

    def cardinality(self, qualified: str) -> int:
        return self.statistics(qualified).distinct_count

    def is_unique(self, qualified: str) -> bool:
        stats = self.statistics(qualified)
        table = self.table(stats.table)
        return table.column(stats.column).primary_key or stats.is_unique

    # -- functions ------------------------------------------------------------------

    @staticmethod
    def function_type(name: str) -> DataType:
        """Declared return type of a scalar or aggregate function."""
        return function_return_type(name)
