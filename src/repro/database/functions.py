"""Scalar and aggregate function library for the query executor.

The catalogue exposes each function's return type (the paper: "we infer the
type of a function call based on its return type in the catalogue"), and the
executor uses the implementations at query time.

Date handling: dates are ISO-8601 strings, and ``date(base, modifier)``
follows the SQLite convention used by the paper's covid queries, e.g.
``date(today(), '-30 days')``.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Callable, Optional, Sequence

from .types import DataType

#: Fixed "today" so that workloads and tests are deterministic.  The covid
#: synthetic dataset generator uses the same anchor date.
TODAY = _dt.date(2021, 6, 30)


class FunctionError(Exception):
    """Raised when a function call cannot be evaluated."""


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _fn_today() -> str:
    return TODAY.isoformat()


def _parse_date(text: str) -> _dt.date:
    try:
        return _dt.date.fromisoformat(str(text)[:10])
    except ValueError as exc:
        raise FunctionError(f"invalid date literal {text!r}") from exc


def _fn_date(*args) -> Optional[str]:
    """SQLite-style date(): date(base [, modifier ...])."""
    if not args:
        return TODAY.isoformat()
    base = args[0]
    if base is None:
        return None
    if base == "now":
        base = TODAY.isoformat()
    current = _parse_date(base)
    for modifier in args[1:]:
        current = _apply_date_modifier(current, str(modifier))
    return current.isoformat()


def _apply_date_modifier(base: _dt.date, modifier: str) -> _dt.date:
    text = modifier.strip().lower()
    sign = 1
    if text.startswith("-"):
        sign = -1
        text = text[1:]
    elif text.startswith("+"):
        text = text[1:]
    parts = text.split()
    if len(parts) != 2:
        raise FunctionError(f"unsupported date modifier {modifier!r}")
    amount = int(float(parts[0]))
    unit = parts[1].rstrip("s")
    if unit == "day":
        return base + _dt.timedelta(days=sign * amount)
    if unit == "month":
        month = base.month - 1 + sign * amount
        year = base.year + month // 12
        month = month % 12 + 1
        day = min(base.day, 28)
        return _dt.date(year, month, day)
    if unit == "year":
        return _dt.date(base.year + sign * amount, base.month, min(base.day, 28))
    raise FunctionError(f"unsupported date modifier unit {unit!r}")


def _fn_abs(x):
    return None if x is None else abs(x)


def _fn_round(x, digits=0):
    return None if x is None else round(x, int(digits))


def _fn_floor(x):
    return None if x is None else math.floor(x)


def _fn_ceil(x):
    return None if x is None else math.ceil(x)


def _fn_lower(x):
    return None if x is None else str(x).lower()


def _fn_upper(x):
    return None if x is None else str(x).upper()


def _fn_length(x):
    return None if x is None else len(str(x))


def _fn_coalesce(*args):
    for a in args:
        if a is not None:
            return a
    return None


def _fn_year(x):
    return None if x is None else _parse_date(x).year


def _fn_month(x):
    return None if x is None else _parse_date(x).month


def _fn_day(x):
    return None if x is None else _parse_date(x).day


SCALAR_FUNCTIONS: dict[str, Callable] = {
    "today": _fn_today,
    "now": _fn_today,
    "date": _fn_date,
    "abs": _fn_abs,
    "round": _fn_round,
    "floor": _fn_floor,
    "ceil": _fn_ceil,
    "lower": _fn_lower,
    "upper": _fn_upper,
    "length": _fn_length,
    "coalesce": _fn_coalesce,
    "year": _fn_year,
    "month": _fn_month,
    "day": _fn_day,
}

#: Return types of the scalar functions (the catalogue annotation).
SCALAR_RETURN_TYPES: dict[str, DataType] = {
    "today": DataType.DATE,
    "now": DataType.DATE,
    "date": DataType.DATE,
    "abs": DataType.FLOAT,
    "round": DataType.FLOAT,
    "floor": DataType.INT,
    "ceil": DataType.INT,
    "lower": DataType.STR,
    "upper": DataType.STR,
    "length": DataType.INT,
    "coalesce": DataType.ANY,
    "year": DataType.INT,
    "month": DataType.INT,
    "day": DataType.INT,
}


# ---------------------------------------------------------------------------
# aggregate functions
# ---------------------------------------------------------------------------


def _agg_count(values: Sequence) -> int:
    return sum(1 for v in values if v is not None)


def _agg_sum(values: Sequence):
    items = [v for v in values if v is not None]
    return sum(items) if items else None


def _agg_avg(values: Sequence):
    items = [v for v in values if v is not None]
    return sum(items) / len(items) if items else None


def _agg_min(values: Sequence):
    items = [v for v in values if v is not None]
    return min(items) if items else None


def _agg_max(values: Sequence):
    items = [v for v in values if v is not None]
    return max(items) if items else None


AGGREGATE_FUNCTIONS: dict[str, Callable] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}

#: Return types for aggregates; None means "same type as the argument".
AGGREGATE_RETURN_TYPES: dict[str, Optional[DataType]] = {
    "count": DataType.INT,
    "sum": None,
    "avg": DataType.FLOAT,
    "min": None,
    "max": None,
}


def is_aggregate(name: str) -> bool:
    """True if ``name`` (possibly with a ``" distinct"`` suffix) is an aggregate."""
    return name.removesuffix(" distinct") in AGGREGATE_FUNCTIONS


def function_return_type(name: str) -> DataType:
    """The catalogue's declared return type for a function name."""
    base = name.removesuffix(" distinct")
    if base in AGGREGATE_RETURN_TYPES:
        declared = AGGREGATE_RETURN_TYPES[base]
        return declared if declared is not None else DataType.FLOAT
    return SCALAR_RETURN_TYPES.get(base, DataType.ANY)
