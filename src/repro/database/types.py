"""Value types for the in-memory database substrate.

The database layer deliberately uses a very small type system: PI2 itself only
distinguishes numeric (``num``) from string (``str``) values plus per-attribute
domains (Section 3.2.1 of the paper), so the substrate tracks just enough
information to answer those questions — plus dates, which the covid / sp500 /
sales workloads filter on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional


class DataType(enum.Enum):
    """Column data types supported by the substrate."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"   # ISO-8601 'YYYY-MM-DD' strings; compare lexicographically
    BOOL = "bool"
    NULL = "null"
    ANY = "any"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT, DataType.BOOL)

    @property
    def is_textual(self) -> bool:
        return self in (DataType.STR, DataType.DATE)


def infer_value_type(value: object) -> DataType:
    """Infer the :class:`DataType` of a single Python value."""
    if value is None:
        return DataType.NULL
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        if looks_like_date(value):
            return DataType.DATE
        return DataType.STR
    raise TypeError(f"unsupported value type: {type(value)!r}")


def looks_like_date(value: str) -> bool:
    """Heuristic check for ISO-8601 date strings (YYYY-MM-DD)."""
    if len(value) != 10 or value[4] != "-" or value[7] != "-":
        return False
    y, m, d = value[:4], value[5:7], value[8:10]
    return y.isdigit() and m.isdigit() and d.isdigit()


def aggregate_result_type(
    func_name: str, arg_dtype: Optional[DataType] = None
) -> DataType:
    """Output type of an aggregate call given its argument's column type.

    ``count`` always yields INT and ``avg`` always FLOAT; ``sum``/``min``/
    ``max`` follow their argument's type when it is a plain column reference
    and default to FLOAT otherwise.  This single mapping is shared by the
    executor's runtime output-schema description and the planner's *static*
    schema derivation for aggregate FROM subqueries, so the two can never
    disagree about a grouped subquery's column types.
    """
    base = func_name.removesuffix(" distinct")
    if base == "count":
        return DataType.INT
    if base == "avg":
        return DataType.FLOAT
    return arg_dtype if arg_dtype is not None else DataType.FLOAT


def unify_types(a: DataType, b: DataType) -> DataType:
    """Least common type of two data types (used for union schemas)."""
    if a == b:
        return a
    if DataType.NULL in (a, b):
        return b if a is DataType.NULL else a
    if DataType.ANY in (a, b):
        return DataType.ANY
    if a.is_numeric and b.is_numeric:
        return DataType.FLOAT if DataType.FLOAT in (a, b) else DataType.INT
    if a.is_textual and b.is_textual:
        return DataType.STR
    return DataType.ANY


def unify_all(types: Iterable[DataType]) -> DataType:
    """Least common type of an iterable of data types."""
    result: Optional[DataType] = None
    for t in types:
        result = t if result is None else unify_types(result, t)
    return result if result is not None else DataType.NULL


@dataclass(frozen=True)
class Column:
    """A column definition in a table schema.

    Attributes:
        name: the bare column name (no table qualifier).
        dtype: the declared data type.
        primary_key: whether this column uniquely identifies rows; used by the
            visualization mapping layer to validate functional-dependency
            constraints (e.g. a bar chart requires x → y).
    """

    name: str
    dtype: DataType
    primary_key: bool = False

    def qualified(self, table: str) -> str:
        """The fully qualified column name ``table.name``."""
        return f"{table}.{self.name}"
