"""A planned relational query executor over the in-memory catalogue.

Execution is split into three layers.  :mod:`repro.database.planner` compiles
each SELECT AST into a small logical plan — scan → filter → join → group →
project → order → limit; this module runs those plans row by row; and
:mod:`repro.database.columnar` runs the same plans column-at-a-time over the
column-major base tables (the default).  The plan layer exists because
interface generation's MCTS reward loop executes thousands of small queries
per run: hash equi-joins replace the interpreter's cross-product + filter
(O(|L|+|R|) instead of O(|L|·|R|)), single-table WHERE conjuncts are pushed
below joins onto base-table scans (and into FROM subqueries when provably
safe), and scans materialise only the columns a statement references.

Compiled plans are cached by AST fingerprint in a **process-wide** cache
(:data:`repro.database.plancache.SHARED_PLAN_CACHE`) shared across every
``Executor`` over the same catalogue, so the many executors the pipeline,
interface runtime and benchmarks build over one catalogue compile each
distinct query exactly once — and correlated subqueries re-executed per
outer row plan once.

The original AST interpreter is retained behind ``use_planner=False`` and
serves as the equivalence oracle: planned execution — row-based or columnar —
must produce identical ``ResultTable``s (columns, types, sources, and row
order) for every supported query.  The vectorized engine covers every join
shape (inner/outer hash joins, non-equi nested loops) and evaluates
uncorrelated subquery predicates once with a broadcast; the rare remainder
(correlated subqueries, aggregates outside grouping) runs on the row-based
plan path, with the responsible construct recorded in
``PlanStats.fallback_reasons``.  Supported SQL surface (unchanged from the
interpreter):

* projections with expressions, aliases, ``DISTINCT``, ``*``
* comma joins, explicit ``JOIN ... ON`` (inner / left / right), subqueries
  in ``FROM``
* ``WHERE`` / ``HAVING`` with boolean logic, comparisons, ``BETWEEN``,
  ``IN`` (value lists and subqueries), ``IS NULL``, ``LIKE``
* grouping and the aggregates ``count/sum/avg/min/max`` (with ``DISTINCT``)
* scalar subqueries, including correlated subqueries
* ``ORDER BY`` and ``LIMIT``/``OFFSET``

Results are returned as :class:`repro.database.table.ResultTable`, whose
columns carry inferred types and, when possible, the fully qualified source
attribute — which is what the Difftree schema layer consumes.  Cached results
are returned as defensive copies (fresh columns / rows containers, shared row
tuples) and the result cache is LRU-bounded, so callers can mutate what they
receive without poisoning later cache hits and the cache cannot grow without
limit under heavy traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..obs import span
from ..sqlparser import L, Node, parse, to_sql
from .catalog import Catalog, CatalogError
from .functions import (
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    is_aggregate,
)
from .plancache import SHARED_PLAN_CACHE, PlanCache, plan_key
from .planner import (
    CrossJoinOp,
    FilterOp,
    HashJoinOp,
    MapOp,
    NestedLoopJoinOp,
    Plan,
    Planner,
    PlanOp,
    PlanStats,
    ScanOp,
    SubqueryScanOp,
    contains_aggregate,
)
from .table import RelColumn, Relation, ResultColumn, ResultTable, Table
from .types import DataType, aggregate_result_type, infer_value_type, unify_all
from .values import arith_values, coerce_pair, compare_values, like, null_safe_key


class ExecutionError(Exception):
    """Raised when a query cannot be executed against the catalogue."""


class Environment:
    """A chained variable scope used for correlated subqueries.

    Lookup first consults the local row of the current relation and then the
    parent environment (the enclosing query's current row / group).
    """

    def __init__(
        self,
        relation: Optional[Relation] = None,
        row: Optional[tuple] = None,
        parent: Optional["Environment"] = None,
    ) -> None:
        self.relation = relation
        self.row = row
        self.parent = parent

    def lookup(self, name: str) -> tuple[bool, object]:
        """Return ``(found, value)`` for a possibly-qualified column name."""
        if self.relation is not None and self.row is not None:
            qualifier, bare = None, name
            if "." in name:
                qualifier, bare = name.split(".", 1)
            idx = self.relation.find(bare, qualifier)
            if idx is not None:
                return True, self.row[idx]
        if self.parent is not None:
            return self.parent.lookup(name)
        return False, None


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


class Executor:
    """Executes parsed SQL ASTs against a :class:`Catalog`.

    Args:
        catalog: the catalogue to execute against.
        enable_cache: cache results by AST fingerprint (top-level queries
            only; correlated executions are never cached).
        use_planner: run compiled plans (the default).  ``False`` falls back
            to direct AST interpretation — kept as the equivalence oracle for
            tests and as the baseline for the join benchmarks.
        columnar: run plans on the vectorized column-at-a-time engine when
            possible (the default).  ``False`` pins the row-based plan
            executor — kept as the baseline for the columnar benchmarks.
        columnar_subqueries: keep plans columnar when their expression stages
            contain *uncorrelated* subqueries (evaluated once and broadcast
            by the vectorized engine).  ``False`` restores the all-or-nothing
            gate of the original columnar engine; part of the plan-cache key.
        allow_reorder: permit cost-based join reordering for queries whose
            ORDER BY re-fixes the output row order.
        order_insensitive: declare that this executor's *top-level* callers
            never observe output row order, extending join reordering past
            the ORDER-BY gate (LIMIT queries stay gated — truncation would
            turn an order change into a row-set change).  Statements executed
            inside an expression context (scalar subqueries, whose first row
            *is* observable) always keep FROM order.  The pipeline opts in
            for the MCTS reward loop's executor only.
        cache_size: LRU bound on the result cache.
        plan_cache: compiled-plan cache; defaults to the process-wide
            :data:`~repro.database.plancache.SHARED_PLAN_CACHE` so executors
            over the same catalogue share one compiled plan set.  Pass a
            private :class:`~repro.database.plancache.PlanCache` to isolate
            an executor (e.g. when benchmarking plan compilation itself).
        stats: counter sink; pass an existing :class:`PlanStats` to aggregate
            several executors' activity (the pipeline shares one between its
            reward and mapping executors).
    """

    def __init__(
        self,
        catalog: Catalog,
        enable_cache: bool = True,
        use_planner: bool = True,
        columnar: bool = True,
        columnar_subqueries: bool = True,
        allow_reorder: bool = True,
        order_insensitive: bool = False,
        cache_size: int = 1024,
        plan_cache: Optional[PlanCache] = None,
        stats: Optional[PlanStats] = None,
    ) -> None:
        self.catalog = catalog
        self.enable_cache = enable_cache
        self.use_planner = use_planner
        self.columnar = columnar
        self.columnar_subqueries = columnar_subqueries
        self.allow_reorder = allow_reorder
        self.order_insensitive = order_insensitive
        self.cache_size = max(1, cache_size)
        self._cache: "OrderedDict[str, ResultTable]" = OrderedDict()
        self.stats = stats if stats is not None else PlanStats()
        self.planner = Planner(
            catalog,
            self.stats,
            allow_reorder=allow_reorder,
            order_insensitive=order_insensitive,
            columnar_subqueries=columnar_subqueries,
        )
        self.plan_cache = plan_cache if plan_cache is not None else SHARED_PLAN_CACHE
        from .columnar import ColumnarEngine  # deferred: columnar imports planner

        self._columnar_engine = ColumnarEngine(self)

    # -- public API --------------------------------------------------------

    def execute_sql(self, sql: str) -> ResultTable:
        """Parse and execute a SQL string."""
        return self.execute(parse(sql))

    def execute(
        self, node: Node, env: Optional[Environment] = None, _nested: bool = False
    ) -> ResultTable:
        """Execute a SELECT statement AST and return its result table.

        ``_nested`` is set internally when a statement executes as part of an
        enclosing one (FROM subqueries, subquery expressions).  Nested
        statements always plan with FROM order fixed: their row order can
        become observable upward — a scalar subquery's value is its first
        row, and an outer LIMIT turns a FROM subquery's row order into a
        row-*set* difference — so only the outermost statement may opt into
        order-insensitive reordering.
        """
        if node.label == L.SUBQUERY:
            node = node.children[0]
        if node.label != L.SELECT_STMT:
            raise ExecutionError(f"cannot execute node {node.label!r}")

        # the effective planning mode is part of the cached-result identity:
        # relaxed plans may return a different row order than strict ones
        fix_order = _nested or env is not None
        order_insensitive = self.order_insensitive and not fix_order

        cache_key = None
        if self.enable_cache and env is None:
            cache_key = (node.fingerprint(), order_insensitive)
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                self.stats.result_cache_hits += 1
                return cached.copy()
            self.stats.result_cache_misses += 1

        with span("executor.execute", nested=_nested or env is not None):
            result = self._execute_select(node, env, order_insensitive)
        if cache_key is not None:
            self._cache[cache_key] = result
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
            # hand out a copy so caller mutations cannot poison the cache
            return result.copy()
        return result

    def clear_cache(self) -> None:
        """Drop this executor's cached results and its catalogue's plans."""
        self._cache.clear()
        self.plan_cache.clear(self.catalog)

    def explain_sql(self, sql: str) -> str:
        """The compiled plan of a SQL string, rendered for inspection."""
        node = parse(sql)
        if node.label == L.SUBQUERY:
            node = node.children[0]
        # explain shows the top-level plan, which honours the opt-in
        return self._plan_for(node, order_insensitive=self.order_insensitive).explain()

    # -- select pipeline ------------------------------------------------------

    def _execute_select(
        self, stmt: Node, env: Optional[Environment], order_insensitive: bool = False
    ) -> ResultTable:
        if not self.use_planner:
            return self._execute_select_interpreted(stmt, env)
        plan = self._plan_for(stmt, order_insensitive=order_insensitive)

        result: Optional[ResultTable] = None
        if self.columnar:
            if plan.columnar_ok:
                from .columnar import UnsupportedColumnar

                try:
                    result = self._columnar_engine.execute_plan(plan, env)
                    self.stats.columnar_executions += 1
                except UnsupportedColumnar as exc:
                    self.stats.columnar_fallbacks += 1
                    self.stats.record_fallback(str(exc))
            else:
                self.stats.columnar_plan_gated += 1
                self.stats.record_fallback(plan.columnar_reason or "plan gated")

        if result is None:
            relation = self._exec_source(plan.source, env)
            if plan.residual_where is not None:
                relation = self._filter(relation, plan.residual_where, env)

            if plan.groupby is not None or plan.has_aggregates:
                result = self._execute_grouped(
                    relation, plan.select, plan.groupby, plan.having, env
                )
            else:
                result = self._project(relation, plan.select, env)

        if plan.distinct:
            result = self._distinct(result)
        if plan.orderby is not None:
            result = self._order(result, plan.orderby, env)
        if plan.limit is not None:
            result = self._limit(result, plan.limit, env)
        return result

    def _plan_for(self, stmt: Node, order_insensitive: bool = False) -> Plan:
        key = plan_key(
            stmt.fingerprint(),
            self.allow_reorder,
            order_insensitive,
            self.columnar_subqueries,
        )
        plan = self.plan_cache.get(self.catalog, key)
        if plan is not None:
            self.stats.plan_cache_hits += 1
            return plan
        with span("executor.plan"):
            plan = self.planner.plan(stmt, order_insensitive=order_insensitive)
        self.plan_cache.put(self.catalog, key, plan)
        return plan

    # -- plan execution -------------------------------------------------------

    def _exec_source(
        self, source: Optional[PlanOp], env: Optional[Environment]
    ) -> Relation:
        if source is None:
            # SELECT without FROM: a single empty row so expressions evaluate once
            return Relation(columns=[], rows=[tuple()])
        return self._exec_op(source, env)

    def _exec_op(self, op: PlanOp, env: Optional[Environment]) -> Relation:
        if isinstance(op, ScanOp):
            table = self.catalog.table(op.table)
            if op.column_indices is None:
                rows = list(table.rows)
            else:
                idx = op.column_indices
                rows = [tuple(row[i] for i in idx) for row in table.rows]
            relation = Relation(columns=list(op.schema), rows=rows)
            for pred in op.predicates:
                relation = self._filter(relation, pred, env)
            return relation

        if isinstance(op, SubqueryScanOp):
            sub_result = self.execute(op.stmt, env, _nested=True)
            columns = [
                RelColumn(
                    name=c.name,
                    qualifier=op.alias,
                    dtype=c.dtype,
                    source=c.source,
                    is_aggregate=c.is_aggregate,
                )
                for c in sub_result.columns
            ]
            return Relation(columns=columns, rows=list(sub_result.rows))

        if isinstance(op, FilterOp):
            relation = self._exec_op(op.child, env)
            for pred in op.predicates:
                relation = self._filter(relation, pred, env)
            return relation

        if isinstance(op, MapOp):
            relation = self._exec_op(op.child, env)
            idx = op.indices
            return Relation(
                columns=list(op.schema),
                rows=[tuple(row[i] for i in idx) for row in relation.rows],
            )

        if isinstance(op, HashJoinOp):
            return self._exec_hash_join(op, env)

        if isinstance(op, NestedLoopJoinOp):
            self.stats.nested_loop_joins_executed += 1
            left = self._exec_op(op.left, env)
            right = self._exec_op(op.right, env)
            combined = self._cross_join(left, right)
            filtered = (
                self._filter(combined, op.condition, env)
                if op.condition is not None
                else combined
            )
            if op.join_type == "LEFT":
                return self._pad_outer(left, right, combined, filtered, left_side=True)
            if op.join_type == "RIGHT":
                return self._pad_outer(left, right, combined, filtered, left_side=False)
            return filtered

        if isinstance(op, CrossJoinOp):
            self.stats.cross_joins_executed += 1
            return self._cross_join(
                self._exec_op(op.left, env), self._exec_op(op.right, env)
            )

        raise ExecutionError(f"unknown plan operator {op!r}")

    def _exec_hash_join(self, op: HashJoinOp, env: Optional[Environment]) -> Relation:
        """Build on the right input, probe from the left.

        Probing left rows in order and emitting right matches in right-row
        order reproduces the interpreter's cross-join + filter row order
        exactly, so LIMIT-without-ORDER-BY queries stay deterministic.  Rows
        with a NULL or NaN key component never match: ``=`` returns false for
        NULL operands and ``nan == nan`` is false, whereas a dict lookup would
        match a NaN key through Python's identity shortcut.
        """
        self.stats.hash_joins_executed += 1
        left = self._exec_op(op.left, env)
        right = self._exec_op(op.right, env)
        lk, rk = op.left_key_idx, op.right_key_idx

        buckets: dict[tuple, list[tuple]] = {}
        for rrow in right.rows:
            key = tuple(rrow[i] for i in rk)
            if any(v is None or v != v for v in key):
                continue
            buckets.setdefault(key, []).append(rrow)

        rows: list[tuple] = []
        empty: list[tuple] = []
        for lrow in left.rows:
            key = tuple(lrow[i] for i in lk)
            if any(v is None or v != v for v in key):
                continue
            for rrow in buckets.get(key, empty):
                rows.append(lrow + rrow)

        matched = Relation(columns=left.columns + right.columns, rows=rows)
        if op.residual is not None:
            matched = self._filter(matched, op.residual, env)
        if op.join_type == "LEFT":
            return self._pad_outer(left, right, matched, matched, left_side=True)
        if op.join_type == "RIGHT":
            return self._pad_outer(left, right, matched, matched, left_side=False)
        return matched

    # -- FROM interpretation (the pre-plan oracle path) -------------------------

    def _execute_select_interpreted(
        self, stmt: Node, env: Optional[Environment]
    ) -> ResultTable:
        """Interpret the AST clause by clause (no planning).

        This is the original executor strategy — every join is a cross
        product followed by a filter.  It is kept as the equivalence oracle
        for the plan layer and as the baseline of the join benchmarks.
        """
        clauses = {child.label: child for child in stmt.children}
        select = clauses.get(L.SELECT_CLAUSE)
        if select is None:
            raise ExecutionError("SELECT statement without a projection list")

        relation = self._eval_from(clauses.get(L.FROM_CLAUSE), env)

        where = clauses.get(L.WHERE_CLAUSE)
        if where is not None:
            relation = self._filter(relation, where.children[0], env)

        groupby = clauses.get(L.GROUPBY_CLAUSE)
        having = clauses.get(L.HAVING_CLAUSE)
        has_aggregates = self._contains_aggregate(select) or having is not None

        if groupby is not None or has_aggregates:
            result = self._execute_grouped(relation, select, groupby, having, env)
        else:
            result = self._project(relation, select, env)

        if select.value == "DISTINCT":
            result = self._distinct(result)

        orderby = clauses.get(L.ORDERBY_CLAUSE)
        if orderby is not None:
            result = self._order(result, orderby, env)

        limit = clauses.get(L.LIMIT_CLAUSE)
        if limit is not None:
            result = self._limit(result, limit, env)

        return result

    def _eval_from(
        self, from_clause: Optional[Node], env: Optional[Environment]
    ) -> Relation:
        if from_clause is None:
            # SELECT without FROM: a single empty row so expressions evaluate once
            return Relation(columns=[], rows=[tuple()])
        relation: Optional[Relation] = None
        for ref in from_clause.children:
            rel = self._eval_table_ref(ref, env)
            relation = rel if relation is None else self._cross_join(relation, rel)
        assert relation is not None
        return relation

    def _eval_table_ref(self, ref: Node, env: Optional[Environment]) -> Relation:
        if ref.label == L.JOIN:
            return self._eval_join(ref, env)
        if ref.label != L.TABLE_REF:
            raise ExecutionError(f"unexpected FROM element {ref.label!r}")
        source = ref.children[0]
        alias = None
        if len(ref.children) > 1 and ref.children[1].label == L.ALIAS:
            alias = ref.children[1].value

        if source.label == L.TABLE_NAME:
            table = self.catalog.table(str(source.value))
            qualifier = alias or table.name
            columns = [
                RelColumn(
                    name=c.name,
                    qualifier=qualifier,
                    dtype=c.dtype,
                    source=f"{table.name}.{c.name}",
                )
                for c in table.columns
            ]
            return Relation(columns=columns, rows=list(table.rows))

        if source.label == L.SUBQUERY:
            sub_result = self.execute(source.children[0], env, _nested=True)
            qualifier = alias
            columns = [
                RelColumn(
                    name=c.name,
                    qualifier=qualifier,
                    dtype=c.dtype,
                    source=c.source,
                    is_aggregate=c.is_aggregate,
                )
                for c in sub_result.columns
            ]
            return Relation(columns=columns, rows=list(sub_result.rows))

        raise ExecutionError(f"unsupported table reference {source.label!r}")

    def _eval_join(self, join: Node, env: Optional[Environment]) -> Relation:
        left = self._eval_table_ref(join.children[0], env)
        right = self._eval_table_ref(join.children[1], env)
        combined = self._cross_join(left, right)
        condition = join.children[2].children[0]
        filtered = self._filter(combined, condition, env)
        if (join.value or "INNER") == "INNER":
            return filtered
        # LEFT / RIGHT outer joins: add unmatched rows padded with NULLs
        if join.value == "LEFT":
            return self._pad_outer(left, right, combined, filtered, left_side=True)
        if join.value == "RIGHT":
            return self._pad_outer(left, right, combined, filtered, left_side=False)
        return filtered

    def _pad_outer(
        self,
        left: Relation,
        right: Relation,
        combined: Relation,
        filtered: Relation,
        left_side: bool,
    ) -> Relation:
        preserved = left if left_side else right
        other = right if left_side else left
        width_other = len(other.columns)
        matched_keys = set()
        offset = 0 if left_side else len(left.columns)
        for row in filtered.rows:
            matched_keys.add(row[offset : offset + len(preserved.columns)])
        rows = list(filtered.rows)
        for prow in preserved.rows:
            if tuple(prow) not in matched_keys:
                nulls = (None,) * width_other
                rows.append(tuple(prow) + nulls if left_side else nulls + tuple(prow))
        return Relation(columns=combined.columns, rows=rows)

    @staticmethod
    def _cross_join(left: Relation, right: Relation) -> Relation:
        columns = left.columns + right.columns
        rows = [lrow + rrow for lrow in left.rows for rrow in right.rows]
        return Relation(columns=columns, rows=rows)

    # -- WHERE --------------------------------------------------------------------

    def _filter(
        self, relation: Relation, predicate: Node, env: Optional[Environment]
    ) -> Relation:
        kept = []
        for row in relation.rows:
            row_env = Environment(relation, row, parent=env)
            if self._truthy(self._eval_expr(predicate, row_env)):
                kept.append(row)
        return Relation(columns=relation.columns, rows=kept)

    # -- projection (no grouping) ----------------------------------------------------

    def _project(
        self, relation: Relation, select: Node, env: Optional[Environment]
    ) -> ResultTable:
        out_columns = self._output_columns(relation, select)
        rows = []
        for row in relation.rows:
            row_env = Environment(relation, row, parent=env)
            values = []
            for item in self._expanded_select_items(relation, select):
                values.append(self._eval_expr(item.children[0], row_env))
            rows.append(tuple(values))
        return self._finalise(out_columns, rows)

    # -- grouping ----------------------------------------------------------------------

    def _execute_grouped(
        self,
        relation: Relation,
        select: Node,
        groupby: Optional[Node],
        having: Optional[Node],
        env: Optional[Environment],
    ) -> ResultTable:
        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        group_exprs = list(groupby.children) if groupby is not None else []
        for row in relation.rows:
            row_env = Environment(relation, row, parent=env)
            key = tuple(self._eval_expr(e, row_env) for e in group_exprs)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)

        if not group_exprs and not groups:
            # aggregates over an empty relation still yield one output row
            groups[()] = []
            order.append(())

        out_columns = self._output_columns(relation, select, grouped=True)
        rows = []
        for key in order:
            group_rows = groups[key]
            first_row = group_rows[0] if group_rows else tuple(
                None for _ in relation.columns
            )
            group_env = Environment(relation, first_row, parent=env)
            if having is not None:
                keep = self._eval_expr(
                    having.children[0], group_env, group_rows=group_rows,
                    relation=relation,
                )
                if not self._truthy(keep):
                    continue
            values = []
            for item in self._expanded_select_items(relation, select):
                values.append(
                    self._eval_expr(
                        item.children[0],
                        group_env,
                        group_rows=group_rows,
                        relation=relation,
                    )
                )
            rows.append(tuple(values))
        return self._finalise(out_columns, rows)

    # -- DISTINCT / ORDER BY / LIMIT ---------------------------------------------------

    @staticmethod
    def _distinct(result: ResultTable) -> ResultTable:
        seen = set()
        rows = []
        for row in result.rows:
            key = tuple(row)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return ResultTable(result.columns, rows)

    def _order(
        self, result: ResultTable, orderby: Node, env: Optional[Environment]
    ) -> ResultTable:
        # Evaluate order expressions against the *output* columns first (SQL
        # semantics allow ordering by aliases), falling back to row position.
        keys = []
        for item in orderby.children:
            expr = item.children[0]
            descending = item.value == "DESC"
            keys.append((expr, descending))

        def sort_key(row: tuple):
            parts = []
            for expr, _ in keys:
                value = self._eval_output_expr(expr, result, row)
                parts.append(_null_safe_key(value))
            return tuple(parts)

        rows = list(result.rows)
        # apply sorts right-to-left so earlier keys dominate, honouring DESC
        for idx in range(len(keys) - 1, -1, -1):
            expr, descending = keys[idx]
            rows.sort(
                key=lambda r: _null_safe_key(self._eval_output_expr(expr, result, r)),
                reverse=descending,
            )
        return ResultTable(result.columns, rows)

    def _eval_output_expr(self, expr: Node, result: ResultTable, row: tuple) -> object:
        if expr.label == L.COLUMN:
            name = str(expr.value)
            bare = name.split(".")[-1]
            for i, col in enumerate(result.columns):
                if col.name == name or col.name == bare:
                    return row[i]
        if expr.label == L.LITERAL_NUM and isinstance(expr.value, int):
            # ORDER BY ordinal position
            idx = int(expr.value) - 1
            if 0 <= idx < len(row):
                return row[idx]
        # fall back: build a pseudo relation over the output columns
        relation = Relation(
            columns=[
                RelColumn(c.name, None, c.dtype, c.source) for c in result.columns
            ],
            rows=[row],
        )
        return self._eval_expr(expr, Environment(relation, row))

    def _limit(
        self, result: ResultTable, limit: Node, env: Optional[Environment]
    ) -> ResultTable:
        count = int(self._eval_expr(limit.children[0], Environment(parent=env)))
        offset = 0
        if len(limit.children) > 1:
            offset = int(self._eval_expr(limit.children[1], Environment(parent=env)))
        return ResultTable(result.columns, result.rows[offset : offset + count])

    # -- output schema ---------------------------------------------------------------

    def _expanded_select_items(self, relation: Relation, select: Node) -> list[Node]:
        """Expand ``*`` into one select item per relation column."""
        items: list[Node] = []
        for item in select.children:
            expr = item.children[0]
            if expr.label == L.STAR and expr.value in ("*", None):
                for col in relation.columns:
                    items.append(
                        Node(
                            L.SELECT_ITEM,
                            None,
                            [Node(L.COLUMN, col.qualified or col.name)],
                        )
                    )
            else:
                items.append(item)
        return items

    def _output_columns(
        self, relation: Relation, select: Node, grouped: bool = False
    ) -> list[ResultColumn]:
        columns: list[ResultColumn] = []
        for item in self._expanded_select_items(relation, select):
            expr = item.children[0]
            alias = None
            if len(item.children) > 1 and item.children[1].label == L.ALIAS:
                alias = str(item.children[1].value)
            name, dtype, source, is_agg = self._describe_expr(expr, relation)
            columns.append(
                ResultColumn(
                    name=alias or name,
                    dtype=dtype,
                    source=source,
                    is_aggregate=is_agg,
                )
            )
        # de-duplicate output names deterministically
        seen: dict[str, int] = {}
        for col in columns:
            if col.name in seen:
                seen[col.name] += 1
                col.name = f"{col.name}_{seen[col.name]}"
            else:
                seen[col.name] = 0
        return columns

    def _describe_expr(
        self, expr: Node, relation: Relation
    ) -> tuple[str, DataType, Optional[str], bool]:
        """(output name, type, source attribute, is_aggregate) of an expression."""
        if expr.label == L.COLUMN:
            name = str(expr.value)
            qualifier, bare = None, name
            if "." in name:
                qualifier, bare = name.split(".", 1)
            idx = relation.find(bare, qualifier)
            if idx is not None:
                col = relation.columns[idx]
                return bare, col.dtype, col.source, col.is_aggregate
            return bare, self.catalog.attribute_type(name), self.catalog.qualified_name(name), False
        if expr.label == L.FUNC:
            fname = str(expr.value)
            base = fname.removesuffix(" distinct")
            if is_aggregate(fname):
                dtype = self._aggregate_type(expr, relation)
                return base, dtype, None, True
            return base, self.catalog.function_type(fname), None, False
        if expr.label in (L.LITERAL_NUM,):
            return to_sql(expr), infer_value_type(expr.value), None, False
        if expr.label in (L.LITERAL_STR,):
            return to_sql(expr), infer_value_type(expr.value), None, False
        if expr.label in (L.IN_LIST, L.IN_QUERY, L.BETWEEN, L.IS_NULL, L.AND, L.OR, L.NOT):
            return to_sql(expr), DataType.BOOL, None, False
        if expr.label == L.BINOP:
            if expr.value in ("=", "<>", "!=", ">", "<", ">=", "<=", "LIKE"):
                return to_sql(expr), DataType.BOOL, None, False
            return to_sql(expr), DataType.FLOAT, None, self._contains_aggregate(expr)
        if expr.label == L.SUBQUERY:
            return to_sql(expr), DataType.ANY, None, False
        if expr.label == L.CASE:
            return to_sql(expr), DataType.ANY, None, False
        return to_sql(expr), DataType.ANY, None, False

    def _aggregate_type(self, expr: Node, relation: Relation) -> DataType:
        # count → INT, avg → FLOAT; sum/min/max follow their argument's type
        arg_dtype: Optional[DataType] = None
        if expr.children and expr.children[0].label == L.COLUMN:
            _, arg_dtype, _, _ = self._describe_expr(expr.children[0], relation)
        return aggregate_result_type(str(expr.value), arg_dtype)

    def _finalise(self, columns: list[ResultColumn], rows: list[tuple]) -> ResultTable:
        # refine ANY column types from observed values
        for i, col in enumerate(columns):
            if col.dtype is DataType.ANY and rows:
                observed = [row[i] for row in rows if row[i] is not None]
                if observed:
                    col.dtype = unify_all(infer_value_type(v) for v in observed)
        return ResultTable(columns, rows)

    def _finalise_columns(
        self, columns: list[ResultColumn], vectors: list[list], nrows: int
    ) -> ResultTable:
        """Column-vector counterpart of :meth:`_finalise` (same refinement)."""
        if nrows:
            for col, vec in zip(columns, vectors):
                if col.dtype is DataType.ANY:
                    observed = [v for v in vec if v is not None]
                    if observed:
                        col.dtype = unify_all(infer_value_type(v) for v in observed)
        return ResultTable.from_columns(columns, vectors, nrows)

    # -- expression evaluation ----------------------------------------------------------

    def _contains_aggregate(self, node: Node) -> bool:
        return contains_aggregate(node)

    def _eval_expr(
        self,
        node: Node,
        env: Environment,
        group_rows: Optional[list[tuple]] = None,
        relation: Optional[Relation] = None,
    ) -> object:
        label = node.label

        if label == L.LITERAL_NUM or label == L.LITERAL_STR or label == L.LITERAL_BOOL:
            return node.value
        if label == L.LITERAL_NULL:
            return None
        if label == L.COLUMN:
            found, value = env.lookup(str(node.value))
            if not found:
                raise ExecutionError(f"unknown column {node.value!r}")
            return value
        if label == L.STAR:
            return 1  # count(*) argument
        if label == L.NEG:
            value = self._eval_expr(node.children[0], env, group_rows, relation)
            return None if value is None else -value
        if label == L.AND:
            for child in node.children:
                if not self._truthy(
                    self._eval_expr(child, env, group_rows, relation)
                ):
                    return False
            return True
        if label == L.OR:
            for child in node.children:
                if self._truthy(self._eval_expr(child, env, group_rows, relation)):
                    return True
            return False
        if label == L.NOT:
            return not self._truthy(
                self._eval_expr(node.children[0], env, group_rows, relation)
            )
        if label == L.BINOP:
            return self._eval_binop(node, env, group_rows, relation)
        if label == L.BETWEEN:
            value = self._eval_expr(node.children[0], env, group_rows, relation)
            lo = self._eval_expr(node.children[1], env, group_rows, relation)
            hi = self._eval_expr(node.children[2], env, group_rows, relation)
            if value is None or lo is None or hi is None:
                return False
            return lo <= value <= hi
        if label == L.IN_LIST:
            value = self._eval_expr(node.children[0], env, group_rows, relation)
            options = [
                self._eval_expr(c, env, group_rows, relation)
                for c in node.children[1:]
            ]
            return value in options
        if label == L.IN_QUERY:
            value = self._eval_expr(node.children[0], env, group_rows, relation)
            sub = self.execute(node.children[1], env, _nested=True)
            if not sub.columns:
                return False
            return value in set(row[0] for row in sub.rows)
        if label == L.IS_NULL:
            value = self._eval_expr(node.children[0], env, group_rows, relation)
            result = value is None
            return not result if node.value == "NOT" else result
        if label == L.FUNC:
            return self._eval_func(node, env, group_rows, relation)
        if label == L.SUBQUERY:
            sub = self.execute(node, env, _nested=True)
            if not sub.rows:
                return None
            if len(sub.rows) > 1 or len(sub.columns) > 1:
                # scalar context: take the first value (matches SQLite behaviour)
                return sub.rows[0][0]
            return sub.rows[0][0]
        if label == L.CASE:
            for child in node.children:
                if child.label == L.WHEN:
                    cond, result = child.children
                    if self._truthy(self._eval_expr(cond, env, group_rows, relation)):
                        return self._eval_expr(result, env, group_rows, relation)
                else:
                    return self._eval_expr(child, env, group_rows, relation)
            return None
        raise ExecutionError(f"cannot evaluate expression node {label!r}")

    def _eval_binop(
        self,
        node: Node,
        env: Environment,
        group_rows: Optional[list[tuple]],
        relation: Optional[Relation],
    ) -> object:
        op = str(node.value)
        left = self._eval_expr(node.children[0], env, group_rows, relation)
        right = self._eval_expr(node.children[1], env, group_rows, relation)
        if op in ("=", "<>", "!=", ">", "<", ">=", "<="):
            return compare_values(op, left, right)
        if op == "LIKE":
            return like(left, right)
        if left is None or right is None:
            return None
        if op in ("+", "-", "*", "/", "%", "||"):
            return arith_values(op, left, right)
        raise ExecutionError(f"unsupported operator {op!r}")

    def _eval_func(
        self,
        node: Node,
        env: Environment,
        group_rows: Optional[list[tuple]],
        relation: Optional[Relation],
    ) -> object:
        name = str(node.value)
        base = name.removesuffix(" distinct")
        distinct = name.endswith(" distinct")

        if is_aggregate(name):
            if group_rows is None or relation is None:
                # aggregate outside a grouping context: treat the current row
                # as a single-row group (occurs in scalar subqueries)
                group_rows = [env.row] if env.row is not None else []
                relation = env.relation
            arg_values = []
            for row in group_rows:
                row_env = Environment(relation, row, parent=env.parent)
                if node.children and node.children[0].label != L.STAR:
                    arg_values.append(self._eval_expr(node.children[0], row_env))
                else:
                    arg_values.append(1)
            if distinct:
                seen = set()
                unique = []
                for v in arg_values:
                    if v not in seen:
                        seen.add(v)
                        unique.append(v)
                arg_values = unique
            return AGGREGATE_FUNCTIONS[base](arg_values)

        if base not in SCALAR_FUNCTIONS:
            raise ExecutionError(f"unknown function {base!r}")
        args = [
            self._eval_expr(c, env, group_rows, relation) for c in node.children
        ]
        return SCALAR_FUNCTIONS[base](*args)

    @staticmethod
    def _truthy(value: object) -> bool:
        return bool(value)


# shared scalar semantics live in .values; the old private helpers are kept
# as aliases for any external code that imported them
_coerce_pair = coerce_pair
_like = like
_null_safe_key = null_safe_key
